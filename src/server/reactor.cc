#include "server/reactor.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "server/server.h"

namespace f2db {

Reactor::Reactor(F2dbServer& server, std::size_t index)
    : server_(server), index_(index) {}

Reactor::~Reactor() {
  Join();
  CloseListenFd();
  for (const int fd : adopted_fds_) ::close(fd);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status Reactor::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal("epoll_create1()/eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  return Status::OK();
}

void Reactor::SetListenFd(int fd) {
  listen_fd_ = fd;
  if (listen_fd_ >= 0 && epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
}

Status Reactor::Start() {
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::FailedPrecondition("reactor not initialized");
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void Reactor::Wake() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    // Best effort: the eventfd counter saturating (EAGAIN) still leaves
    // the loop woken. write() is async-signal-safe.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Reactor::Join() {
  if (thread_.joinable()) thread_.join();
}

void Reactor::AdoptSocket(int fd) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    adopted_fds_.push_back(fd);
  }
  Wake();
}

void Reactor::NoteResponseReady(const std::shared_ptr<ServerConnection>& conn) {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pending_write_.push_back(conn);
}

void Reactor::RespondNow(const std::shared_ptr<ServerConnection>& conn,
                         std::string encoded) {
  if (conn->EnqueueResponse(std::move(encoded))) {
    server_.stats_.responses_sent.Add();
  }
  FlushConnection(conn);
}

void Reactor::CloseListenFd() {
  if (listen_fd_ >= 0) {
    if (epoll_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Reactor::EventLoop() {
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  epoll_event events[64];

  for (;;) {
    // Paused (backpressured) connections need a periodic tick: their
    // EPOLLOUT may never fire again if the peer stopped reading, so the
    // grace sweep below is the only thing that can evict them.
    const int timeout_ms = draining ? 20 : (num_paused_ > 0 ? 50 : -1);
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<ServerConnection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        ServerConnection::ReadOutcome outcome = conn->ReadReady();
        for (const std::string& payload : outcome.payloads) {
          server_.HandleRequest(*this, conn, payload);
        }
        if (!outcome.framing_error.ok()) {
          server_.stats_.protocol_errors.Add();
          WireResponse error;
          error.type = FrameType::kPing;
          error.status = outcome.framing_error.code();
          error.body = outcome.framing_error.message();
          conn->MarkCloseAfterFlush();
          // RespondNow flushes and (via UpdateInterest) stops watching
          // for input — the stream has no recoverable framing.
          RespondNow(conn, EncodeResponse(error));
        } else if (outcome.closed) {
          DropConnection(conn);
          continue;
        }
      }
      if (events[i].events & EPOLLOUT) {
        FlushConnection(conn);
      }
    }

    // Register sockets handed off by the accepting reactor, then flush
    // connections workers completed responses on.
    std::vector<int> adopted;
    std::vector<std::shared_ptr<ServerConnection>> pending;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      adopted.swap(adopted_fds_);
      pending.swap(pending_write_);
    }
    for (const int fd : adopted) RegisterConnection(fd);
    for (const auto& conn : pending) FlushConnection(conn);

    if (num_paused_ > 0) SweepPausedConnections();

    if (server_.shutdown_requested_.load(std::memory_order_acquire) &&
        !draining) {
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               server_.options_.drain_timeout_seconds));
      CloseListenFd();
    }
    if (draining && (DrainComplete() ||
                     std::chrono::steady_clock::now() >= drain_deadline)) {
      break;
    }
  }

  // Close every socket; the connection objects stay alive until the
  // server has drained the worker pool (stragglers append to outboxes).
  for (auto& [fd, conn] : connections_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    conn->CloseFd();
    server_.stats_.connections_closed.Add();
    server_.num_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  running_.store(false, std::memory_order_release);
}

void Reactor::HandleAccept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error
    }
    // Reserve a connection slot across all reactors before the socket is
    // registered or handed off.
    std::size_t open = server_.num_connections_.load(std::memory_order_relaxed);
    bool reserved = false;
    while (open < server_.options_.max_connections) {
      if (server_.num_connections_.compare_exchange_weak(
              open, open + 1, std::memory_order_relaxed)) {
        reserved = true;
        break;
      }
    }
    if (!reserved) {
      ::close(fd);
      server_.stats_.connections_refused.Add();
      continue;
    }
    if (server_.accept_handoff_ && server_.reactors_.size() > 1) {
      // Round-robin hand-off: this reactor owns the only listener; spread
      // accepted sockets across the pool.
      const std::size_t target =
          server_.next_reactor_.fetch_add(1, std::memory_order_relaxed) %
          server_.reactors_.size();
      Reactor& owner = *server_.reactors_[target];
      if (&owner != this) {
        owner.AdoptSocket(fd);
        continue;
      }
    }
    RegisterConnection(fd);
  }
}

void Reactor::RegisterConnection(int fd) {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  auto conn = std::make_shared<ServerConnection>(
      fd, server_.options_.max_frame_bytes,
      server_.options_.outbound_hard_cap_bytes);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    // conn destructor closes the fd; release the reserved slot.
    server_.num_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  connections_.emplace(fd, std::move(conn));
  server_.stats_.connections_accepted.Add();
}

void Reactor::FlushConnection(const std::shared_ptr<ServerConnection>& conn) {
  if (conn->fd_closed()) return;
  if (!conn->FlushWrites()) {
    DropConnection(conn);
    return;
  }
  if (conn->over_outbound_cap()) {
    // A response overflowed the hard byte ceiling: the peer is not
    // draining its socket. Evict rather than buffer without bound.
    server_.stats_.connections_evicted.Add();
    DropConnection(conn);
    return;
  }
  UpdateInterest(conn);
  if (!conn->wants_write() && conn->close_after_flush() &&
      conn->in_flight() == 0) {
    DropConnection(conn);
  }
}

void Reactor::UpdateInterest(const std::shared_ptr<ServerConnection>& conn) {
  if (conn->fd_closed()) return;
  const std::size_t high = server_.options_.outbound_high_watermark_bytes;
  const std::size_t pending = conn->pending_out_bytes();
  if (!conn->reading_paused && high > 0 && pending > high) {
    conn->reading_paused = true;
    conn->pause_started = std::chrono::steady_clock::now();
    ++num_paused_;
    server_.stats_.read_pauses.Add();
  } else if (conn->reading_paused && pending <= high / 2) {
    // Hysteresis: resume only once the buffer drained to half the
    // watermark so a borderline peer doesn't flap the epoll interest.
    conn->reading_paused = false;
    --num_paused_;
  }
  const bool want_read = !conn->reading_paused && !conn->close_after_flush();
  const bool want_write = conn->wants_write();
  if (want_read != conn->epollin_armed || want_write != conn->epollout_armed) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
    conn->epollin_armed = want_read;
    conn->epollout_armed = want_write;
  }
}

void Reactor::SweepPausedConnections() {
  // Collect first: FlushConnection/DropConnection mutate connections_.
  std::vector<std::shared_ptr<ServerConnection>> paused;
  for (const auto& [fd, conn] : connections_) {
    if (conn->reading_paused) paused.push_back(conn);
  }
  const auto now = std::chrono::steady_clock::now();
  const double grace = server_.options_.slow_client_grace_seconds;
  for (const auto& conn : paused) {
    FlushConnection(conn);  // may resume or evict
    if (conn->fd_closed() || !conn->reading_paused) continue;
    if (grace > 0 &&
        std::chrono::duration<double>(now - conn->pause_started).count() >=
            grace) {
      server_.stats_.connections_evicted.Add();
      DropConnection(conn);
    }
  }
}

void Reactor::DropConnection(const std::shared_ptr<ServerConnection>& conn) {
  if (conn->fd_closed()) return;
  if (conn->reading_paused) {
    conn->reading_paused = false;
    --num_paused_;
  }
  const int fd = conn->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conn->CloseFd();
  connections_.erase(fd);
  server_.stats_.connections_closed.Add();
  server_.num_connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool Reactor::DrainComplete() {
  if (server_.in_flight_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& [fd, conn] : connections_) {
    if (conn->wants_write()) return false;
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (!pending_write_.empty() || !adopted_fds_.empty()) return false;
  }
  return true;
}

}  // namespace f2db
