#include "server/wire.h"

#include <cstring>

namespace f2db {
namespace {

/// Appends a uint32 little-endian length prefix.
void AppendLength(std::string* out, std::size_t n) {
  const auto v = static_cast<std::uint32_t>(n);
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t ReadLength(const char* data) {
  const auto b = [data](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery:
      return "QUERY";
    case FrameType::kInsert:
      return "INSERT";
    case FrameType::kStats:
      return "STATS";
    case FrameType::kPing:
      return "PING";
    case FrameType::kHello:
      return "HELLO";
  }
  return "UNKNOWN";
}

bool IsKnownFrameType(std::uint8_t raw) {
  const std::uint8_t base = raw & static_cast<std::uint8_t>(~kDeadlineFlag);
  return base >= static_cast<std::uint8_t>(FrameType::kQuery) &&
         base <= static_cast<std::uint8_t>(FrameType::kHello);
}

std::string EncodeRequest(const WireRequest& request) {
  std::string out;
  const std::size_t header = request.has_deadline ? 5 : 1;
  out.reserve(4 + header + request.body.size());
  AppendLength(&out, header + request.body.size());
  std::uint8_t type_byte = static_cast<std::uint8_t>(request.type);
  if (request.has_deadline) type_byte |= kDeadlineFlag;
  out.push_back(static_cast<char>(type_byte));
  if (request.has_deadline) {
    const std::uint32_t v = request.deadline_ms;
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
  }
  out.append(request.body);
  return out;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  out.reserve(4 + 3 + response.body.size());
  AppendLength(&out, 3 + response.body.size());
  out.push_back(static_cast<char>(response.type));
  out.push_back(static_cast<char>(response.status));
  out.push_back(static_cast<char>(response.degradation));
  out.append(response.body);
  return out;
}

Result<WireRequest> DecodeRequestPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("request frame has empty payload");
  }
  const auto raw = static_cast<std::uint8_t>(payload[0]);
  if (!IsKnownFrameType(raw)) {
    return Status::InvalidArgument("unknown request frame type " +
                                   std::to_string(raw));
  }
  WireRequest request;
  request.type = static_cast<FrameType>(
      raw & static_cast<std::uint8_t>(~kDeadlineFlag));
  std::size_t header = 1;
  if ((raw & kDeadlineFlag) != 0) {
    if (payload.size() < 5) {
      return Status::InvalidArgument(
          "request frame announces a deadline but is shorter than its "
          "5-byte extended header");
    }
    const auto b = [payload](int i) {
      return static_cast<std::uint32_t>(
          static_cast<unsigned char>(payload[i]));
    };
    request.has_deadline = true;
    request.deadline_ms = b(1) | (b(2) << 8) | (b(3) << 16) | (b(4) << 24);
    header = 5;
  }
  request.body.assign(payload.substr(header));
  if (request.type == FrameType::kHello &&
      request.body.size() > kMaxTenantIdBytes) {
    return Status::InvalidArgument(
        "HELLO tenant id of " + std::to_string(request.body.size()) +
        " bytes exceeds the " + std::to_string(kMaxTenantIdBytes) +
        "-byte limit");
  }
  return request;
}

Result<WireResponse> DecodeResponsePayload(std::string_view payload) {
  if (payload.size() < 3) {
    return Status::InvalidArgument(
        "response frame payload shorter than its 3 header bytes");
  }
  const auto type_raw = static_cast<std::uint8_t>(payload[0]);
  if (!IsKnownFrameType(type_raw)) {
    return Status::InvalidArgument("unknown response frame type " +
                                   std::to_string(type_raw));
  }
  const auto status_raw = static_cast<std::uint8_t>(payload[1]);
  if (status_raw > static_cast<std::uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("response status byte out of range: " +
                                   std::to_string(status_raw));
  }
  const auto degradation_raw = static_cast<std::uint8_t>(payload[2]);
  if (degradation_raw >
      static_cast<std::uint8_t>(DegradationLevel::kUnavailable)) {
    return Status::InvalidArgument("response degradation byte out of range: " +
                                   std::to_string(degradation_raw));
  }
  WireResponse response;
  response.type = static_cast<FrameType>(type_raw);
  response.status = static_cast<StatusCode>(status_raw);
  response.degradation = static_cast<DegradationLevel>(degradation_raw);
  response.body.assign(payload.substr(3));
  return response;
}

std::string EncodeThrottleBody(std::uint32_t retry_after_ms,
                               const std::string& message) {
  std::string out = "retry-after-ms=" + std::to_string(retry_after_ms);
  out += "; ";
  out += message;
  return out;
}

std::optional<std::uint32_t> ParseRetryAfterMs(std::string_view body) {
  constexpr std::string_view kPrefix = "retry-after-ms=";
  if (body.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  std::uint64_t value = 0;
  std::size_t i = kPrefix.size();
  if (i >= body.size() || body[i] < '0' || body[i] > '9') return std::nullopt;
  for (; i < body.size() && body[i] >= '0' && body[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(body[i] - '0');
    if (value > 0xffffffffULL) return std::nullopt;
  }
  return static_cast<std::uint32_t>(value);
}

Status FrameDecoder::Feed(const char* data, std::size_t n) {
  if (!poison_.ok()) return poison_;
  buffer_.append(data, n);
  // Validate the next length prefix eagerly so an oversized announcement is
  // rejected before any of its payload is buffered.
  if (buffer_.size() >= 4) {
    const std::uint32_t length = ReadLength(buffer_.data());
    if (length == 0) {
      poison_ = Status::InvalidArgument("frame announces zero-length payload");
      return poison_;
    }
    if (length > max_frame_bytes_) {
      poison_ = Status::InvalidArgument(
          "frame payload of " + std::to_string(length) +
          " bytes exceeds the " + std::to_string(max_frame_bytes_) +
          "-byte limit");
      return poison_;
    }
  }
  return Status::OK();
}

std::optional<std::string> FrameDecoder::Next() {
  if (!poison_.ok() || buffer_.size() < 4) return std::nullopt;
  const std::uint32_t length = ReadLength(buffer_.data());
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return std::nullopt;
  }
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  // The erase exposed the next frame's length prefix; re-validate it so a
  // poisoned stream is caught even without another Feed().
  if (buffer_.size() >= 4) {
    const std::uint32_t next_length = ReadLength(buffer_.data());
    if (next_length == 0 || next_length > max_frame_bytes_) {
      poison_ = Status::InvalidArgument("frame length out of range");
    }
  }
  return payload;
}

}  // namespace f2db
