#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace f2db {
namespace {

/// A blocking send/recv that hit SO_SNDTIMEO/SO_RCVTIMEO reports
/// EAGAIN/EWOULDBLOCK — surface those as an explicit timeout.
bool IsTimeout(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

/// Writes all of `data`, retrying on EINTR / short writes.
Status WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && IsTimeout(errno)) {
      return Status::Unavailable("request timed out while sending");
    }
    return Status::Unavailable(std::string("write(): ") + ::strerror(errno));
  }
  return Status::OK();
}

/// Reads exactly `n` bytes into `out`, retrying on EINTR.
Status ReadExactly(int fd, std::size_t n, std::string* out) {
  out->resize(n);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out->data() + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      return Status::Unavailable("connection closed by server mid-frame");
    }
    if (errno == EINTR) continue;
    if (IsTimeout(errno)) {
      return Status::Unavailable("request timed out awaiting the response");
    }
    return Status::Unavailable(std::string("read(): ") + ::strerror(errno));
  }
  return Status::OK();
}

/// Applies the per-request timeout to both directions of `fd`.
void ApplyTimeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;  // 0 means "forever"
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// One blocking connect to host:port with the options applied.
Result<int> ConnectFd(const std::string& host, std::uint16_t port,
                      const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + ::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparsable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable(std::string("connect(): ") + ::strerror(errno));
    ::close(fd);
    return status;
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  ApplyTimeout(fd, options.request_timeout_seconds);
  return fd;
}

}  // namespace

Result<F2dbClient> F2dbClient::Connect(const std::string& host,
                                       std::uint16_t port,
                                       ClientOptions options) {
  F2DB_ASSIGN_OR_RETURN(const int fd, ConnectFd(host, port, options));
  F2dbClient client(fd, host, port, options);
  if (!options.tenant_id.empty()) {
    auto hello = client.Hello(options.tenant_id);
    if (!hello.ok()) return hello.status();
  }
  return client;
}

F2dbClient::F2dbClient(F2dbClient&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      jitter_(other.jitter_),
      reconnects_attempted_(other.reconnects_attempted_),
      reconnects_succeeded_(other.reconnects_succeeded_) {
  other.fd_ = -1;
}

F2dbClient& F2dbClient::operator=(F2dbClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    jitter_ = other.jitter_;
    reconnects_attempted_ = other.reconnects_attempted_;
    reconnects_succeeded_ = other.reconnects_succeeded_;
    other.fd_ = -1;
  }
  return *this;
}

void F2dbClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status F2dbClient::Reconnect() {
  if (host_.empty()) {
    return Status::FailedPrecondition(
        "client was never connected; nothing to reconnect to");
  }
  Close();
  ++reconnects_attempted_;
  F2DB_ASSIGN_OR_RETURN(const int fd, ConnectFd(host_, port_, options_));
  fd_ = fd;
  ++reconnects_succeeded_;
  // Tenant identity is per-connection state; rebind it on the fresh one.
  if (!options_.tenant_id.empty()) {
    auto hello = Hello(options_.tenant_id);
    if (!hello.ok()) return hello.status();
  }
  return Status::OK();
}

Result<WireResponse> F2dbClient::Call(FrameType type, std::string body) {
  // Derive the wire deadline from the per-call timeout: work the client
  // will abandon at the timeout should not be executed past it either.
  // Only QUERY/INSERT carry one — PING/STATS/HELLO must keep working
  // during an overload.
  bool has_deadline = false;
  std::uint32_t deadline_ms = 0;
  if (options_.propagate_deadline && options_.request_timeout_seconds > 0 &&
      (type == FrameType::kQuery || type == FrameType::kInsert)) {
    has_deadline = true;
    deadline_ms = static_cast<std::uint32_t>(std::min(
        options_.request_timeout_seconds * 1000.0, 4294967295.0));
    if (deadline_ms == 0) deadline_ms = 1;
  }
  return CallInternal(type, std::move(body), has_deadline, deadline_ms);
}

Result<WireResponse> F2dbClient::CallWithDeadline(FrameType type,
                                                  std::string body,
                                                  std::uint32_t deadline_ms) {
  return CallInternal(type, std::move(body), true, deadline_ms);
}

Result<WireResponse> F2dbClient::CallInternal(FrameType type, std::string body,
                                              bool has_deadline,
                                              std::uint32_t deadline_ms) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  WireRequest request;
  request.type = type;
  request.body = std::move(body);
  request.has_deadline = has_deadline;
  request.deadline_ms = deadline_ms;
  Status sent = WriteAll(fd_, EncodeRequest(request));
  if (!sent.ok()) {
    Close();  // a partially written frame poisons the stream
    return sent;
  }

  std::string prefix;
  Status received = ReadExactly(fd_, 4, &prefix);
  if (!received.ok()) {
    Close();  // the response may still arrive later and desync the stream
    return received;
  }
  const auto b = [&prefix](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[i]));
  };
  const std::uint32_t length = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (length < 3 || length > kMaxFrameBytes) {
    Close();  // framing is unrecoverable on this stream
    return Status::Unavailable("response frame length out of range: " +
                               std::to_string(length));
  }
  std::string payload;
  received = ReadExactly(fd_, length, &payload);
  if (!received.ok()) {
    Close();
    return received;
  }
  return DecodeResponsePayload(payload);
}

Result<WireResponse> F2dbClient::CallWithReconnect(FrameType type,
                                                   const std::string& body) {
  Result<WireResponse> result = connected()
                                    ? Call(type, body)
                                    : Result<WireResponse>(Status::Unavailable(
                                          "client is not connected"));
  for (std::size_t attempt = 1; attempt <= options_.max_reconnect_attempts;
       ++attempt) {
    if (result.ok()) {
      // Throttled (kResourceExhausted with a retry-after hint): sleep the
      // hinted duration — capped, so a hostile hint cannot park us — and
      // retry on the live connection, spending one attempt. Any other
      // successful response is final.
      if (result.value().status != StatusCode::kResourceExhausted) break;
      const auto hint_ms = ParseRetryAfterMs(result.value().body);
      if (!hint_ms.has_value()) break;
      const double sleep_seconds =
          std::min(static_cast<double>(*hint_ms) / 1000.0,
                   std::max(options_.max_retry_after_seconds, 0.0));
      if (sleep_seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
      }
      result = Call(type, body);
      continue;
    }
    if (options_.reconnect_backoff_seconds > 0.0) {
      const std::size_t exponent = std::min<std::size_t>(attempt - 1, 30);
      const double base = options_.reconnect_backoff_seconds *
                          static_cast<double>(std::size_t{1} << exponent);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(base * jitter_.Uniform(0.5, 1.0)));
    }
    const Status reconnected = Reconnect();
    if (!reconnected.ok()) {
      result = reconnected;
      continue;
    }
    result = Call(type, body);
  }
  return result;
}

}  // namespace f2db
