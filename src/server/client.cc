#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace f2db {
namespace {

/// Writes all of `data`, retrying on EINTR / short writes.
Status WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("write(): ") + ::strerror(errno));
  }
  return Status::OK();
}

/// Reads exactly `n` bytes into `out`, retrying on EINTR.
Status ReadExactly(int fd, std::size_t n, std::string* out) {
  out->resize(n);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out->data() + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      return Status::Unavailable("connection closed by server mid-frame");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("read(): ") + ::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<F2dbClient> F2dbClient::Connect(const std::string& host,
                                       std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + ::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparsable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable(std::string("connect(): ") + ::strerror(errno));
    ::close(fd);
    return status;
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return F2dbClient(fd);
}

F2dbClient::F2dbClient(F2dbClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

F2dbClient& F2dbClient::operator=(F2dbClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void F2dbClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireResponse> F2dbClient::Call(FrameType type, std::string body) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  WireRequest request;
  request.type = type;
  request.body = std::move(body);
  F2DB_RETURN_IF_ERROR(WriteAll(fd_, EncodeRequest(request)));

  std::string prefix;
  F2DB_RETURN_IF_ERROR(ReadExactly(fd_, 4, &prefix));
  const auto b = [&prefix](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[i]));
  };
  const std::uint32_t length = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (length < 3 || length > kMaxFrameBytes) {
    Close();  // framing is unrecoverable on this stream
    return Status::Unavailable("response frame length out of range: " +
                               std::to_string(length));
  }
  std::string payload;
  F2DB_RETURN_IF_ERROR(ReadExactly(fd_, length, &payload));
  return DecodeResponsePayload(payload);
}

}  // namespace f2db
