// F2dbServer: a multi-reactor epoll TCP serving layer over a forecast
// engine (one F2dbEngine or a ShardedEngine facade).
//
// Threading model (DESIGN.md §8, §11):
//   - A fixed pool of REACTOR threads (server/reactor.h). Each reactor
//     owns one epoll instance and, exclusively, its connections' sockets
//     and outboxes. With SO_REUSEPORT every reactor runs its own listener
//     and the kernel load-balances new connections; without it (older
//     kernels, or use_so_reuseport = false) reactor 0 accepts and hands
//     sockets off round-robin.
//   - A ThreadPool of workers executes complete requests. A QUERY goes
//     through the engine's const query layer (each shard pins its own
//     immutable snapshot), so serving reads never block maintenance;
//     INSERT goes through the owning shard's serialized maintenance layer.
//   - Workers hand finished responses back to the connection's owning
//     reactor through the outbox plus an eventfd wake — workers never
//     touch sockets.
//
// Admission control: the server tracks queued-plus-running requests in one
// atomic shared by all reactors. A request arriving while the count is at
// the configured limit is answered immediately with kUnavailable ("server
// overloaded") instead of being queued — bounded queues shed load early
// rather than building an unbounded backlog (the thundering-herd regime
// the ROADMAP's millions-of-users north star implies).
//
// Graceful shutdown: RequestShutdown() (async-signal-safe; see
// InstallSigtermShutdown) flips a flag and wakes every reactor. Each
// reactor stops accepting, answers late requests with kUnavailable, waits
// for in-flight work to finish and its own responses to flush (bounded by
// drain_timeout_seconds), then closes its connections and exits. After
// the drain the server checkpoints the engine — every shard of a sharded
// engine.

#ifndef F2DB_SERVER_SERVER_H_
#define F2DB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/concurrent.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "server/connection.h"
#include "server/reactor.h"
#include "server/wire.h"

namespace f2db {

/// Serving-layer tuning knobs. Immutable once the server is constructed.
struct ServerOptions {
  /// Listen address; tests and the loopback bench use 127.0.0.1.
  std::string host = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Reactor (event-loop) threads; each owns its connections exclusively
  /// (at least 1).
  std::size_t reactor_threads = 1;
  /// Per-reactor SO_REUSEPORT listeners when true (the kernel
  /// load-balances new connections across reactors). When false — or when
  /// the kernel rejects SO_REUSEPORT — reactor 0 runs the only listener
  /// and hands accepted sockets off round-robin.
  bool use_so_reuseport = true;
  /// Worker threads executing requests (at least 1).
  std::size_t worker_threads = 4;
  /// Admission watermark: requests queued or running before new arrivals
  /// are shed with kUnavailable.
  std::size_t admission_queue_limit = 64;
  /// Accepted sockets beyond this are refused (closed immediately);
  /// counted across all reactors.
  std::size_t max_connections = 256;
  /// Per-frame payload cap enforced by the decoder.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Graceful-shutdown drain bound; connections still busy afterwards are
  /// closed anyway.
  double drain_timeout_seconds = 10.0;
  /// Test-only: runs at the start of every worker task (before the request
  /// executes). Integration tests block here to saturate the admission
  /// queue deterministically. Leave empty in production.
  std::function<void()> worker_test_hook;
};

/// Value snapshot of the server counters (relaxed atomics underneath, like
/// EngineStats: individually exact, not mutually consistent).
struct ServerStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_closed = 0;
  std::size_t connections_refused = 0;
  std::size_t requests_received = 0;
  std::size_t responses_sent = 0;
  std::size_t requests_shed = 0;
  std::size_t protocol_errors = 0;
  std::size_t in_flight_requests = 0;

  /// Prometheus text for the server-side families (f2db_server_*).
  std::string ToPrometheusText() const;
};

/// The TCP serving layer. Does not own the engine; the engine must outlive
/// the server.
class F2dbServer {
 public:
  explicit F2dbServer(EngineInterface& engine, ServerOptions options = {});
  ~F2dbServer();

  F2dbServer(const F2dbServer&) = delete;
  F2dbServer& operator=(const F2dbServer&) = delete;

  /// Binds, listens, and starts the reactor pool + worker pool.
  Status Start();

  /// The bound port (resolved when options.port was 0). Valid after a
  /// successful Start().
  std::uint16_t port() const { return port_; }

  /// True from a successful Start() until every reactor has exited.
  bool running() const;

  /// True when Start() fell back to the single-listener hand-off path
  /// (use_so_reuseport = false or the kernel lacks SO_REUSEPORT). Valid
  /// after a successful Start(); exposed for tests and diagnostics.
  bool accept_handoff_active() const { return accept_handoff_; }

  /// Begins a graceful drain: async-signal-safe (atomic store + one
  /// eventfd write per reactor), callable from a signal handler.
  void RequestShutdown();

  /// RequestShutdown() plus join: blocks until in-flight requests drained
  /// (bounded by drain_timeout_seconds), all sockets are closed, and the
  /// worker pool has stopped. Then checkpoints a durable engine (every
  /// shard). Idempotent.
  void Shutdown();

  ServerStats stats() const;

  /// Combined Prometheus exposition: engine families (per-shard labels
  /// for a sharded engine) + server families. This is the STATS frame's
  /// response body.
  std::string StatsPrometheusText() const;

  /// Routes SIGTERM to server->RequestShutdown() — the drain-then-close
  /// shutdown path for a deployed process. Pass nullptr to detach.
  static Status InstallSigtermShutdown(F2dbServer* server);

 private:
  friend class Reactor;

  struct StatsCounters {
    RelaxedCounter connections_accepted;
    RelaxedCounter connections_closed;
    RelaxedCounter connections_refused;
    RelaxedCounter requests_received;
    RelaxedCounter responses_sent;
    RelaxedCounter requests_shed;
    RelaxedCounter protocol_errors;
  };

  /// Creates one non-blocking listener bound to host:port. Sets
  /// SO_REUSEPORT when `reuseport` is non-null and reports whether the
  /// kernel accepted it. On the first successful bind port_ is resolved.
  Result<int> CreateListener(bool* reuseport);

  /// Called by a reactor for every decoded request payload; runs on that
  /// reactor's thread.
  void HandleRequest(Reactor& reactor,
                     const std::shared_ptr<ServerConnection>& conn,
                     const std::string& payload);
  /// Executes one decoded request on a worker thread.
  WireResponse ExecuteRequest(const WireRequest& request) const;

  EngineInterface& engine_;
  const ServerOptions options_;
  mutable StatsCounters stats_;

  std::uint16_t port_ = 0;
  bool accept_handoff_ = false;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::unique_ptr<ThreadPool> pool_;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};

  /// Queued + running requests (admission control and drain tracking);
  /// shared across reactors.
  std::atomic<std::size_t> in_flight_{0};
  /// Open connections across all reactors (max_connections enforcement).
  std::atomic<std::size_t> num_connections_{0};
  /// Hand-off round-robin cursor (reactor 0's accept path).
  std::atomic<std::size_t> next_reactor_{0};
};

}  // namespace f2db

#endif  // F2DB_SERVER_SERVER_H_
