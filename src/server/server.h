// F2dbServer: a multi-reactor epoll TCP serving layer over a forecast
// engine (one F2dbEngine or a ShardedEngine facade).
//
// Threading model (DESIGN.md §8, §11):
//   - A fixed pool of REACTOR threads (server/reactor.h). Each reactor
//     owns one epoll instance and, exclusively, its connections' sockets
//     and outboxes. With SO_REUSEPORT every reactor runs its own listener
//     and the kernel load-balances new connections; without it (older
//     kernels, or use_so_reuseport = false) reactor 0 accepts and hands
//     sockets off round-robin.
//   - A ThreadPool of workers executes complete requests. A QUERY goes
//     through the engine's const query layer (each shard pins its own
//     immutable snapshot), so serving reads never block maintenance;
//     INSERT goes through the owning shard's serialized maintenance layer.
//   - Workers hand finished responses back to the connection's owning
//     reactor through the outbox plus an eventfd wake — workers never
//     touch sockets.
//
// Admission control: the server tracks queued-plus-running requests in one
// atomic shared by all reactors. A request arriving while the count is at
// the configured limit is answered immediately with kUnavailable ("server
// overloaded") instead of being queued — bounded queues shed load early
// rather than building an unbounded backlog (the thundering-herd regime
// the ROADMAP's millions-of-users north star implies).
//
// Graceful shutdown: RequestShutdown() (async-signal-safe; see
// InstallSigtermShutdown) flips a flag and wakes every reactor. Each
// reactor stops accepting, answers late requests with kUnavailable, waits
// for in-flight work to finish and its own responses to flush (bounded by
// drain_timeout_seconds), then closes its connections and exits. After
// the drain the server checkpoints the engine — every shard of a sharded
// engine.

#ifndef F2DB_SERVER_SERVER_H_
#define F2DB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/concurrent.h"
#include "common/rate_limiter.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "server/connection.h"
#include "server/reactor.h"
#include "server/wire.h"

namespace f2db {

/// Serving-layer tuning knobs. Immutable once the server is constructed.
struct ServerOptions {
  /// Listen address; tests and the loopback bench use 127.0.0.1.
  std::string host = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Reactor (event-loop) threads; each owns its connections exclusively
  /// (at least 1).
  std::size_t reactor_threads = 1;
  /// Per-reactor SO_REUSEPORT listeners when true (the kernel
  /// load-balances new connections across reactors). When false — or when
  /// the kernel rejects SO_REUSEPORT — reactor 0 runs the only listener
  /// and hands accepted sockets off round-robin.
  bool use_so_reuseport = true;
  /// Worker threads executing requests (at least 1).
  std::size_t worker_threads = 4;
  /// Admission watermark: requests queued or running before new arrivals
  /// are shed with kUnavailable.
  std::size_t admission_queue_limit = 64;
  /// Accepted sockets beyond this are refused (closed immediately);
  /// counted across all reactors.
  std::size_t max_connections = 256;
  /// Per-frame payload cap enforced by the decoder.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Graceful-shutdown drain bound; connections still busy afterwards are
  /// closed anyway.
  double drain_timeout_seconds = 10.0;
  /// Per-tenant token-bucket rate (QUERY/INSERT frames per second; tenants
  /// are bound by HELLO frames, connections that never said HELLO share
  /// the "" tenant). 0 disables rate limiting.
  double tenant_rate_limit_per_second = 0.0;
  /// Token-bucket burst (frames); <= 0 defaults to one second's worth.
  double tenant_rate_burst = 0.0;
  /// Outbound backpressure: reading from a connection pauses once its
  /// unsent bytes exceed this watermark (resumes at half). 0 disables
  /// pausing.
  std::size_t outbound_high_watermark_bytes = 256 * 1024;
  /// Hard ceiling on one connection's unsent bytes; a response that would
  /// cross it is refused and the connection evicted. 0 = unbounded.
  std::size_t outbound_hard_cap_bytes = 4 * 1024 * 1024;
  /// A connection read-paused longer than this is evicted as a slow
  /// client. <= 0 disables eviction (paused connections linger).
  double slow_client_grace_seconds = 5.0;
  /// Brownout watermark: while queued-plus-running requests are at or
  /// above this, queries run in brownout mode — the engine skips lazy
  /// re-estimation and serves the stale rung, annotated — shedding work
  /// BEFORE the admission limit starts refusing outright. 0 disables
  /// brownout. Should sit below admission_queue_limit.
  std::size_t brownout_watermark = 32;
  /// Test-only: runs at the start of every worker task (before the request
  /// executes). Integration tests block here to saturate the admission
  /// queue deterministically. Leave empty in production.
  std::function<void()> worker_test_hook;
};

/// Value snapshot of the server counters (relaxed atomics underneath, like
/// EngineStats: individually exact, not mutually consistent).
struct ServerStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_closed = 0;
  std::size_t connections_refused = 0;
  /// Connections dropped by backpressure (hard-cap overflow or the
  /// slow-client grace timer).
  std::size_t connections_evicted = 0;
  /// Times a connection crossed the outbound high watermark and had its
  /// reading paused.
  std::size_t read_pauses = 0;
  std::size_t requests_received = 0;
  std::size_t responses_sent = 0;
  /// Sum of the per-cause shed counters below (kept for compatibility).
  std::size_t requests_shed = 0;
  std::size_t requests_shed_admission = 0;
  std::size_t requests_shed_shutdown = 0;
  /// Requests refused with kResourceExhausted by a tenant's token bucket.
  std::size_t requests_throttled = 0;
  /// Requests whose deadline had already expired when the frame arrived.
  std::size_t deadline_expired_admission = 0;
  /// Requests whose deadline expired between admission and worker pickup.
  std::size_t deadline_expired_queue = 0;
  std::size_t protocol_errors = 0;
  /// Brownout-mode transitions (inactive -> active).
  std::size_t brownout_episodes = 0;
  /// Queries executed in brownout mode.
  std::size_t brownout_queries = 0;
  /// 1 while the server is currently in brownout.
  std::size_t brownout_active = 0;
  std::size_t in_flight_requests = 0;

  /// Prometheus text for the server-side families (f2db_server_*).
  std::string ToPrometheusText() const;
};

/// The TCP serving layer. Does not own the engine; the engine must outlive
/// the server.
class F2dbServer {
 public:
  explicit F2dbServer(EngineInterface& engine, ServerOptions options = {});
  ~F2dbServer();

  F2dbServer(const F2dbServer&) = delete;
  F2dbServer& operator=(const F2dbServer&) = delete;

  /// Binds, listens, and starts the reactor pool + worker pool.
  Status Start();

  /// The bound port (resolved when options.port was 0). Valid after a
  /// successful Start().
  std::uint16_t port() const { return port_; }

  /// True from a successful Start() until every reactor has exited.
  bool running() const;

  /// True when Start() fell back to the single-listener hand-off path
  /// (use_so_reuseport = false or the kernel lacks SO_REUSEPORT). Valid
  /// after a successful Start(); exposed for tests and diagnostics.
  bool accept_handoff_active() const { return accept_handoff_; }

  /// Begins a graceful drain: async-signal-safe (atomic store + one
  /// eventfd write per reactor), callable from a signal handler.
  void RequestShutdown();

  /// RequestShutdown() plus join: blocks until in-flight requests drained
  /// (bounded by drain_timeout_seconds), all sockets are closed, and the
  /// worker pool has stopped. Then checkpoints a durable engine (every
  /// shard). Idempotent.
  void Shutdown();

  ServerStats stats() const;

  /// Combined Prometheus exposition: engine families (per-shard labels
  /// for a sharded engine) + server families. This is the STATS frame's
  /// response body.
  std::string StatsPrometheusText() const;

  /// Routes SIGTERM to server->RequestShutdown() — the drain-then-close
  /// shutdown path for a deployed process. Pass nullptr to detach.
  static Status InstallSigtermShutdown(F2dbServer* server);

 private:
  friend class Reactor;

  struct StatsCounters {
    RelaxedCounter connections_accepted;
    RelaxedCounter connections_closed;
    RelaxedCounter connections_refused;
    RelaxedCounter connections_evicted;
    RelaxedCounter read_pauses;
    RelaxedCounter requests_received;
    RelaxedCounter responses_sent;
    RelaxedCounter requests_shed_admission;
    RelaxedCounter requests_shed_shutdown;
    RelaxedCounter requests_throttled;
    RelaxedCounter deadline_expired_admission;
    RelaxedCounter deadline_expired_queue;
    RelaxedCounter protocol_errors;
    RelaxedCounter brownout_episodes;
    RelaxedCounter brownout_queries;
  };

  /// Creates one non-blocking listener bound to host:port. Sets
  /// SO_REUSEPORT when `reuseport` is non-null and reports whether the
  /// kernel accepted it. On the first successful bind port_ is resolved.
  Result<int> CreateListener(bool* reuseport);

  /// Called by a reactor for every decoded request payload; runs on that
  /// reactor's thread. Walks the admission ladder: HELLO/PING inline,
  /// shutdown shed, deadline-at-admission, per-tenant throttle, watermark
  /// shed, brownout decision, then hands off to a worker.
  void HandleRequest(Reactor& reactor,
                     const std::shared_ptr<ServerConnection>& conn,
                     const std::string& payload);
  /// Executes one decoded request on a worker thread. `deadline` and
  /// `brownout` were stamped by admission and propagate into the engine's
  /// ForecastQuery.
  WireResponse ExecuteRequest(const WireRequest& request,
                              std::chrono::steady_clock::time_point deadline,
                              bool brownout) const;

  EngineInterface& engine_;
  const ServerOptions options_;
  mutable StatsCounters stats_;

  std::uint16_t port_ = 0;
  bool accept_handoff_ = false;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::unique_ptr<ThreadPool> pool_;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};

  /// Per-tenant token buckets; null when rate limiting is disabled.
  std::unique_ptr<TenantRateLimiters> limiters_;
  /// Whether the server is currently in brownout (hysteresis state for
  /// episode counting and the f2db_server_brownout_active gauge).
  std::atomic<bool> brownout_active_{false};

  /// Queued + running requests (admission control and drain tracking);
  /// shared across reactors.
  std::atomic<std::size_t> in_flight_{0};
  /// Open connections across all reactors (max_connections enforcement).
  std::atomic<std::size_t> num_connections_{0};
  /// Hand-off round-robin cursor (reactor 0's accept path).
  std::atomic<std::size_t> next_reactor_{0};
};

}  // namespace f2db

#endif  // F2DB_SERVER_SERVER_H_
