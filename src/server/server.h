// F2dbServer: an epoll-based TCP serving layer over one F2dbEngine.
//
// Threading model (DESIGN.md §8):
//   - ONE event-loop thread owns every socket: it accepts connections,
//     reads bytes into per-connection FrameDecoders, and writes queued
//     response frames back out. Sockets are non-blocking; readiness comes
//     from a single epoll instance.
//   - A ThreadPool of workers executes complete requests. A QUERY pins the
//     engine's current EngineSnapshot through the const query layer, so
//     serving reads never blocks maintenance (and vice versa); INSERT goes
//     through the engine's serialized maintenance layer.
//   - Workers hand finished responses back to the event loop through the
//     connection outbox plus an eventfd wake — workers never touch sockets.
//
// Admission control: the server tracks queued-plus-running requests in one
// atomic. A request arriving while the count is at the configured limit is
// answered immediately with kUnavailable ("server overloaded") instead of
// being queued — bounded queues shed load early rather than building an
// unbounded backlog (the thundering-herd regime the ROADMAP's
// millions-of-users north star implies).
//
// Graceful shutdown: RequestShutdown() (async-signal-safe; see
// InstallSigtermShutdown) flips a flag and wakes the loop. The loop stops
// accepting, answers any late requests with kUnavailable, waits for
// in-flight work to finish and every response to flush (bounded by
// drain_timeout_seconds), then closes all connections and exits.

#ifndef F2DB_SERVER_SERVER_H_
#define F2DB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/concurrent.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "server/connection.h"
#include "server/wire.h"

namespace f2db {

/// Serving-layer tuning knobs. Immutable once the server is constructed.
struct ServerOptions {
  /// Listen address; tests and the loopback bench use 127.0.0.1.
  std::string host = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Worker threads executing requests (at least 1).
  std::size_t worker_threads = 4;
  /// Admission watermark: requests queued or running before new arrivals
  /// are shed with kUnavailable.
  std::size_t admission_queue_limit = 64;
  /// Accepted sockets beyond this are refused (closed immediately).
  std::size_t max_connections = 256;
  /// Per-frame payload cap enforced by the decoder.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Graceful-shutdown drain bound; connections still busy afterwards are
  /// closed anyway.
  double drain_timeout_seconds = 10.0;
  /// Test-only: runs at the start of every worker task (before the request
  /// executes). Integration tests block here to saturate the admission
  /// queue deterministically. Leave empty in production.
  std::function<void()> worker_test_hook;
};

/// Value snapshot of the server counters (relaxed atomics underneath, like
/// EngineStats: individually exact, not mutually consistent).
struct ServerStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_closed = 0;
  std::size_t connections_refused = 0;
  std::size_t requests_received = 0;
  std::size_t responses_sent = 0;
  std::size_t requests_shed = 0;
  std::size_t protocol_errors = 0;
  std::size_t in_flight_requests = 0;

  /// Prometheus text for the server-side families (f2db_server_*).
  std::string ToPrometheusText() const;
};

/// The TCP serving layer. Does not own the engine; the engine must outlive
/// the server.
class F2dbServer {
 public:
  explicit F2dbServer(F2dbEngine& engine, ServerOptions options = {});
  ~F2dbServer();

  F2dbServer(const F2dbServer&) = delete;
  F2dbServer& operator=(const F2dbServer&) = delete;

  /// Binds, listens, and starts the event loop + worker pool.
  Status Start();

  /// The bound port (resolved when options.port was 0). Valid after a
  /// successful Start().
  std::uint16_t port() const { return port_; }

  /// True from a successful Start() until the event loop has exited.
  bool running() const { return loop_running_.load(std::memory_order_acquire); }

  /// Begins a graceful drain: async-signal-safe (one atomic store and one
  /// eventfd write), callable from a signal handler.
  void RequestShutdown();

  /// RequestShutdown() plus join: blocks until in-flight requests drained
  /// (bounded by drain_timeout_seconds), all sockets are closed, and the
  /// worker pool has stopped. Idempotent.
  void Shutdown();

  ServerStats stats() const;

  /// Combined Prometheus exposition: engine families + server families.
  /// This is the STATS frame's response body.
  std::string StatsPrometheusText() const;

  /// Routes SIGTERM to server->RequestShutdown() — the drain-then-close
  /// shutdown path for a deployed process. Pass nullptr to detach.
  static Status InstallSigtermShutdown(F2dbServer* server);

 private:
  struct StatsCounters {
    RelaxedCounter connections_accepted;
    RelaxedCounter connections_closed;
    RelaxedCounter connections_refused;
    RelaxedCounter requests_received;
    RelaxedCounter responses_sent;
    RelaxedCounter requests_shed;
    RelaxedCounter protocol_errors;
  };

  void EventLoop();
  void HandleAccept();
  void HandleRequest(const std::shared_ptr<ServerConnection>& conn,
                     const std::string& payload);
  /// Executes one decoded request on a worker thread.
  WireResponse ExecuteRequest(const WireRequest& request) const;
  /// Queues `response` on `conn` and schedules a flush.
  void Respond(const std::shared_ptr<ServerConnection>& conn,
               const WireResponse& response);
  /// Flushes one connection's pending bytes; manages EPOLLOUT arming and
  /// close-after-flush. Event-loop thread only.
  void FlushConnection(const std::shared_ptr<ServerConnection>& conn);
  void DropConnection(const std::shared_ptr<ServerConnection>& conn);
  /// True when no request is in flight and every connection is flushed.
  bool DrainComplete();
  /// Wakes the event loop (eventfd write; async-signal-safe).
  void Wake();
  void CloseListenFd();

  F2dbEngine& engine_;
  const ServerOptions options_;
  mutable StatsCounters stats_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;
  std::atomic<bool> loop_running_{false};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;

  /// Queued + running requests (admission control and drain tracking).
  std::atomic<std::size_t> in_flight_{0};

  /// Event-loop-owned connection table.
  std::unordered_map<int, std::shared_ptr<ServerConnection>> connections_;

  /// Connections with responses enqueued by workers, awaiting a flush.
  std::mutex pending_mutex_;
  std::vector<std::shared_ptr<ServerConnection>> pending_write_;
};

}  // namespace f2db

#endif  // F2DB_SERVER_SERVER_H_
