// Reactor: one event-loop thread of the multi-reactor server.
//
// The server runs a fixed pool of reactors (DESIGN.md §11). Each reactor
// owns, exclusively and for the connection's whole lifetime:
//   - its epoll instance and wake eventfd;
//   - an optional listening socket (every reactor has one under
//     SO_REUSEPORT, where the kernel load-balances new connections; only
//     reactor 0 listens in the hand-off fallback and distributes accepted
//     sockets round-robin);
//   - its connections' sockets, decoder state, and outboxes.
// No socket is ever touched by two reactors: a handed-off fd changes
// owners exactly once, through the AdoptSocket mailbox, before the
// receiving reactor registers it with epoll. Worker threads never touch
// sockets either — they enqueue encoded responses on the connection
// outbox and signal the owning reactor via NoteResponseReady + Wake.
//
// Request execution, admission control, and the shared counters live on
// F2dbServer; the reactor calls back into it for every decoded payload.

#ifndef F2DB_SERVER_REACTOR_H_
#define F2DB_SERVER_REACTOR_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "server/connection.h"

namespace f2db {

class F2dbServer;

class Reactor {
 public:
  /// `index` is the reactor's slot in the server's pool (used in hand-off
  /// round-robin and diagnostics). The server must outlive the reactor.
  Reactor(F2dbServer& server, std::size_t index);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the epoll instance and wake eventfd.
  Status Init();

  /// Hands this reactor its listening socket (before Start); the reactor
  /// owns and closes it. -1 = this reactor does not listen.
  void SetListenFd(int fd);

  /// Spawns the event-loop thread. Init() must have succeeded.
  Status Start();

  /// True while the event loop runs.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Wakes the event loop. Async-signal-safe (one eventfd write).
  void Wake();

  /// Joins the event-loop thread (after the server requested shutdown).
  void Join();

  /// Transfers ownership of an accepted socket to this reactor (hand-off
  /// fallback). Thread-safe; the fd is registered on the next loop
  /// iteration. After this call only this reactor may touch the fd.
  void AdoptSocket(int fd);

  /// Worker threads: a response was enqueued on `conn`'s outbox; schedule
  /// a flush. Thread-safe. Callers must Wake() afterwards.
  void NoteResponseReady(const std::shared_ptr<ServerConnection>& conn);

  /// Enqueues an already-encoded response and flushes immediately.
  /// EVENT-LOOP THREAD ONLY — used for inline answers (PING, admission
  /// shedding, protocol errors) from the request path.
  void RespondNow(const std::shared_ptr<ServerConnection>& conn,
                  std::string encoded);

  std::size_t index() const { return index_; }

 private:
  void EventLoop();
  void HandleAccept();
  /// Registers a socket this reactor owns (accepted or adopted).
  void RegisterConnection(int fd);
  /// Flushes one connection's pending bytes; evicts over-cap connections,
  /// manages epoll interest and close-after-flush. Event-loop thread only.
  void FlushConnection(const std::shared_ptr<ServerConnection>& conn);
  /// Recomputes the connection's epoll interest from its backpressure and
  /// write state: pauses reading past the outbound high watermark, resumes
  /// under half of it, arms/disarms EPOLLOUT. Event-loop thread only.
  void UpdateInterest(const std::shared_ptr<ServerConnection>& conn);
  /// Grace sweep over paused connections: resumes the ones that drained,
  /// evicts the ones still stalled past slow_client_grace_seconds.
  void SweepPausedConnections();
  void DropConnection(const std::shared_ptr<ServerConnection>& conn);
  /// True when no request is in flight server-wide and every connection
  /// of THIS reactor is flushed.
  bool DrainComplete();
  void CloseListenFd();

  F2dbServer& server_;
  const std::size_t index_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;

  std::thread thread_;
  std::atomic<bool> running_{false};

  /// Reactor-thread-owned connection table.
  std::unordered_map<int, std::shared_ptr<ServerConnection>> connections_;
  /// Connections currently read-paused (backpressure); when non-zero the
  /// event loop ticks on a timeout to run the grace sweep.
  std::size_t num_paused_ = 0;

  /// Cross-thread inboxes, drained once per loop iteration.
  std::mutex pending_mutex_;
  std::vector<std::shared_ptr<ServerConnection>> pending_write_;
  std::vector<int> adopted_fds_;
};

}  // namespace f2db

#endif  // F2DB_SERVER_REACTOR_H_
