#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "engine/stats_export.h"

namespace f2db {
namespace {

/// SIGTERM routing target (see InstallSigtermShutdown). Lock-free atomic:
/// safe to read from the handler.
std::atomic<F2dbServer*> g_sigterm_server{nullptr};

void SigtermHandler(int /*signo*/) {
  if (F2dbServer* server = g_sigterm_server.load(std::memory_order_relaxed)) {
    server->RequestShutdown();
  }
}

/// Renders a QUERY result like the interactive shell does, so a client
/// sees familiar text either way. The node name travels in the result, so
/// no engine snapshot is needed here — a sharded engine has no single
/// global snapshot to pin.
std::string RenderQueryResult(const QueryResult& result) {
  std::string out = "-- node: " + result.node_name + "\n";
  if (result.degradation != DegradationLevel::kNone) {
    out += "-- degraded: " +
           std::string(DegradationLevelName(result.degradation)) + " (" +
           result.degradation_reason + ")\n";
  }
  char buffer[160];
  for (const ForecastRow& row : result.rows) {
    if (row.has_interval) {
      std::snprintf(buffer, sizeof(buffer), "%lld | %.4f  [%.4f, %.4f]\n",
                    static_cast<long long>(row.time), row.value, row.lower,
                    row.upper);
    } else {
      std::snprintf(buffer, sizeof(buffer), "%lld | %.4f\n",
                    static_cast<long long>(row.time), row.value);
    }
    out += buffer;
  }
  return out;
}

std::string RenderExplainResult(const ExplainResult& plan) {
  std::string out = "Forecast Query Plan\n";
  out += "  node:    " + plan.node_name + " (#" + std::to_string(plan.node) +
         ")\n";
  out += "  horizon: " + std::to_string(plan.horizon) + "\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "  weight:  %.6f\n", plan.weight);
  out += buffer;
  out += "  scheme:  from " + std::to_string(plan.sources.size()) +
         " model(s)\n";
  for (const std::string& m : plan.source_models) out += "    " + m + "\n";
  return out;
}

WireResponse ErrorResponse(FrameType type, const Status& status) {
  WireResponse response;
  response.type = type;
  response.status = status.code();
  response.body = status.message();
  return response;
}

/// One `family{label="value"} N` sample line.
void AppendLabeledSample(std::string* out, std::string_view name,
                         std::string_view label, std::string_view value,
                         std::size_t count) {
  out->append(name)
      .append("{")
      .append(label)
      .append("=\"")
      .append(PrometheusEscapeLabelValue(value))
      .append("\"} ")
      .append(std::to_string(count))
      .append("\n");
}

}  // namespace

std::string ServerStats::ToPrometheusText() const {
  std::string out;
  out.reserve(2048);
  AppendPrometheusCounter(&out, "f2db_server_connections_accepted_total",
                          "Client connections accepted.",
                          static_cast<double>(connections_accepted));
  AppendPrometheusCounter(&out, "f2db_server_connections_closed_total",
                          "Client connections closed (peer or server side).",
                          static_cast<double>(connections_closed));
  AppendPrometheusCounter(&out, "f2db_server_connections_refused_total",
                          "Connections refused at the max_connections cap.",
                          static_cast<double>(connections_refused));
  AppendPrometheusCounter(
      &out, "f2db_server_connections_evicted_total",
      "Connections dropped by backpressure (outbound hard cap or the "
      "slow-client grace timer).",
      static_cast<double>(connections_evicted));
  AppendPrometheusCounter(
      &out, "f2db_server_read_pauses_total",
      "Times a connection crossed the outbound high watermark and had its "
      "reading paused.",
      static_cast<double>(read_pauses));
  AppendPrometheusCounter(&out, "f2db_server_requests_total",
                          "Request frames received.",
                          static_cast<double>(requests_received));
  AppendPrometheusCounter(&out, "f2db_server_responses_total",
                          "Response frames queued for transmission.",
                          static_cast<double>(responses_sent));
  // Labeled per-cause breakdown plus the unlabeled total, matching the
  // sharded engine's exposition style.
  out.append(
      "# HELP f2db_server_requests_shed_total Requests answered kUnavailable "
      "by admission control, by cause.\n"
      "# TYPE f2db_server_requests_shed_total counter\n");
  AppendLabeledSample(&out, "f2db_server_requests_shed_total", "cause",
                      "admission", requests_shed_admission);
  AppendLabeledSample(&out, "f2db_server_requests_shed_total", "cause",
                      "shutdown", requests_shed_shutdown);
  out.append("f2db_server_requests_shed_total ")
      .append(std::to_string(requests_shed))
      .append("\n");
  AppendPrometheusCounter(
      &out, "f2db_server_requests_throttled_total",
      "Requests refused with kResourceExhausted by a tenant's token bucket.",
      static_cast<double>(requests_throttled));
  out.append(
      "# HELP f2db_server_deadline_expired_total Requests rejected with "
      "kDeadlineExceeded before execution, by pipeline stage.\n"
      "# TYPE f2db_server_deadline_expired_total counter\n");
  AppendLabeledSample(&out, "f2db_server_deadline_expired_total", "stage",
                      "admission", deadline_expired_admission);
  AppendLabeledSample(&out, "f2db_server_deadline_expired_total", "stage",
                      "queue", deadline_expired_queue);
  out.append("f2db_server_deadline_expired_total ")
      .append(std::to_string(deadline_expired_admission +
                             deadline_expired_queue))
      .append("\n");
  AppendPrometheusCounter(&out, "f2db_server_protocol_errors_total",
                          "Malformed or oversized frames received.",
                          static_cast<double>(protocol_errors));
  AppendPrometheusCounter(&out, "f2db_server_brownout_episodes_total",
                          "Brownout-mode transitions (inactive to active).",
                          static_cast<double>(brownout_episodes));
  AppendPrometheusCounter(&out, "f2db_server_brownout_queries_total",
                          "Queries executed in brownout mode.",
                          static_cast<double>(brownout_queries));
  AppendPrometheusGauge(&out, "f2db_server_brownout_active",
                        "1 while the server is currently in brownout.",
                        static_cast<double>(brownout_active));
  AppendPrometheusGauge(&out, "f2db_server_inflight_requests",
                        "Requests queued or executing right now.",
                        static_cast<double>(in_flight_requests));
  return out;
}

F2dbServer::F2dbServer(EngineInterface& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.tenant_rate_limit_per_second > 0) {
    limiters_ = std::make_unique<TenantRateLimiters>(
        options_.tenant_rate_limit_per_second, options_.tenant_rate_burst);
  }
}

F2dbServer::~F2dbServer() {
  Shutdown();
  if (g_sigterm_server.load(std::memory_order_relaxed) == this) {
    g_sigterm_server.store(nullptr, std::memory_order_relaxed);
  }
}

Result<int> F2dbServer::CreateListener(bool* reuseport) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + ::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (reuseport != nullptr) {
#ifdef SO_REUSEPORT
    *reuseport = ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &enable,
                              sizeof(enable)) == 0;
#else
    *reuseport = false;
#endif
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // After the first bind, port_ carries the resolved port so every
  // SO_REUSEPORT sibling binds the same one.
  addr.sin_port = htons(port_ != 0 ? port_ : options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparsable listen host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Internal(std::string("bind(): ") + ::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status =
        Status::Internal(std::string("listen(): ") + ::strerror(errno));
    ::close(fd);
    return status;
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0) {
      const Status status =
          Status::Internal(std::string("getsockname(): ") + ::strerror(errno));
      ::close(fd);
      return status;
    }
    port_ = ntohs(bound.sin_port);
  }
  return fd;
}

Status F2dbServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  const std::size_t num_reactors =
      options_.reactor_threads > 0 ? options_.reactor_threads : 1;

  reactors_.clear();
  reactors_.reserve(num_reactors);
  for (std::size_t i = 0; i < num_reactors; ++i) {
    auto reactor = std::make_unique<Reactor>(*this, i);
    const Status status = reactor->Init();
    if (!status.ok()) {
      reactors_.clear();
      return status;
    }
    reactors_.push_back(std::move(reactor));
  }

  // Listener topology: one SO_REUSEPORT listener per reactor when the
  // option is on and the kernel cooperates; otherwise reactor 0 runs the
  // only listener and hands accepted sockets off round-robin (the
  // fallback also covers single-reactor servers, where hand-off is moot).
  accept_handoff_ = !(options_.use_so_reuseport && num_reactors > 1);
  bool reuseport_ok = false;
  Result<int> first = CreateListener(
      accept_handoff_ ? nullptr : &reuseport_ok);
  if (!first.ok()) {
    reactors_.clear();
    port_ = 0;
    return first.status();
  }
  if (!accept_handoff_ && !reuseport_ok) {
    // The kernel refused SO_REUSEPORT: fall back to the hand-off path on
    // the socket we already bound.
    accept_handoff_ = true;
  }
  reactors_[0]->SetListenFd(first.value());
  if (!accept_handoff_) {
    for (std::size_t i = 1; i < num_reactors; ++i) {
      bool sibling_ok = false;
      Result<int> sibling = CreateListener(&sibling_ok);
      if (!sibling.ok() || !sibling_ok) {
        if (sibling.ok()) ::close(sibling.value());
        // A sibling failed to share the port: close ranks around the
        // already-bound reactor-0 listener and hand off instead.
        accept_handoff_ = true;
        break;
      }
      reactors_[i]->SetListenFd(sibling.value());
    }
  }

  pool_ = std::make_unique<ThreadPool>(
      options_.worker_threads > 0 ? options_.worker_threads : 1);
  started_ = true;
  shutdown_requested_.store(false, std::memory_order_release);
  for (auto& reactor : reactors_) {
    const Status status = reactor->Start();
    if (!status.ok()) {
      Shutdown();
      return status;
    }
  }
  return Status::OK();
}

bool F2dbServer::running() const {
  for (const auto& reactor : reactors_) {
    if (reactor->running()) return true;
  }
  return false;
}

void F2dbServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  for (const auto& reactor : reactors_) reactor->Wake();
}

void F2dbServer::Shutdown() {
  RequestShutdown();
  for (const auto& reactor : reactors_) reactor->Join();
  // The pool destructor drains queued tasks; connection objects must stay
  // alive until then (stragglers append to outboxes).
  pool_.reset();
  // All requests have drained: take a shutdown checkpoint — every shard
  // of a sharded engine — so the next open recovers from snapshots
  // instead of replaying whole WAL tails. Failure is non-fatal: the WAL
  // alone still recovers everything.
  if (started_ && engine_.durable()) {
    // Seal the closed history first: the follow-up checkpoint then covers
    // only the live tail, and the next open bulk-loads from segments.
    const Status compacted = engine_.CompactNow();
    if (!compacted.ok()) {
      F2DB_LOG(kWarning) << "shutdown compaction failed: "
                         << compacted.message();
    }
    const Status checkpointed = engine_.CheckpointNow();
    if (!checkpointed.ok()) {
      F2DB_LOG(kWarning) << "shutdown checkpoint failed: "
                         << checkpointed.message();
    }
  }
  started_ = false;  // a repeated Shutdown (destructor) is a no-op
  reactors_.clear();  // destructors close epoll/wake/listen fds
  port_ = 0;
  num_connections_.store(0, std::memory_order_relaxed);
}

ServerStats F2dbServer::stats() const {
  ServerStats out;
  out.connections_accepted = stats_.connections_accepted.Load();
  out.connections_closed = stats_.connections_closed.Load();
  out.connections_refused = stats_.connections_refused.Load();
  out.connections_evicted = stats_.connections_evicted.Load();
  out.read_pauses = stats_.read_pauses.Load();
  out.requests_received = stats_.requests_received.Load();
  out.responses_sent = stats_.responses_sent.Load();
  out.requests_shed_admission = stats_.requests_shed_admission.Load();
  out.requests_shed_shutdown = stats_.requests_shed_shutdown.Load();
  out.requests_shed = out.requests_shed_admission + out.requests_shed_shutdown;
  out.requests_throttled = stats_.requests_throttled.Load();
  out.deadline_expired_admission = stats_.deadline_expired_admission.Load();
  out.deadline_expired_queue = stats_.deadline_expired_queue.Load();
  out.protocol_errors = stats_.protocol_errors.Load();
  out.brownout_episodes = stats_.brownout_episodes.Load();
  out.brownout_queries = stats_.brownout_queries.Load();
  out.brownout_active =
      brownout_active_.load(std::memory_order_relaxed) ? 1 : 0;
  out.in_flight_requests = in_flight_.load(std::memory_order_relaxed);
  return out;
}

std::string F2dbServer::StatsPrometheusText() const {
  return engine_.StatsPrometheusText() + stats().ToPrometheusText();
}

Status F2dbServer::InstallSigtermShutdown(F2dbServer* server) {
  g_sigterm_server.store(server, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = server != nullptr ? SigtermHandler : SIG_DFL;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::Internal(std::string("sigaction(): ") + ::strerror(errno));
  }
  return Status::OK();
}

void F2dbServer::HandleRequest(Reactor& reactor,
                               const std::shared_ptr<ServerConnection>& conn,
                               const std::string& payload) {
  stats_.requests_received.Add();
  auto decoded = DecodeRequestPayload(payload);
  if (!decoded.ok()) {
    stats_.protocol_errors.Add();
    reactor.RespondNow(
        conn, EncodeResponse(ErrorResponse(FrameType::kPing, decoded.status())));
    return;
  }
  WireRequest request = std::move(decoded).value();

  // PING is answered inline on the reactor thread: it measures
  // serving-layer liveness, not worker availability.
  if (request.type == FrameType::kPing) {
    WireResponse pong;
    pong.type = FrameType::kPing;
    pong.body = "PONG";
    reactor.RespondNow(conn, EncodeResponse(pong));
    return;
  }

  // HELLO binds the connection's tenant identity (and its rate-limiter
  // bucket) inline on the reactor thread, which owns conn's tenant state.
  if (request.type == FrameType::kHello) {
    conn->tenant_id = request.body;
    conn->rate_limiter =
        limiters_ ? limiters_->BucketFor(conn->tenant_id) : nullptr;
    WireResponse hello;
    hello.type = FrameType::kHello;
    hello.body = "HELLO tenant=" +
                 (conn->tenant_id.empty() ? std::string("(default)")
                                          : conn->tenant_id);
    reactor.RespondNow(conn, EncodeResponse(hello));
    return;
  }

  if (shutdown_requested_.load(std::memory_order_acquire)) {
    stats_.requests_shed_shutdown.Add();
    reactor.RespondNow(
        conn, EncodeResponse(ErrorResponse(
                  request.type, Status::Unavailable("server shutting down"))));
    return;
  }

  // Deadline at admission: a frame whose budget is already gone is
  // answered without consuming a worker, a queue slot, or a rate token.
  const auto now = std::chrono::steady_clock::now();
  auto deadline = ForecastQuery::kNoDeadline;
  if (request.has_deadline) {
    deadline = now + std::chrono::milliseconds(request.deadline_ms);
    if (request.deadline_ms == 0) {
      stats_.deadline_expired_admission.Add();
      reactor.RespondNow(
          conn, EncodeResponse(ErrorResponse(
                    request.type, Status::DeadlineExceeded(
                                      "deadline expired before admission"))));
      return;
    }
  }

  // Per-tenant quota, enforced AHEAD of the global watermark so one
  // flooding tenant is throttled before it can crowd out the others.
  // STATS stays exempt: monitoring must work during an overload.
  if (limiters_ && request.type != FrameType::kStats) {
    if (conn->rate_limiter == nullptr) {
      conn->rate_limiter = limiters_->BucketFor(conn->tenant_id);
    }
    std::uint64_t retry_after_ns = 0;
    if (!conn->rate_limiter->TryAcquire(&retry_after_ns)) {
      stats_.requests_throttled.Add();
      const std::uint32_t retry_ms = static_cast<std::uint32_t>(
          std::min<std::uint64_t>((retry_after_ns + 999'999) / 1'000'000,
                                  60'000));
      WireResponse throttled;
      throttled.type = request.type;
      throttled.status = StatusCode::kResourceExhausted;
      throttled.body = EncodeThrottleBody(
          std::max<std::uint32_t>(retry_ms, 1),
          "tenant '" + conn->tenant_id + "' over rate limit");
      reactor.RespondNow(conn, EncodeResponse(throttled));
      return;
    }
  }

  // Admission control: shed instead of queueing past the watermark. The
  // watermark is global — reactors share one worker pool.
  const std::size_t depth = in_flight_.load(std::memory_order_relaxed);
  if (depth >= options_.admission_queue_limit) {
    stats_.requests_shed_admission.Add();
    reactor.RespondNow(
        conn,
        EncodeResponse(ErrorResponse(
            request.type,
            Status::Unavailable("server overloaded: admission queue depth " +
                                std::to_string(depth) + " at limit " +
                                std::to_string(options_.admission_queue_limit)))));
    return;
  }

  // Brownout: between the brownout watermark and the admission limit,
  // queries are still served but forced down the degradation ladder (no
  // lazy re-estimation; the stale rung, annotated). Hysteresis at half
  // the watermark keeps the active flag from flapping.
  bool brownout = false;
  if (options_.brownout_watermark > 0) {
    if (depth >= options_.brownout_watermark) {
      brownout = true;
      stats_.brownout_queries.Add();
      if (!brownout_active_.exchange(true, std::memory_order_relaxed)) {
        stats_.brownout_episodes.Add();
      }
    } else if (depth < options_.brownout_watermark / 2) {
      brownout_active_.store(false, std::memory_order_relaxed);
    }
  }

  in_flight_.fetch_add(1, std::memory_order_relaxed);
  conn->BeginRequest();
  pool_->Submit([this, &reactor, conn, deadline, brownout,
                 request = std::move(request)] {
    if (options_.worker_test_hook) options_.worker_test_hook();
    WireResponse response;
    // Deadline at dequeue: work that expired while queued is answered
    // cheaply instead of executed uselessly.
    if (deadline != ForecastQuery::kNoDeadline &&
        std::chrono::steady_clock::now() >= deadline) {
      stats_.deadline_expired_queue.Add();
      response = ErrorResponse(
          request.type,
          Status::DeadlineExceeded("deadline expired while queued"));
    } else {
      response = ExecuteRequest(request, deadline, brownout);
    }
    conn->EnqueueResponse(EncodeResponse(response));
    stats_.responses_sent.Add();
    reactor.NoteResponseReady(conn);
    conn->EndRequest();
    // Decrement AFTER the response is visible in the outbox, so the drain
    // check never sees zero in-flight with an unflushed response.
    in_flight_.fetch_sub(1, std::memory_order_release);
    reactor.Wake();
  });
}

WireResponse F2dbServer::ExecuteRequest(
    const WireRequest& request, std::chrono::steady_clock::time_point deadline,
    bool brownout) const {
  WireResponse response;
  response.type = request.type;
  switch (request.type) {
    case FrameType::kPing:
    case FrameType::kHello:
      response.body = "PONG";
      return response;
    case FrameType::kStats:
      response.body = StatsPrometheusText();
      return response;
    case FrameType::kQuery: {
      auto parsed = ParseStatement(request.body);
      if (!parsed.ok()) return ErrorResponse(request.type, parsed.status());
      Statement& statement = parsed.value();
      if (statement.kind == Statement::Kind::kInsert) {
        return ErrorResponse(
            request.type,
            Status::InvalidArgument(
                "INSERT statements must be sent as INSERT frames"));
      }
      if (statement.kind == Statement::Kind::kExplain) {
        auto plan = engine_.Explain(statement.forecast);
        if (!plan.ok()) return ErrorResponse(request.type, plan.status());
        response.body = RenderExplainResult(plan.value());
        return response;
      }
      // The serving layer stamps the overload context; the SQL itself
      // never carries deadlines or brownout.
      statement.forecast.deadline = deadline;
      statement.forecast.brownout = brownout;
      auto result = engine_.Execute(statement.forecast);
      if (!result.ok()) return ErrorResponse(request.type, result.status());
      response.degradation = result.value().degradation;
      response.body = RenderQueryResult(result.value());
      return response;
    }
    case FrameType::kInsert: {
      auto parsed = ParseStatement(request.body);
      if (!parsed.ok()) return ErrorResponse(request.type, parsed.status());
      const Statement& statement = parsed.value();
      if (statement.kind != Statement::Kind::kInsert) {
        return ErrorResponse(request.type,
                             Status::InvalidArgument(
                                 "INSERT frame requires an INSERT statement"));
      }
      const Status status = engine_.InsertFact(statement.insert.base_values,
                                               statement.insert.time,
                                               statement.insert.value);
      if (!status.ok()) return ErrorResponse(request.type, status);
      response.body = "INSERT ok (" + std::to_string(engine_.pending_inserts()) +
                      " buffered)";
      return response;
    }
  }
  return ErrorResponse(request.type,
                       Status::Internal("unhandled frame type"));
}

}  // namespace f2db
