#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "engine/stats_export.h"

namespace f2db {
namespace {

/// SIGTERM routing target (see InstallSigtermShutdown). Lock-free atomic:
/// safe to read from the handler.
std::atomic<F2dbServer*> g_sigterm_server{nullptr};

void SigtermHandler(int /*signo*/) {
  if (F2dbServer* server = g_sigterm_server.load(std::memory_order_relaxed)) {
    server->RequestShutdown();
  }
}

/// Renders a QUERY result like the interactive shell does, so a client
/// sees familiar text either way.
std::string RenderQueryResult(const EngineSnapshot& snapshot,
                              const QueryResult& result) {
  std::string out = "-- node: " + snapshot.graph->NodeName(result.node) + "\n";
  if (result.degradation != DegradationLevel::kNone) {
    out += "-- degraded: " +
           std::string(DegradationLevelName(result.degradation)) + " (" +
           result.degradation_reason + ")\n";
  }
  char buffer[160];
  for (const ForecastRow& row : result.rows) {
    if (row.has_interval) {
      std::snprintf(buffer, sizeof(buffer), "%lld | %.4f  [%.4f, %.4f]\n",
                    static_cast<long long>(row.time), row.value, row.lower,
                    row.upper);
    } else {
      std::snprintf(buffer, sizeof(buffer), "%lld | %.4f\n",
                    static_cast<long long>(row.time), row.value);
    }
    out += buffer;
  }
  return out;
}

std::string RenderExplainResult(const ExplainResult& plan) {
  std::string out = "Forecast Query Plan\n";
  out += "  node:    " + plan.node_name + " (#" + std::to_string(plan.node) +
         ")\n";
  out += "  horizon: " + std::to_string(plan.horizon) + "\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "  weight:  %.6f\n", plan.weight);
  out += buffer;
  out += "  scheme:  from " + std::to_string(plan.sources.size()) +
         " model(s)\n";
  for (const std::string& m : plan.source_models) out += "    " + m + "\n";
  return out;
}

WireResponse ErrorResponse(FrameType type, const Status& status) {
  WireResponse response;
  response.type = type;
  response.status = status.code();
  response.body = status.message();
  return response;
}

}  // namespace

std::string ServerStats::ToPrometheusText() const {
  std::string out;
  out.reserve(1024);
  AppendPrometheusCounter(&out, "f2db_server_connections_accepted_total",
                          "Client connections accepted.",
                          static_cast<double>(connections_accepted));
  AppendPrometheusCounter(&out, "f2db_server_connections_closed_total",
                          "Client connections closed (peer or server side).",
                          static_cast<double>(connections_closed));
  AppendPrometheusCounter(&out, "f2db_server_connections_refused_total",
                          "Connections refused at the max_connections cap.",
                          static_cast<double>(connections_refused));
  AppendPrometheusCounter(&out, "f2db_server_requests_total",
                          "Request frames received.",
                          static_cast<double>(requests_received));
  AppendPrometheusCounter(&out, "f2db_server_responses_total",
                          "Response frames queued for transmission.",
                          static_cast<double>(responses_sent));
  AppendPrometheusCounter(
      &out, "f2db_server_requests_shed_total",
      "Requests answered kUnavailable by admission control.",
      static_cast<double>(requests_shed));
  AppendPrometheusCounter(&out, "f2db_server_protocol_errors_total",
                          "Malformed or oversized frames received.",
                          static_cast<double>(protocol_errors));
  AppendPrometheusGauge(&out, "f2db_server_inflight_requests",
                        "Requests queued or executing right now.",
                        static_cast<double>(in_flight_requests));
  return out;
}

F2dbServer::F2dbServer(F2dbEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

F2dbServer::~F2dbServer() {
  Shutdown();
  if (g_sigterm_server.load(std::memory_order_relaxed) == this) {
    g_sigterm_server.store(nullptr, std::memory_order_relaxed);
  }
}

Status F2dbServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + ::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseListenFd();
    return Status::InvalidArgument("unparsable listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Status::Internal(std::string("bind(): ") + ::strerror(errno));
    CloseListenFd();
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status =
        Status::Internal(std::string("listen(): ") + ::strerror(errno));
    CloseListenFd();
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status =
        Status::Internal(std::string("getsockname(): ") + ::strerror(errno));
    CloseListenFd();
    return status;
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status status = Status::Internal("epoll_create1()/eventfd() failed");
    Shutdown();
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  pool_ = std::make_unique<ThreadPool>(
      options_.worker_threads > 0 ? options_.worker_threads : 1);
  started_ = true;
  loop_running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void F2dbServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  Wake();
}

void F2dbServer::Shutdown() {
  RequestShutdown();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The pool destructor drains queued tasks; connection objects must stay
  // alive until then (stragglers append to outboxes).
  pool_.reset();
  // All requests have drained: take a shutdown checkpoint so the next open
  // recovers from the snapshot instead of replaying the whole WAL tail.
  // Failure is non-fatal — the WAL alone still recovers everything.
  if (started_ && engine_.durable()) {
    const Status checkpointed = engine_.CheckpointNow();
    if (!checkpointed.ok()) {
      F2DB_LOG(kWarning) << "shutdown checkpoint failed: "
                         << checkpointed.message();
    }
  }
  started_ = false;  // a repeated Shutdown (destructor) is a no-op
  connections_.clear();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_write_.clear();
  }
  CloseListenFd();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

ServerStats F2dbServer::stats() const {
  ServerStats out;
  out.connections_accepted = stats_.connections_accepted.Load();
  out.connections_closed = stats_.connections_closed.Load();
  out.connections_refused = stats_.connections_refused.Load();
  out.requests_received = stats_.requests_received.Load();
  out.responses_sent = stats_.responses_sent.Load();
  out.requests_shed = stats_.requests_shed.Load();
  out.protocol_errors = stats_.protocol_errors.Load();
  out.in_flight_requests = in_flight_.load(std::memory_order_relaxed);
  return out;
}

std::string F2dbServer::StatsPrometheusText() const {
  return engine_.stats().ToPrometheusText() + stats().ToPrometheusText();
}

Status F2dbServer::InstallSigtermShutdown(F2dbServer* server) {
  g_sigterm_server.store(server, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = server != nullptr ? SigtermHandler : SIG_DFL;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::Internal(std::string("sigaction(): ") + ::strerror(errno));
  }
  return Status::OK();
}

void F2dbServer::Wake() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    // Best effort: the eventfd counter saturating (EAGAIN) still leaves the
    // loop woken. write() is async-signal-safe.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void F2dbServer::CloseListenFd() {
  if (listen_fd_ >= 0) {
    if (epoll_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void F2dbServer::EventLoop() {
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  epoll_event events[64];

  for (;;) {
    const int timeout_ms = draining ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<ServerConnection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        ServerConnection::ReadOutcome outcome = conn->ReadReady();
        for (const std::string& payload : outcome.payloads) {
          HandleRequest(conn, payload);
        }
        if (!outcome.framing_error.ok()) {
          stats_.protocol_errors.Add();
          Respond(conn, ErrorResponse(FrameType::kPing,
                                      outcome.framing_error));
          conn->MarkCloseAfterFlush();
          // Unreadable stream: stop watching for input.
          epoll_event mod{};
          mod.events = EPOLLOUT;
          mod.data.fd = conn->fd();
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &mod);
          conn->epollout_armed = true;
        } else if (outcome.closed) {
          DropConnection(conn);
          continue;
        }
      }
      if (events[i].events & EPOLLOUT) {
        FlushConnection(conn);
      }
    }

    // Flush connections workers completed responses on.
    std::vector<std::shared_ptr<ServerConnection>> pending;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending.swap(pending_write_);
    }
    for (const auto& conn : pending) FlushConnection(conn);

    if (shutdown_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               options_.drain_timeout_seconds));
      CloseListenFd();
    }
    if (draining &&
        (DrainComplete() || std::chrono::steady_clock::now() >= drain_deadline)) {
      break;
    }
  }

  // Close every socket; the objects stay alive until Shutdown() has drained
  // the worker pool.
  for (auto& [fd, conn] : connections_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    conn->CloseFd();
    stats_.connections_closed.Add();
  }
  loop_running_.store(false, std::memory_order_release);
}

void F2dbServer::HandleAccept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      stats_.connections_refused.Add();
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto conn = std::make_shared<ServerConnection>(fd, options_.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn destructor closes the fd
    }
    connections_.emplace(fd, std::move(conn));
    stats_.connections_accepted.Add();
  }
}

void F2dbServer::HandleRequest(const std::shared_ptr<ServerConnection>& conn,
                               const std::string& payload) {
  stats_.requests_received.Add();
  auto decoded = DecodeRequestPayload(payload);
  if (!decoded.ok()) {
    stats_.protocol_errors.Add();
    Respond(conn, ErrorResponse(FrameType::kPing, decoded.status()));
    return;
  }
  WireRequest request = std::move(decoded).value();

  // PING is answered inline on the loop thread: it measures serving-layer
  // liveness, not worker availability.
  if (request.type == FrameType::kPing) {
    WireResponse pong;
    pong.type = FrameType::kPing;
    pong.body = "PONG";
    Respond(conn, pong);
    return;
  }

  if (shutdown_requested_.load(std::memory_order_acquire)) {
    stats_.requests_shed.Add();
    Respond(conn, ErrorResponse(request.type, Status::Unavailable(
                                                  "server shutting down")));
    return;
  }

  // Admission control: shed instead of queueing past the watermark.
  const std::size_t depth = in_flight_.load(std::memory_order_relaxed);
  if (depth >= options_.admission_queue_limit) {
    stats_.requests_shed.Add();
    Respond(conn,
            ErrorResponse(request.type,
                          Status::Unavailable(
                              "server overloaded: admission queue depth " +
                              std::to_string(depth) + " at limit " +
                              std::to_string(options_.admission_queue_limit))));
    return;
  }

  in_flight_.fetch_add(1, std::memory_order_relaxed);
  conn->BeginRequest();
  pool_->Submit([this, conn, request = std::move(request)] {
    if (options_.worker_test_hook) options_.worker_test_hook();
    const WireResponse response = ExecuteRequest(request);
    conn->EnqueueResponse(EncodeResponse(response));
    stats_.responses_sent.Add();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_write_.push_back(conn);
    }
    conn->EndRequest();
    // Decrement AFTER the response is visible in the outbox, so the drain
    // check never sees zero in-flight with an unflushed response.
    in_flight_.fetch_sub(1, std::memory_order_release);
    Wake();
  });
}

WireResponse F2dbServer::ExecuteRequest(const WireRequest& request) const {
  WireResponse response;
  response.type = request.type;
  switch (request.type) {
    case FrameType::kPing:
      response.body = "PONG";
      return response;
    case FrameType::kStats:
      response.body = StatsPrometheusText();
      return response;
    case FrameType::kQuery: {
      auto parsed = ParseStatement(request.body);
      if (!parsed.ok()) return ErrorResponse(request.type, parsed.status());
      const Statement& statement = parsed.value();
      if (statement.kind == Statement::Kind::kInsert) {
        return ErrorResponse(
            request.type,
            Status::InvalidArgument(
                "INSERT statements must be sent as INSERT frames"));
      }
      if (statement.kind == Statement::Kind::kExplain) {
        auto plan = engine_.Explain(statement.forecast);
        if (!plan.ok()) return ErrorResponse(request.type, plan.status());
        response.body = RenderExplainResult(plan.value());
        return response;
      }
      // Pin one snapshot for name rendering; Execute() pins its own for the
      // computation (both are consistent views — node ids are stable).
      const SnapshotPtr snapshot = engine_.snapshot();
      auto result = engine_.Execute(statement.forecast);
      if (!result.ok()) return ErrorResponse(request.type, result.status());
      response.degradation = result.value().degradation;
      response.body = RenderQueryResult(*snapshot, result.value());
      return response;
    }
    case FrameType::kInsert: {
      auto parsed = ParseStatement(request.body);
      if (!parsed.ok()) return ErrorResponse(request.type, parsed.status());
      const Statement& statement = parsed.value();
      if (statement.kind != Statement::Kind::kInsert) {
        return ErrorResponse(request.type,
                             Status::InvalidArgument(
                                 "INSERT frame requires an INSERT statement"));
      }
      const Status status = engine_.InsertFact(statement.insert.base_values,
                                               statement.insert.time,
                                               statement.insert.value);
      if (!status.ok()) return ErrorResponse(request.type, status);
      response.body = "INSERT ok (" + std::to_string(engine_.pending_inserts()) +
                      " buffered)";
      return response;
    }
  }
  return ErrorResponse(request.type,
                       Status::Internal("unhandled frame type"));
}

void F2dbServer::Respond(const std::shared_ptr<ServerConnection>& conn,
                         const WireResponse& response) {
  conn->EnqueueResponse(EncodeResponse(response));
  stats_.responses_sent.Add();
  FlushConnection(conn);
}

void F2dbServer::FlushConnection(const std::shared_ptr<ServerConnection>& conn) {
  if (conn->fd_closed()) return;
  if (!conn->FlushWrites()) {
    DropConnection(conn);
    return;
  }
  const bool wants_write = conn->wants_write();
  if (wants_write && !conn->epollout_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = conn->fd();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
    conn->epollout_armed = true;
  } else if (!wants_write) {
    if (conn->epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
      conn->epollout_armed = false;
    }
    if (conn->close_after_flush() && conn->in_flight() == 0) {
      DropConnection(conn);
    }
  }
}

void F2dbServer::DropConnection(const std::shared_ptr<ServerConnection>& conn) {
  if (conn->fd_closed()) return;
  const int fd = conn->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conn->CloseFd();
  connections_.erase(fd);
  stats_.connections_closed.Add();
}

bool F2dbServer::DrainComplete() {
  if (in_flight_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& [fd, conn] : connections_) {
    if (conn->wants_write()) return false;
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (!pending_write_.empty()) return false;
  }
  return true;
}

}  // namespace f2db
