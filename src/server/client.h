// Blocking C++ client for the f2db wire protocol.
//
// One F2dbClient wraps one TCP connection and issues one request at a time:
// Call() writes a complete frame and blocks until the matching response
// frame arrives. Transport problems (connect/write/read failures, broken
// framing) surface as the Result's error Status; an application-level
// failure (bad SQL, overload shedding, degraded answer) arrives as a
// successful Result whose WireResponse carries the server's StatusCode and
// DegradationLevel — the two are deliberately distinct so callers can
// retry transport errors and inspect serving-status without parsing text.
//
// Used by the multi-connection load-generator bench
// (bench/bench_server_throughput.cc) and the loopback integration tests.

#ifndef F2DB_SERVER_CLIENT_H_
#define F2DB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/wire.h"

namespace f2db {

class F2dbClient {
 public:
  /// Connects (blocking) to host:port; IPv4 dotted-quad hosts only.
  static Result<F2dbClient> Connect(const std::string& host,
                                    std::uint16_t port);

  F2dbClient() = default;
  ~F2dbClient() { Close(); }

  F2dbClient(F2dbClient&& other) noexcept;
  F2dbClient& operator=(F2dbClient&& other) noexcept;
  F2dbClient(const F2dbClient&) = delete;
  F2dbClient& operator=(const F2dbClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Closes the connection (idempotent).
  void Close();

  /// Sends one request frame and blocks for the response frame.
  Result<WireResponse> Call(FrameType type, std::string body);

  /// SELECT / EXPLAIN SELECT statement over a QUERY frame.
  Result<WireResponse> Query(const std::string& sql) {
    return Call(FrameType::kQuery, sql);
  }
  /// INSERT statement over an INSERT frame.
  Result<WireResponse> Insert(const std::string& sql) {
    return Call(FrameType::kInsert, sql);
  }
  /// Prometheus-text engine + server counters.
  Result<WireResponse> Stats() { return Call(FrameType::kStats, ""); }
  /// Liveness probe; the response body is "PONG".
  Result<WireResponse> Ping() { return Call(FrameType::kPing, ""); }

 private:
  explicit F2dbClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace f2db

#endif  // F2DB_SERVER_CLIENT_H_
