// Blocking C++ client for the f2db wire protocol.
//
// One F2dbClient wraps one TCP connection and issues one request at a time:
// Call() writes a complete frame and blocks until the matching response
// frame arrives. Transport problems (connect/write/read failures, broken
// framing, request timeouts) surface as the Result's error Status; an
// application-level failure (bad SQL, overload shedding, degraded answer)
// arrives as a successful Result whose WireResponse carries the server's
// StatusCode and DegradationLevel — the two are deliberately distinct so
// callers can retry transport errors and inspect serving-status without
// parsing text.
//
// Hardening (DESIGN.md §10): per-request send/receive timeouts bound how
// long a Call() can hang on a half-open peer (SO_SNDTIMEO/SO_RCVTIMEO), and
// CallWithReconnect() retries transport failures through a bounded,
// jitter-backed reconnect loop. A timed-out or mid-frame-broken stream is
// unrecoverable (the next response could belong to the dead request), so
// both paths close the socket before returning.
//
// Used by the multi-connection load-generator bench
// (bench/bench_server_throughput.cc) and the loopback integration tests.

#ifndef F2DB_SERVER_CLIENT_H_
#define F2DB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "server/wire.h"

namespace f2db {

/// Client transport knobs. The defaults reproduce the original behavior
/// (block forever, never reconnect) so existing callers are unaffected.
struct ClientOptions {
  /// Per-request bound on each blocking send and receive; a request that
  /// exceeds it fails with kUnavailable and closes the connection (stream
  /// state mid-frame is unrecoverable). 0 = block forever.
  double request_timeout_seconds = 0.0;
  /// Reconnect attempts CallWithReconnect makes after a transport failure
  /// before giving up. 0 = never reconnect (plain Call behavior).
  std::size_t max_reconnect_attempts = 0;
  /// Base of the exponential reconnect backoff: attempt n sleeps
  /// base * 2^(n-1) seconds, scaled by a uniform [0.5, 1.0) jitter so a
  /// fleet of clients does not reconnect in lockstep. 0 = no sleep.
  double reconnect_backoff_seconds = 0.05;
  /// Seed of the jitter Rng (deterministic backoff in tests).
  std::uint64_t backoff_jitter_seed = 0x9E3779B97F4A7C15ULL;
  /// Stamp each QUERY/INSERT frame with a wire deadline derived from
  /// request_timeout_seconds (there is no point executing work the client
  /// has already given up on). No-op when the timeout is 0.
  bool propagate_deadline = true;
  /// Tenant identity sent as a HELLO frame right after every (re)connect;
  /// empty = no HELLO (the server's default tenant).
  std::string tenant_id;
  /// When the server throttles a request (kResourceExhausted with a
  /// retry-after hint), CallWithReconnect sleeps the hinted duration and
  /// retries, spending one reconnect attempt per retry. Sleeps are capped
  /// at this bound so a hostile hint cannot park the client.
  double max_retry_after_seconds = 5.0;
};

class F2dbClient {
 public:
  /// Connects (blocking) to host:port; IPv4 dotted-quad hosts only.
  static Result<F2dbClient> Connect(const std::string& host,
                                    std::uint16_t port,
                                    ClientOptions options = {});

  F2dbClient() = default;
  ~F2dbClient() { Close(); }

  F2dbClient(F2dbClient&& other) noexcept;
  F2dbClient& operator=(F2dbClient&& other) noexcept;
  F2dbClient(const F2dbClient&) = delete;
  F2dbClient& operator=(const F2dbClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  const ClientOptions& options() const { return options_; }

  /// Closes the connection (idempotent).
  void Close();

  /// Sends one request frame and blocks for the response frame (bounded by
  /// request_timeout_seconds per send/receive when configured). When
  /// propagate_deadline is on and a timeout is set, the frame carries the
  /// timeout as its wire deadline.
  Result<WireResponse> Call(FrameType type, std::string body);

  /// Call() with an explicit wire deadline (milliseconds of budget the
  /// server may spend; 0 = already expired, which the server rejects with
  /// kDeadlineExceeded at admission).
  Result<WireResponse> CallWithDeadline(FrameType type, std::string body,
                                        std::uint32_t deadline_ms);

  /// Call() plus bounded recovery: a transport failure closes the socket,
  /// reconnects with jittered exponential backoff (up to
  /// max_reconnect_attempts), and retries the request on the fresh
  /// connection. CAUTION: a request that died in flight may have executed
  /// server-side before the failure — retrying an INSERT this way can
  /// double-apply it (the engine then rejects the duplicate, which the
  /// caller sees as kAlreadyExists in the response status). Reserve it for
  /// idempotent requests or callers prepared for that answer.
  Result<WireResponse> CallWithReconnect(FrameType type,
                                         const std::string& body);

  /// Reconnects to the original endpoint (used by CallWithReconnect; also
  /// callable directly after a Close).
  Status Reconnect();

  /// Reconnect attempts made over this client's lifetime.
  std::size_t reconnects_attempted() const { return reconnects_attempted_; }
  /// Reconnect attempts that established a connection.
  std::size_t reconnects_succeeded() const { return reconnects_succeeded_; }

  /// SELECT / EXPLAIN SELECT statement over a QUERY frame.
  Result<WireResponse> Query(const std::string& sql) {
    return Call(FrameType::kQuery, sql);
  }
  /// INSERT statement over an INSERT frame.
  Result<WireResponse> Insert(const std::string& sql) {
    return Call(FrameType::kInsert, sql);
  }
  /// Prometheus-text engine + server counters.
  Result<WireResponse> Stats() { return Call(FrameType::kStats, ""); }
  /// Liveness probe; the response body is "PONG".
  Result<WireResponse> Ping() { return Call(FrameType::kPing, ""); }
  /// Binds this connection to `tenant_id` for rate-limiting purposes.
  /// Sent automatically on (re)connect when options.tenant_id is set.
  Result<WireResponse> Hello(const std::string& tenant_id) {
    return Call(FrameType::kHello, tenant_id);
  }

 private:
  Result<WireResponse> CallInternal(FrameType type, std::string body,
                                    bool has_deadline,
                                    std::uint32_t deadline_ms);
  F2dbClient(int fd, std::string host, std::uint16_t port,
             const ClientOptions& options)
      : fd_(fd),
        host_(std::move(host)),
        port_(port),
        options_(options),
        jitter_(options.backoff_jitter_seed) {}

  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  Rng jitter_{0x9E3779B97F4A7C15ULL};
  std::size_t reconnects_attempted_ = 0;
  std::size_t reconnects_succeeded_ = 0;
};

}  // namespace f2db

#endif  // F2DB_SERVER_CLIENT_H_
