#include "server/connection.h"

#include <errno.h>
#include <unistd.h>

#include <utility>

namespace f2db {

ServerConnection::ReadOutcome ServerConnection::ReadReady() {
  ReadOutcome outcome;
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      const Status fed = decoder_.Feed(buffer, static_cast<std::size_t>(n));
      if (!fed.ok()) {
        // Drain whatever was complete before the framing broke, then
        // report the poison so the server can answer-and-close.
        while (auto payload = decoder_.Next()) {
          outcome.payloads.push_back(std::move(*payload));
        }
        outcome.framing_error = fed;
        return outcome;
      }
      continue;
    }
    if (n == 0) {
      outcome.closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    outcome.closed = true;  // fatal socket error: treat like a peer close
    break;
  }
  while (auto payload = decoder_.Next()) {
    outcome.payloads.push_back(std::move(*payload));
  }
  return outcome;
}

bool ServerConnection::EnqueueResponse(std::string encoded) {
  const std::size_t n = encoded.size();
  // Hard ceiling: refuse the frame instead of growing without bound. The
  // pending count can only shrink between the check and the push, so a
  // passing check never overshoots by more than concurrent enqueuers'
  // frames — the reactor evicts at the cap either way.
  if (outbound_cap_bytes_ > 0 &&
      pending_out_bytes_.load(std::memory_order_relaxed) + n >
          outbound_cap_bytes_) {
    over_outbound_cap_.store(true, std::memory_order_relaxed);
    return false;
  }
  pending_out_bytes_.fetch_add(n, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(outbox_mutex_);
  outbox_.push_back(std::move(encoded));
  return true;
}

bool ServerConnection::FlushWrites() {
  {
    std::lock_guard<std::mutex> lock(outbox_mutex_);
    for (std::string& frame : outbox_) write_buffer_ += frame;
    outbox_.clear();
  }
  // Compact the consumed prefix before writing more.
  if (write_offset_ > 0) {
    write_buffer_.erase(0, write_offset_);
    write_offset_ = 0;
  }
  while (write_offset_ < write_buffer_.size()) {
    const ssize_t n = ::write(fd_, write_buffer_.data() + write_offset_,
                              write_buffer_.size() - write_offset_);
    if (n > 0) {
      write_offset_ += static_cast<std::size_t>(n);
      pending_out_bytes_.fetch_sub(static_cast<std::size_t>(n),
                                   std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / ...
  }
  write_buffer_.clear();
  write_offset_ = 0;
  return true;
}

bool ServerConnection::wants_write() {
  if (write_offset_ < write_buffer_.size()) return true;
  std::lock_guard<std::mutex> lock(outbox_mutex_);
  return !outbox_.empty();
}

void ServerConnection::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace f2db
