// Wire protocol for the f2db serving layer.
//
// Frames are length-prefixed so a stream socket can carry them back to
// back without ambiguity:
//
//   frame    := length payload
//   length   := uint32, little-endian, byte count of `payload`
//
//   request  := type:uint8  [deadline_ms:uint32]  body...
//   response := type:uint8  status:uint8  degradation:uint8  body...
//
// `type` names the operation (QUERY / INSERT / STATS / PING / HELLO);
// responses echo the request type. `status` is the StatusCode of the
// outcome and `degradation` the worst DegradationLevel that contributed to
// a QUERY answer — the two annotations the paper's client boundary needs:
// did the answer arrive, and at what fidelity. Bodies are UTF-8 text: the
// SQL-ish statement on the way in; rendered rows, Prometheus exposition
// text, or an error message on the way out.
//
// Wire v2 (backward-compatible): a request may carry a serving DEADLINE.
// The high bit of the type byte (kDeadlineFlag) signals an extended
// header: the four bytes after the type are the remaining deadline budget
// in milliseconds (uint32, little-endian, RELATIVE so client and server
// clocks need not agree; 0 = already expired). v1 frames — a bare type
// byte — decode exactly as before and mean "no deadline". The HELLO frame
// (v2) binds a tenant id to the connection for per-tenant rate limiting;
// its body is the tenant id (kMaxTenantIdBytes cap).
//
// Every frame is capped at kMaxFrameBytes of payload. The decoder rejects
// oversized or zero-length frames with a Status instead of buffering them,
// so a hostile peer cannot make the server allocate unbounded memory.

#ifndef F2DB_SERVER_WIRE_H_
#define F2DB_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/engine.h"

namespace f2db {

/// Operation carried by a frame. Response frames echo the request type.
enum class FrameType : std::uint8_t {
  kQuery = 1,   ///< SELECT / EXPLAIN SELECT statement text.
  kInsert = 2,  ///< INSERT statement text.
  kStats = 3,   ///< Empty body; response body is Prometheus text.
  kPing = 4,    ///< Empty body; response body is "PONG".
  kHello = 5,   ///< Body is the tenant id; binds it to the connection.
};

/// Stable display name ("QUERY", "INSERT", ...).
const char* FrameTypeName(FrameType type);

/// True when `raw` — with the deadline flag masked off — is one of the
/// FrameType values.
bool IsKnownFrameType(std::uint8_t raw);

/// Hard cap on a single frame's payload (type byte + annotations + body).
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;  // 1 MiB

/// Request type-byte flag: an extended header with a deadline follows.
inline constexpr std::uint8_t kDeadlineFlag = 0x80;

/// Cap on a HELLO frame's tenant id.
inline constexpr std::size_t kMaxTenantIdBytes = 256;

/// A decoded request frame. `body` stays the second member so the
/// pre-deadline aggregate init `{type, "body"}` keeps meaning what it
/// says (a string literal would otherwise convert to has_deadline).
struct WireRequest {
  FrameType type = FrameType::kPing;
  std::string body;
  /// Wire v2 deadline: remaining budget in milliseconds when has_deadline
  /// is set (0 = already expired). v1 frames decode with has_deadline
  /// false.
  bool has_deadline = false;
  std::uint32_t deadline_ms = 0;
};

/// A decoded response frame.
struct WireResponse {
  FrameType type = FrameType::kPing;
  StatusCode status = StatusCode::kOk;
  DegradationLevel degradation = DegradationLevel::kNone;
  std::string body;
};

/// Serializes a request as one complete frame (length prefix included).
std::string EncodeRequest(const WireRequest& request);

/// Serializes a response as one complete frame (length prefix included).
std::string EncodeResponse(const WireResponse& response);

/// Decodes a request payload (the bytes after the length prefix).
/// Unknown type bytes and empty payloads are kInvalidArgument.
Result<WireRequest> DecodeRequestPayload(std::string_view payload);

/// Decodes a response payload. Out-of-range status / degradation bytes and
/// payloads shorter than the three header bytes are kInvalidArgument.
Result<WireResponse> DecodeResponsePayload(std::string_view payload);

/// Body of a throttled (kResourceExhausted) response: a machine-readable
/// retry-after hint followed by the human-readable cause —
/// "retry-after-ms=<n>; <message>".
std::string EncodeThrottleBody(std::uint32_t retry_after_ms,
                               const std::string& message);

/// Extracts the retry-after hint from a throttle body; nullopt when the
/// body does not carry one (a non-throttle response, or a foreign server).
std::optional<std::uint32_t> ParseRetryAfterMs(std::string_view body);

/// Incremental frame reassembly for a byte stream. Feed() appends raw
/// socket bytes (validating the length prefix as soon as it is complete);
/// Next() pops complete payloads in arrival order.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends `n` raw bytes. Fails with kInvalidArgument when a length
  /// prefix announces a zero-length or oversized payload; the decoder is
  /// then poisoned (the stream has no recoverable framing) and every later
  /// call fails the same way.
  Status Feed(const char* data, std::size_t n);

  /// Returns the next complete payload, or nullopt when more bytes are
  /// needed.
  std::optional<std::string> Next();

  /// Bytes buffered but not yet returned by Next().
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  Status poison_;  ///< Non-OK once the stream framing is broken.
};

}  // namespace f2db

#endif  // F2DB_SERVER_WIRE_H_
