// Per-socket connection state machine for the f2db server.
//
// A ServerConnection is owned by the server's event-loop thread, which
// performs ALL socket I/O on it: non-blocking reads feed the incremental
// FrameDecoder, non-blocking writes drain the write buffer. Worker threads
// never touch the socket — a worker finishing a request appends the encoded
// response to the connection's mutex-protected outbox and wakes the event
// loop, which moves the outbox into the write buffer and flushes it.
//
// Backpressure (DESIGN.md §12): pending_out_bytes() tracks every byte
// queued (outbox) or buffered (write buffer) but not yet written to the
// socket. The reactor pauses reading from a connection past the configured
// high watermark and evicts it at the hard cap — EnqueueResponse refuses
// the frame and marks the connection over-cap, so a peer that never reads
// can neither exhaust server memory nor stall its reactor.
//
// Lifetime: the server's connection table and every in-flight worker task
// hold a shared_ptr. When the event loop drops a connection (peer close,
// protocol error, shutdown, eviction) it closes the fd and removes the
// table entry; stragglers still enqueue into the outbox harmlessly and the
// object is freed when the last worker finishes.

#ifndef F2DB_SERVER_CONNECTION_H_
#define F2DB_SERVER_CONNECTION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/wire.h"

namespace f2db {

class TokenBucket;  // common/rate_limiter.h

class ServerConnection {
 public:
  /// `outbound_cap_bytes` bounds pending_out_bytes(); 0 = unbounded (tests
  /// of the raw state machine).
  ServerConnection(int fd, std::size_t max_frame_bytes,
                   std::size_t outbound_cap_bytes = 0)
      : fd_(fd),
        decoder_(max_frame_bytes),
        outbound_cap_bytes_(outbound_cap_bytes) {}
  ~ServerConnection() { CloseFd(); }

  ServerConnection(const ServerConnection&) = delete;
  ServerConnection& operator=(const ServerConnection&) = delete;

  int fd() const { return fd_; }

  /// Outcome of one readable-event handling pass.
  struct ReadOutcome {
    /// Complete frame payloads extracted this pass, in arrival order.
    std::vector<std::string> payloads;
    /// Peer closed its end (EOF) or the read hit a fatal socket error.
    bool closed = false;
    /// Non-OK when the stream's framing is broken (oversized or
    /// zero-length frame announcement); the connection must be dropped
    /// after flushing an error response.
    Status framing_error;
  };

  /// Event-loop only: reads until EAGAIN and reassembles frames.
  ReadOutcome ReadReady();

  /// Worker-safe: queues one encoded response frame for transmission.
  /// Returns false — and marks the connection over-cap for eviction —
  /// when the frame would push pending_out_bytes() past the hard cap (the
  /// frame is NOT queued; the peer is not reading anyway).
  bool EnqueueResponse(std::string encoded);

  /// Bytes queued or buffered but not yet written to the socket.
  std::size_t pending_out_bytes() const {
    return pending_out_bytes_.load(std::memory_order_relaxed);
  }

  /// A response overflowed the hard cap; the reactor must evict this
  /// connection.
  bool over_outbound_cap() const {
    return over_outbound_cap_.load(std::memory_order_relaxed);
  }

  /// Event-loop only: moves the outbox into the write buffer and writes
  /// until EAGAIN or empty. Returns false on a fatal write error.
  bool FlushWrites();

  /// Unsent bytes remain (EPOLLOUT should be armed).
  bool wants_write();

  /// Event-loop bookkeeping: which epoll interests are currently armed.
  bool epollin_armed = true;
  bool epollout_armed = false;

  /// Event-loop bookkeeping: reading is paused (outbound backpressure).
  bool reading_paused = false;
  /// When the pause began (slow-client grace accounting).
  std::chrono::steady_clock::time_point pause_started{};

  /// Tenant identity bound by a HELLO frame and the cached rate-limiter
  /// bucket. Reactor-thread only (set on HELLO, read per request).
  std::string tenant_id;
  TokenBucket* rate_limiter = nullptr;

  /// The connection should be closed once the write buffer drains
  /// (protocol error or server drain).
  void MarkCloseAfterFlush() { close_after_flush_ = true; }
  bool close_after_flush() const { return close_after_flush_; }

  /// Requests dispatched to workers but not yet answered.
  void BeginRequest() { in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void EndRequest() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  void CloseFd();
  bool fd_closed() const { return fd_ < 0; }

 private:
  int fd_;
  FrameDecoder decoder_;
  const std::size_t outbound_cap_bytes_;

  std::mutex outbox_mutex_;
  std::vector<std::string> outbox_;

  /// Write-side state, event-loop only.
  std::string write_buffer_;
  std::size_t write_offset_ = 0;
  bool close_after_flush_ = false;

  std::atomic<std::size_t> in_flight_{0};
  /// Outbox + write-buffer bytes not yet written to the socket. Workers
  /// add on enqueue, the event loop subtracts what write() accepted.
  std::atomic<std::size_t> pending_out_bytes_{0};
  std::atomic<bool> over_outbound_cap_{false};
};

}  // namespace f2db

#endif  // F2DB_SERVER_CONNECTION_H_
