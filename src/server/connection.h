// Per-socket connection state machine for the f2db server.
//
// A ServerConnection is owned by the server's event-loop thread, which
// performs ALL socket I/O on it: non-blocking reads feed the incremental
// FrameDecoder, non-blocking writes drain the write buffer. Worker threads
// never touch the socket — a worker finishing a request appends the encoded
// response to the connection's mutex-protected outbox and wakes the event
// loop, which moves the outbox into the write buffer and flushes it.
//
// Lifetime: the server's connection table and every in-flight worker task
// hold a shared_ptr. When the event loop drops a connection (peer close,
// protocol error, shutdown) it closes the fd and removes the table entry;
// stragglers still enqueue into the outbox harmlessly and the object is
// freed when the last worker finishes.

#ifndef F2DB_SERVER_CONNECTION_H_
#define F2DB_SERVER_CONNECTION_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/wire.h"

namespace f2db {

class ServerConnection {
 public:
  ServerConnection(int fd, std::size_t max_frame_bytes)
      : fd_(fd), decoder_(max_frame_bytes) {}
  ~ServerConnection() { CloseFd(); }

  ServerConnection(const ServerConnection&) = delete;
  ServerConnection& operator=(const ServerConnection&) = delete;

  int fd() const { return fd_; }

  /// Outcome of one readable-event handling pass.
  struct ReadOutcome {
    /// Complete frame payloads extracted this pass, in arrival order.
    std::vector<std::string> payloads;
    /// Peer closed its end (EOF) or the read hit a fatal socket error.
    bool closed = false;
    /// Non-OK when the stream's framing is broken (oversized or
    /// zero-length frame announcement); the connection must be dropped
    /// after flushing an error response.
    Status framing_error;
  };

  /// Event-loop only: reads until EAGAIN and reassembles frames.
  ReadOutcome ReadReady();

  /// Worker-safe: queues one encoded response frame for transmission.
  void EnqueueResponse(std::string encoded);

  /// Event-loop only: moves the outbox into the write buffer and writes
  /// until EAGAIN or empty. Returns false on a fatal write error.
  bool FlushWrites();

  /// Unsent bytes remain (EPOLLOUT should be armed).
  bool wants_write();

  /// Event-loop bookkeeping: whether EPOLLOUT is currently armed.
  bool epollout_armed = false;

  /// The connection should be closed once the write buffer drains
  /// (protocol error or server drain).
  void MarkCloseAfterFlush() { close_after_flush_ = true; }
  bool close_after_flush() const { return close_after_flush_; }

  /// Requests dispatched to workers but not yet answered.
  void BeginRequest() { in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void EndRequest() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  void CloseFd();
  bool fd_closed() const { return fd_ < 0; }

 private:
  int fd_;
  FrameDecoder decoder_;

  std::mutex outbox_mutex_;
  std::vector<std::string> outbox_;

  /// Write-side state, event-loop only.
  std::string write_buffer_;
  std::size_t write_offset_ = 0;
  bool close_after_flush_ = false;

  std::atomic<std::size_t> in_flight_{0};
};

}  // namespace f2db

#endif  // F2DB_SERVER_CONNECTION_H_
