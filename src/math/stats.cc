#include "math/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace f2db {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  return Variance(xs) * static_cast<double>(xs.size()) /
         static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double CoefficientOfVariation(const std::vector<double>& xs) {
  const double mean = Mean(xs);
  if (std::abs(mean) < 1e-12) return 0.0;
  return StdDev(xs) / std::abs(mean);
}

double Covariance(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += (xs[i] - mx) * (ys[i] - my);
  }
  return sum / static_cast<double>(xs.size());
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const double sx = StdDev(xs);
  const double sy = StdDev(ys);
  if (sx < 1e-12 || sy < 1e-12) return 0.0;
  return Covariance(xs, ys) / (sx * sy);
}

std::vector<double> Autocorrelation(const std::vector<double>& xs,
                                    std::size_t max_lag) {
  const std::size_t n = xs.size();
  std::vector<double> acf(max_lag + 1, 0.0);
  if (n == 0) return acf;
  const double mean = Mean(xs);
  double denom = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    denom += d * d;
  }
  acf[0] = 1.0;
  if (denom < 1e-12) return acf;
  for (std::size_t lag = 1; lag <= max_lag && lag < n; ++lag) {
    double num = 0.0;
    for (std::size_t t = lag; t < n; ++t) {
      num += (xs[t] - mean) * (xs[t - lag] - mean);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

std::vector<double> PartialAutocorrelation(const std::vector<double>& xs,
                                           std::size_t max_lag) {
  // Durbin–Levinson recursion on the sample ACF.
  const std::vector<double> rho = Autocorrelation(xs, max_lag);
  std::vector<double> pacf(max_lag, 0.0);
  if (max_lag == 0) return pacf;
  std::vector<double> phi_prev(max_lag + 1, 0.0);
  std::vector<double> phi(max_lag + 1, 0.0);
  phi[1] = rho.size() > 1 ? rho[1] : 0.0;
  pacf[0] = phi[1];
  double v = 1.0 - phi[1] * phi[1];
  for (std::size_t k = 2; k <= max_lag; ++k) {
    phi_prev = phi;
    double num = (k < rho.size() ? rho[k] : 0.0);
    for (std::size_t j = 1; j < k; ++j) {
      num -= phi_prev[j] * (k - j < rho.size() ? rho[k - j] : 0.0);
    }
    const double alpha = (std::abs(v) < 1e-12) ? 0.0 : num / v;
    phi[k] = alpha;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j] = phi_prev[j] - alpha * phi_prev[k - j];
    }
    v *= (1.0 - alpha * alpha);
    pacf[k - 1] = alpha;
  }
  return pacf;
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double InverseNormalCdf(double p) {
  assert(p > 0.0 && p < 1.0);
  // Coefficients of Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > p_high) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace f2db
