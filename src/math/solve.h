// Linear solvers: Cholesky factorization for symmetric positive definite
// systems and Householder QR for general least squares.
//
// The Combine baseline solves (SᵀS) beta = Sᵀ yhat where S is the
// aggregation ("summing") matrix of the time series graph; SᵀS is SPD, so
// Cholesky is the workhorse. QR backs arbitrary least-squares fits.

#ifndef F2DB_MATH_SOLVE_H_
#define F2DB_MATH_SOLVE_H_

#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace f2db {

/// Solves A x = b for symmetric positive definite A via Cholesky.
/// Fails with InvalidArgument when A is not SPD (within tolerance).
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

/// Reusable Cholesky factorization A = L L^T for repeated solves against
/// the same SPD matrix (the Combine baseline reconciles one right-hand
/// side per forecast horizon step).
class CholeskyFactorization {
 public:
  /// Factors `a`; fails when it is not SPD (within tolerance).
  static Result<CholeskyFactorization> Compute(const Matrix& a);

  /// Solves A x = b using the stored factor. Requires matching size.
  std::vector<double> Solve(const std::vector<double>& b) const;

  std::size_t size() const { return l_.rows(); }

 private:
  explicit CholeskyFactorization(Matrix l) : l_(std::move(l)) {}
  Matrix l_;  ///< Lower-triangular factor.
};

/// Solves the least squares problem min ||A x - b||_2 via Householder QR.
/// Requires rows >= cols and full column rank.
Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b);

/// Solves A x = b for square A by Gaussian elimination with partial
/// pivoting. Fails when A is (numerically) singular.
Result<std::vector<double>> GaussianSolve(Matrix a, std::vector<double> b);

}  // namespace f2db

#endif  // F2DB_MATH_SOLVE_H_
