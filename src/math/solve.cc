#include "math/solve.h"

#include <cassert>
#include <cmath>

namespace f2db {

Result<CholeskyFactorization> CholeskyFactorization::Compute(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) return Status::InvalidArgument("Cholesky: A not square");

  // Factor A = L Lᵀ with L lower triangular.
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 1e-12) {
      return Status::InvalidArgument("Cholesky: matrix not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  return CholeskyFactorization(std::move(l));
}

std::vector<double> CholeskyFactorization::Solve(
    const std::vector<double>& b) const {
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  // Forward substitution: L y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
    y[i] = v / l_(i, i);
  }
  // Back substitution: Lᵀ x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * x[k];
    x[ii] = v / l_(ii, ii);
  }
  return x;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("Cholesky: size mismatch");
  }
  F2DB_ASSIGN_OR_RETURN(CholeskyFactorization factor,
                        CholeskyFactorization::Compute(a));
  return factor.Solve(b);
}

Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) return Status::InvalidArgument("LeastSquares: rows < cols");
  if (b.size() != m) return Status::InvalidArgument("LeastSquares: size mismatch");

  // Householder QR applied in place to a working copy of [A | b].
  Matrix r = a;
  std::vector<double> rhs = b;
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      return Status::InvalidArgument("LeastSquares: rank deficient matrix");
    }
    if (r(k, k) > 0) norm = -norm;
    std::vector<double> v(m - k, 0.0);
    for (std::size_t i = k; i < m; ++i) v[i - k] = r(i, k);
    v[0] -= norm;
    double vnorm2 = 0.0;
    for (double vi : v) vnorm2 += vi * vi;
    if (vnorm2 < 1e-24) continue;

    // Apply reflector to remaining columns of R and to the RHS.
    for (std::size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, c);
      const double scale = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= scale * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double scale = 2.0 * dot / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= scale * v[i - k];
  }

  // Back substitution on the upper triangle.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = rhs[ii];
    for (std::size_t c = ii + 1; c < n; ++c) v -= r(ii, c) * x[c];
    if (std::abs(r(ii, ii)) < 1e-12) {
      return Status::InvalidArgument("LeastSquares: singular R");
    }
    x[ii] = v / r(ii, ii);
  }
  return x;
}

Result<std::vector<double>> GaussianSolve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n) return Status::InvalidArgument("Gaussian: A not square");
  if (b.size() != n) return Status::InvalidArgument("Gaussian: size mismatch");

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        pivot = i;
      }
    }
    if (best < 1e-12) return Status::InvalidArgument("Gaussian: singular matrix");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(pivot, c));
      std::swap(b[k], b[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) / a(k, k);
      if (factor == 0.0) continue;
      for (std::size_t c = k; c < n; ++c) a(i, c) -= factor * a(k, c);
      b[i] -= factor * b[k];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) v -= a(ii, c) * x[c];
    x[ii] = v / a(ii, ii);
  }
  return x;
}

}  // namespace f2db
