// Descriptive statistics and time-series diagnostics.
//
// Used by the indicators (variance of derivation weights, Section III-B),
// the Box–Jenkins ARIMA fitting pipeline (ACF/PACF), and the data
// generators.

#ifndef F2DB_MATH_STATS_H_
#define F2DB_MATH_STATS_H_

#include <cstddef>
#include <vector>

namespace f2db {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population variance (divides by n); 0 for n < 2.
double Variance(const std::vector<double>& xs);

/// Sample variance (divides by n-1); 0 for n < 2.
double SampleVariance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Coefficient of variation: stddev / |mean|; 0 when the mean is ~0.
double CoefficientOfVariation(const std::vector<double>& xs);

/// Population covariance of two equally long vectors.
double Covariance(const std::vector<double>& xs, const std::vector<double>& ys);

/// Pearson correlation; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Autocorrelation function for lags 0..max_lag (acf[0] == 1).
std::vector<double> Autocorrelation(const std::vector<double>& xs,
                                    std::size_t max_lag);

/// Partial autocorrelation for lags 1..max_lag via Durbin–Levinson.
std::vector<double> PartialAutocorrelation(const std::vector<double>& xs,
                                           std::size_t max_lag);

/// The q-quantile (0<=q<=1) using linear interpolation on sorted data.
double Quantile(std::vector<double> xs, double q);

/// Minimum / maximum; 0 for empty input.
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9). Used to initialize the advisor's candidate
/// threshold gamma so that roughly n of N nodes exceed mean + gamma*sigma
/// under a normality assumption (paper Section IV-C1).
/// Requires 0 < p < 1.
double InverseNormalCdf(double p);

}  // namespace f2db

#endif  // F2DB_MATH_STATS_H_
