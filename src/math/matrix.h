// Dense row-major matrix used by the Combine baseline's OLS reconciliation
// (Hyndman et al. 2011) and by internal least-squares fits.

#ifndef F2DB_MATH_MATRIX_H_
#define F2DB_MATH_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace f2db {

/// A dense, row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  /// Matrix from nested initializer data (rows of equal width).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Element access; bounds are asserted in debug builds.
  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Transposed copy.
  Matrix Transposed() const;

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires cols() == x.size().
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  /// Frobenius-norm of (this - other); requires equal shape.
  double Distance(const Matrix& other) const;

  /// Human-readable rendering for diagnostics.
  std::string ToString() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace f2db

#endif  // F2DB_MATH_MATRIX_H_
