#include "math/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace f2db {

void Bounds::Clamp(std::vector<double>& x) const {
  if (!IsValidFor(x.size())) return;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

namespace {

// Evaluates the objective with clamping applied first.
double EvalClamped(const Objective& objective, const Bounds& bounds,
                   std::vector<double> x, std::size_t& evals) {
  bounds.Clamp(x);
  ++evals;
  const double v = objective(x);
  return std::isfinite(v) ? v : std::numeric_limits<double>::max();
}

}  // namespace

OptimizationResult NelderMead(const Objective& objective,
                              const std::vector<double>& x0,
                              const Bounds& bounds,
                              const OptimizerOptions& options) {
  const std::size_t d = x0.size();
  OptimizationResult result;
  if (failpoint::Triggered(kFailpointOptimizerConverge)) {
    result.x = x0;
    result.value = std::numeric_limits<double>::infinity();
    result.converged = false;
    return result;
  }
  if (d == 0) {
    result.x = x0;
    result.value = objective(x0);
    result.evaluations = 1;
    result.converged = true;
    return result;
  }

  // Standard NM coefficients.
  const double kReflect = 1.0, kExpand = 2.0, kContract = 0.5, kShrink = 0.5;

  std::size_t evals = 0;
  // Initial simplex: x0 plus perturbations along each axis.
  std::vector<std::vector<double>> simplex(d + 1, x0);
  for (std::size_t i = 0; i < d; ++i) {
    const double step = (x0[i] != 0.0) ? 0.1 * std::abs(x0[i]) : 0.1;
    simplex[i + 1][i] += step;
    bounds.Clamp(simplex[i + 1]);
  }
  std::vector<double> values(d + 1);
  for (std::size_t i = 0; i <= d; ++i) {
    values[i] = EvalClamped(objective, bounds, simplex[i], evals);
  }

  while (evals < options.max_evaluations) {
    // Order the simplex: best first.
    std::vector<std::size_t> order(d + 1);
    for (std::size_t i = 0; i <= d; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[d];
    const std::size_t second_worst = order[d - 1];

    if (std::abs(values[worst] - values[best]) <
        options.tolerance * (std::abs(values[best]) + options.tolerance)) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(d, 0.0);
    for (std::size_t i = 0; i <= d; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < d; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(d);

    auto point_along = [&](double coeff) {
      std::vector<double> p(d);
      for (std::size_t j = 0; j < d; ++j) {
        p[j] = centroid[j] + coeff * (centroid[j] - simplex[worst][j]);
      }
      bounds.Clamp(p);
      return p;
    };

    std::vector<double> reflected = point_along(kReflect);
    const double fr = EvalClamped(objective, bounds, reflected, evals);
    if (fr < values[best]) {
      std::vector<double> expanded = point_along(kExpand);
      const double fe = EvalClamped(objective, bounds, expanded, evals);
      if (fe < fr) {
        simplex[worst] = std::move(expanded);
        values[worst] = fe;
      } else {
        simplex[worst] = std::move(reflected);
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = std::move(reflected);
      values[worst] = fr;
    } else {
      std::vector<double> contracted = point_along(-kContract);
      const double fc = EvalClamped(objective, bounds, contracted, evals);
      if (fc < values[worst]) {
        simplex[worst] = std::move(contracted);
        values[worst] = fc;
      } else {
        // Shrink towards the best vertex.
        for (std::size_t i = 0; i <= d; ++i) {
          if (i == best) continue;
          for (std::size_t j = 0; j < d; ++j) {
            simplex[i][j] =
                simplex[best][j] + kShrink * (simplex[i][j] - simplex[best][j]);
          }
          values[i] = EvalClamped(objective, bounds, simplex[i], evals);
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= d; ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.x = simplex[best];
  bounds.Clamp(result.x);
  result.value = values[best];
  result.evaluations = evals;
  return result;
}

OptimizationResult HillClimb(const Objective& objective,
                             const std::vector<double>& x0,
                             const Bounds& bounds,
                             const OptimizerOptions& options) {
  const std::size_t d = x0.size();
  OptimizationResult result;
  std::size_t evals = 0;
  std::vector<double> x = x0;
  bounds.Clamp(x);
  double fx = EvalClamped(objective, bounds, x, evals);

  std::vector<double> steps(d);
  for (std::size_t i = 0; i < d; ++i) {
    if (bounds.IsValidFor(d)) {
      steps[i] = 0.25 * (bounds.upper[i] - bounds.lower[i]);
    } else {
      steps[i] = (x[i] != 0.0) ? 0.25 * std::abs(x[i]) : 0.25;
    }
    if (steps[i] <= 0.0) steps[i] = 0.25;
  }

  while (evals < options.max_evaluations) {
    bool improved = false;
    for (std::size_t i = 0; i < d && evals < options.max_evaluations; ++i) {
      for (const double direction : {+1.0, -1.0}) {
        std::vector<double> candidate = x;
        candidate[i] += direction * steps[i];
        const double fc = EvalClamped(objective, bounds, candidate, evals);
        if (fc < fx) {
          bounds.Clamp(candidate);
          x = std::move(candidate);
          fx = fc;
          improved = true;
          break;
        }
      }
    }
    if (!improved) {
      double max_step = 0.0;
      for (double& s : steps) {
        s *= 0.5;
        max_step = std::max(max_step, s);
      }
      if (max_step < options.tolerance) {
        result.converged = true;
        break;
      }
    }
  }

  result.x = std::move(x);
  result.value = fx;
  result.evaluations = evals;
  return result;
}

OptimizationResult SimulatedAnnealing(const Objective& objective,
                                      const std::vector<double>& x0,
                                      const Bounds& bounds, Rng& rng,
                                      const AnnealingOptions& options) {
  const std::size_t d = x0.size();
  assert(bounds.IsValidFor(d) && "SimulatedAnnealing requires box bounds");
  OptimizationResult result;
  std::size_t evals = 0;

  std::vector<double> current = x0;
  bounds.Clamp(current);
  double f_current = EvalClamped(objective, bounds, current, evals);
  std::vector<double> best = current;
  double f_best = f_current;

  double temperature = options.initial_temperature;
  while (evals < options.base.max_evaluations &&
         temperature > options.base.tolerance) {
    for (std::size_t move = 0;
         move < options.moves_per_epoch && evals < options.base.max_evaluations;
         ++move) {
      std::vector<double> candidate = current;
      for (std::size_t i = 0; i < d; ++i) {
        const double width = bounds.upper[i] - bounds.lower[i];
        candidate[i] += rng.Gaussian(0.0, options.step_scale * width);
      }
      bounds.Clamp(candidate);
      const double fc = EvalClamped(objective, bounds, candidate, evals);
      const double delta = fc - f_current;
      if (delta <= 0.0 || rng.NextDouble() < std::exp(-delta / temperature)) {
        current = std::move(candidate);
        f_current = fc;
        if (f_current < f_best) {
          best = current;
          f_best = f_current;
        }
      }
    }
    temperature *= options.cooling_rate;
  }

  result.x = std::move(best);
  result.value = f_best;
  result.evaluations = evals;
  result.converged = temperature <= options.base.tolerance;
  return result;
}

OptimizationResult GridSearch(const Objective& objective, const Bounds& bounds,
                              std::size_t steps) {
  const std::size_t d = bounds.lower.size();
  assert(bounds.IsValidFor(d) && "GridSearch requires box bounds");
  assert(steps >= 2);
  OptimizationResult result;
  result.value = std::numeric_limits<double>::max();

  std::vector<std::size_t> index(d, 0);
  std::vector<double> x(d, 0.0);
  std::size_t evals = 0;
  for (;;) {
    for (std::size_t i = 0; i < d; ++i) {
      const double frac =
          static_cast<double>(index[i]) / static_cast<double>(steps - 1);
      x[i] = bounds.lower[i] + frac * (bounds.upper[i] - bounds.lower[i]);
    }
    ++evals;
    const double v = objective(x);
    if (std::isfinite(v) && v < result.value) {
      result.value = v;
      result.x = x;
    }
    // Odometer increment over the grid indices.
    std::size_t pos = 0;
    while (pos < d) {
      if (++index[pos] < steps) break;
      index[pos] = 0;
      ++pos;
    }
    if (pos == d) break;
  }
  result.evaluations = evals;
  result.converged = true;
  return result;
}

}  // namespace f2db
