#include "math/matrix.h"

#include <cmath>
#include <sstream>

namespace f2db {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += v * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& x) const {
  assert(cols_ == x.size());
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[c];
    out[r] = sum;
  }
  return out;
}

double Matrix::Distance(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

std::string Matrix::ToString() const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_; ++r) {
    out << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) out << ", ";
      out << (*this)(r, c);
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace f2db
