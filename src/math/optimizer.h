// Numerical optimizers for forecast-model parameter estimation.
//
// The paper (Section IV-B1): "Creating a forecast model requires estimating
// its parameters using standard local (e.g., Hill-Climbing) or global
// (e.g., Simulated Annealing) optimization algorithms." This module provides
// those two plus Nelder–Mead (the default used by the exponential-smoothing
// and ARIMA fitters) and an exhaustive grid search for tests.

#ifndef F2DB_MATH_OPTIMIZER_H_
#define F2DB_MATH_OPTIMIZER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"

namespace f2db {

/// Fault-injection site: NelderMead abandons the search immediately and
/// reports a non-converged result with an infinite objective — the shape a
/// genuinely degenerate objective produces. Model fitters translate it into
/// a kUnavailable Fit failure.
F2DB_DEFINE_FAILPOINT(kFailpointOptimizerConverge, "math.optimizer_converge")

/// A scalar objective over a parameter vector; lower is better.
using Objective = std::function<double(const std::vector<double>&)>;

/// Box constraints for an optimization; empty means unconstrained.
struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;

  /// True when the bounds are populated and consistent for dimension d.
  bool IsValidFor(std::size_t d) const {
    return lower.size() == d && upper.size() == d;
  }

  /// Clamps x in place to the box (no-op when unconstrained).
  void Clamp(std::vector<double>& x) const;
};

/// Shared knobs across all optimizers.
struct OptimizerOptions {
  std::size_t max_evaluations = 2000;
  /// Convergence tolerance on the objective spread / step size.
  double tolerance = 1e-7;
};

/// Outcome of an optimization run.
struct OptimizationResult {
  std::vector<double> x;          ///< Best parameter vector found.
  double value = 0.0;             ///< Objective at x.
  std::size_t evaluations = 0;    ///< Number of objective evaluations.
  bool converged = false;         ///< True when tolerance was reached.
};

/// Derivative-free simplex search (Nelder–Mead 1965). Robust default for
/// the 1–6 dimensional smoothing / ARMA objectives in this library.
OptimizationResult NelderMead(const Objective& objective,
                              const std::vector<double>& x0,
                              const Bounds& bounds = {},
                              const OptimizerOptions& options = {});

/// Local coordinate-descent hill climbing with step halving.
OptimizationResult HillClimb(const Objective& objective,
                             const std::vector<double>& x0,
                             const Bounds& bounds = {},
                             const OptimizerOptions& options = {});

/// Knobs specific to simulated annealing.
struct AnnealingOptions {
  OptimizerOptions base;
  double initial_temperature = 1.0;
  double cooling_rate = 0.95;        ///< Temperature multiplier per epoch.
  std::size_t moves_per_epoch = 20;  ///< Proposals at each temperature.
  double step_scale = 0.25;          ///< Proposal stddev relative to box width.
};

/// Global stochastic search; requires box bounds.
OptimizationResult SimulatedAnnealing(const Objective& objective,
                                      const std::vector<double>& x0,
                                      const Bounds& bounds, Rng& rng,
                                      const AnnealingOptions& options = {});

/// Exhaustive grid search with `steps` points per dimension; requires
/// box bounds. Intended for low-dimensional tests and calibration.
OptimizationResult GridSearch(const Objective& objective, const Bounds& bounds,
                              std::size_t steps);

}  // namespace f2db

#endif  // F2DB_MATH_OPTIMIZER_H_
