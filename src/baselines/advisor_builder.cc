#include "baselines/advisor_builder.h"

namespace f2db {

Result<BuildOutcome> AdvisorBuilder::Build(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory) {
  // Align the advisor's internal split with the shared evaluator.
  AdvisorOptions options = options_;
  const double total = static_cast<double>(evaluator.train_length() +
                                           evaluator.test_length());
  if (total > 0) {
    options.train_fraction =
        static_cast<double>(evaluator.train_length()) / total;
  }
  ModelConfigurationAdvisor advisor(evaluator.graph(), factory, options);
  F2DB_ASSIGN_OR_RETURN(AdvisorResult result, advisor.Run());

  BuildOutcome outcome{std::move(result.configuration)};
  outcome.build_seconds = result.total_runtime_seconds;
  outcome.models_created = result.models_created;

  last_ = std::move(result);  // configuration already moved out
  has_last_ = true;
  return outcome;
}

}  // namespace f2db
