#include "baselines/builder.h"

#include <mutex>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace f2db {
namespace baselines_internal {

std::unordered_map<NodeId, ModelEntry> FitModels(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory,
    const std::vector<NodeId>& nodes, std::size_t num_threads) {
  std::unordered_map<NodeId, ModelEntry> out;
  std::mutex mutex;
  ThreadPool pool(num_threads == 0 ? ThreadPool::DefaultConcurrency()
                                   : num_threads);
  pool.ParallelFor(nodes.size(), [&](std::size_t i) {
    const NodeId node = nodes[i];
    StopWatch watch;
    auto fitted = factory.CreateAndFit(evaluator.TrainSeries(node));
    if (!fitted.ok()) {
      F2DB_LOG(kWarning) << "baseline model creation failed at node " << node
                         << ": " << fitted.status().ToString();
      return;
    }
    ModelEntry entry;
    entry.model = std::move(fitted).value();
    entry.creation_seconds = watch.ElapsedSeconds();
    entry.test_forecast = entry.model->Forecast(evaluator.test_length());
    std::lock_guard<std::mutex> lock(mutex);
    out[node] = std::move(entry);
  });
  return out;
}

std::vector<NodeId> BaseDescendants(const TimeSeriesGraph& graph,
                                    NodeId node) {
  if (graph.IsBaseNode(node)) return {node};
  std::vector<NodeId> out;
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    const NodeId current = stack.back();
    stack.pop_back();
    if (graph.IsBaseNode(current)) {
      out.push_back(current);
      continue;
    }
    // Descend along the first aggregated dimension only; descending along
    // every dimension would enumerate each base leaf multiple times.
    const NodeAddress address = graph.AddressOf(current);
    std::size_t dim = 0;
    while (address.coords[dim].level == 0) ++dim;
    for (NodeId child : graph.Children(current, dim)) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace baselines_internal
}  // namespace f2db
