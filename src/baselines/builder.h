// ConfigurationBuilder: the common interface of the comparison approaches
// of Section VI-B (Direct, Bottom-Up, Top-Down, Combine, Greedy). Each
// builder produces a ModelConfiguration whose per-node assignments carry
// the measured test error, so benches can sweep all approaches uniformly
// against the advisor.

#ifndef F2DB_BASELINES_BUILDER_H_
#define F2DB_BASELINES_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/configuration.h"
#include "core/evaluator.h"
#include "cube/graph.h"
#include "ts/model_factory.h"

namespace f2db {

/// What a builder produced plus its cost accounting.
struct BuildOutcome {
  ModelConfiguration configuration;
  /// Wall-clock seconds for the whole configuration construction.
  double build_seconds = 0.0;
  /// Models fitted during construction (>= configuration.num_models();
  /// Greedy and Combine build models they may not keep).
  std::size_t models_created = 0;
};

/// Interface of all configuration-building approaches.
class ConfigurationBuilder {
 public:
  virtual ~ConfigurationBuilder() = default;

  /// Short name used in bench output ("direct", "bottom_up", ...).
  virtual std::string name() const = 0;

  /// Builds a configuration over the evaluator's graph and split.
  virtual Result<BuildOutcome> Build(const ConfigurationEvaluator& evaluator,
                                     const ModelFactory& factory) = 0;
};

namespace baselines_internal {

/// Fits models for `nodes` in parallel (on the training part) and returns
/// the entries; failed fits are skipped with a warning.
std::unordered_map<NodeId, ModelEntry> FitModels(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory,
    const std::vector<NodeId>& nodes, std::size_t num_threads = 0);

/// All base nodes under `node` (the leaves of its aggregation subtree).
std::vector<NodeId> BaseDescendants(const TimeSeriesGraph& graph, NodeId node);

}  // namespace baselines_internal
}  // namespace f2db

#endif  // F2DB_BASELINES_BUILDER_H_
