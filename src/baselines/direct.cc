#include "baselines/direct.h"

#include "common/stopwatch.h"

namespace f2db {

Result<BuildOutcome> DirectBuilder::Build(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory) {
  StopWatch watch;
  const TimeSeriesGraph& graph = evaluator.graph();
  BuildOutcome outcome{ModelConfiguration(graph.num_nodes())};

  std::vector<NodeId> all_nodes(graph.num_nodes());
  for (NodeId node = 0; node < graph.num_nodes(); ++node) all_nodes[node] = node;

  auto entries =
      baselines_internal::FitModels(evaluator, factory, all_nodes);
  outcome.models_created = entries.size();
  for (auto& [node, entry] : entries) {
    const DerivationScheme scheme = DerivationScheme::Direct(node);
    NodeAssignment assignment;
    assignment.error = evaluator.SchemeError(scheme, {&entry.test_forecast},
                                             node);
    assignment.scheme = scheme;
    outcome.configuration.AddModel(node, std::move(entry));
    outcome.configuration.set_assignment(node, std::move(assignment));
  }
  outcome.build_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace f2db
