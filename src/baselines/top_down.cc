#include "baselines/top_down.h"

#include "common/stopwatch.h"

namespace f2db {

Result<BuildOutcome> TopDownBuilder::Build(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory) {
  StopWatch watch;
  const TimeSeriesGraph& graph = evaluator.graph();
  BuildOutcome outcome{ModelConfiguration(graph.num_nodes())};
  const NodeId top = graph.top_node();

  auto entries = baselines_internal::FitModels(evaluator, factory, {top});
  outcome.models_created = entries.size();
  const auto it = entries.find(top);
  if (it == entries.end()) {
    return Status::Internal("top_down: could not fit the top-node model");
  }
  outcome.configuration.AddModel(top, std::move(it->second));

  const DerivationScheme scheme = DerivationScheme::Single(top);
  const auto forecasts = outcome.configuration.ForecastsFor(scheme);
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    NodeAssignment assignment;
    assignment.error = evaluator.SchemeError(scheme, forecasts, node);
    assignment.scheme = scheme;
    outcome.configuration.set_assignment(node, std::move(assignment));
  }
  outcome.build_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace f2db
