#include "baselines/bottom_up.h"

#include "common/stopwatch.h"

namespace f2db {

Result<BuildOutcome> BottomUpBuilder::Build(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory) {
  StopWatch watch;
  const TimeSeriesGraph& graph = evaluator.graph();
  BuildOutcome outcome{ModelConfiguration(graph.num_nodes())};

  auto entries = baselines_internal::FitModels(evaluator, factory,
                                               graph.base_nodes());
  outcome.models_created = entries.size();
  for (auto& [node, entry] : entries) {
    outcome.configuration.AddModel(node, std::move(entry));
  }

  // Every node aggregates the forecasts of its base descendants; for base
  // nodes this degenerates to the direct scheme. The derivation weight
  // h_t / sum h_base(t) equals 1 by construction of the SUM cube.
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    const DerivationScheme scheme = DerivationScheme::Multi(
        baselines_internal::BaseDescendants(graph, node));
    const auto forecasts = outcome.configuration.ForecastsFor(scheme);
    if (forecasts.empty()) continue;  // some base model failed to fit
    NodeAssignment assignment;
    assignment.error = evaluator.SchemeError(scheme, forecasts, node);
    assignment.scheme = scheme;
    outcome.configuration.set_assignment(node, std::move(assignment));
  }
  outcome.build_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace f2db
