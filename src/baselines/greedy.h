// Greedy approach (Section VI-B, after Fischer/Boehm/Lehner BTW 2011):
// "initially builds all forecast models for all nodes in the graph and then
// selects in each step the model with the highest benefit with respect to
// forecast accuracy. It stops when there is no model left that improves the
// accuracy. To calculate the forecasts, it only considers the traditional
// derivation schemes aggregation, disaggregation and direct."

#ifndef F2DB_BASELINES_GREEDY_H_
#define F2DB_BASELINES_GREEDY_H_

#include "baselines/builder.h"

namespace f2db {

/// Greedy forward selection over the all-models pool.
class GreedyBuilder final : public ConfigurationBuilder {
 public:
  std::string name() const override { return "greedy"; }
  Result<BuildOutcome> Build(const ConfigurationEvaluator& evaluator,
                             const ModelFactory& factory) override;
};

}  // namespace f2db

#endif  // F2DB_BASELINES_GREEDY_H_
