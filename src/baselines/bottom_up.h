// Bottom-up approach (Section VI-B): "only forecasts for base time series
// are created and aggregated to produce forecasts for the whole time series
// graph" (Dunn et al. 1976, the most common method in the hierarchical
// forecasting literature).

#ifndef F2DB_BASELINES_BOTTOM_UP_H_
#define F2DB_BASELINES_BOTTOM_UP_H_

#include "baselines/builder.h"

namespace f2db {

/// Models at base nodes only; aggregates sum their base descendants.
class BottomUpBuilder final : public ConfigurationBuilder {
 public:
  std::string name() const override { return "bottom_up"; }
  Result<BuildOutcome> Build(const ConfigurationEvaluator& evaluator,
                             const ModelFactory& factory) override;
};

}  // namespace f2db

#endif  // F2DB_BASELINES_BOTTOM_UP_H_
