// Direct approach (Section VI-B): "creates a model for each node in the
// time series graph and uses the model to directly calculate the forecasts
// of the corresponding node." Maximum model costs, no derivation.

#ifndef F2DB_BASELINES_DIRECT_H_
#define F2DB_BASELINES_DIRECT_H_

#include "baselines/builder.h"

namespace f2db {

/// One model per node; every node forecasts itself.
class DirectBuilder final : public ConfigurationBuilder {
 public:
  std::string name() const override { return "direct"; }
  Result<BuildOutcome> Build(const ConfigurationEvaluator& evaluator,
                             const ModelFactory& factory) override;
};

}  // namespace f2db

#endif  // F2DB_BASELINES_DIRECT_H_
