#include "baselines/combine.h"

#include <unordered_map>

#include "common/stopwatch.h"
#include "math/matrix.h"
#include "math/solve.h"
#include "ts/accuracy.h"

namespace f2db {

Result<BuildOutcome> CombineBuilder::Build(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory) {
  StopWatch watch;
  const TimeSeriesGraph& graph = evaluator.graph();
  const std::size_t n = graph.num_nodes();
  const std::size_t num_base = graph.num_base_nodes();
  if (num_base > max_base_series_) {
    return Status::FailedPrecondition(
        "combine: " + std::to_string(num_base) +
        " base series exceed the reconciliation limit of " +
        std::to_string(max_base_series_));
  }
  BuildOutcome outcome{ModelConfiguration(n)};

  // Independent forecasts for every node.
  std::vector<NodeId> all_nodes(n);
  for (NodeId node = 0; node < n; ++node) all_nodes[node] = node;
  auto entries = baselines_internal::FitModels(evaluator, factory, all_nodes);
  outcome.models_created = entries.size();

  // Base-descendant lists define the summing matrix S (row per node).
  std::unordered_map<NodeId, std::size_t> base_index;
  for (std::size_t b = 0; b < num_base; ++b) {
    base_index[graph.base_nodes()[b]] = b;
  }
  std::vector<std::vector<std::size_t>> rows(n);
  for (NodeId node = 0; node < n; ++node) {
    for (NodeId leaf : baselines_internal::BaseDescendants(graph, node)) {
      rows[node].push_back(base_index.at(leaf));
    }
  }

  // Normal matrix S^T S via sparse row outer products.
  Matrix normal(num_base, num_base, 0.0);
  for (NodeId node = 0; node < n; ++node) {
    for (std::size_t i : rows[node]) {
      for (std::size_t j : rows[node]) normal(i, j) += 1.0;
    }
  }

  // Reconcile per test step: solve (S^T S) beta = S^T y_hat, then
  // y_tilde = S beta. The normal matrix is factored once and reused.
  F2DB_ASSIGN_OR_RETURN(CholeskyFactorization factor,
                        CholeskyFactorization::Compute(normal));
  const std::size_t horizon = evaluator.test_length();
  std::vector<std::vector<double>> reconciled(n,
                                              std::vector<double>(horizon, 0.0));
  for (std::size_t h = 0; h < horizon; ++h) {
    std::vector<double> rhs(num_base, 0.0);
    for (NodeId node = 0; node < n; ++node) {
      const auto it = entries.find(node);
      if (it == entries.end()) continue;
      const double y_hat = it->second.test_forecast[h];
      for (std::size_t b : rows[node]) rhs[b] += y_hat;
    }
    const std::vector<double> beta = factor.Solve(rhs);
    for (NodeId node = 0; node < n; ++node) {
      double sum = 0.0;
      for (std::size_t b : rows[node]) sum += beta[b];
      reconciled[node][h] = sum;
    }
  }

  // The final configuration keeps every model (maximum model costs, as in
  // the paper) and records the reconciled error per node.
  for (auto& [node, entry] : entries) {
    outcome.configuration.AddModel(node, std::move(entry));
  }
  for (NodeId node = 0; node < n; ++node) {
    NodeAssignment assignment;
    assignment.error = Smape(evaluator.TestActual(node), reconciled[node]);
    assignment.scheme = DerivationScheme::Multi(
        baselines_internal::BaseDescendants(graph, node));
    outcome.configuration.set_assignment(node, std::move(assignment));
  }
  outcome.build_seconds = watch.ElapsedSeconds();
  last_reconciled_ = std::move(reconciled);
  return outcome;
}

}  // namespace f2db
