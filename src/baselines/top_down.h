// Top-down approach (Section VI-B): a single model at the top node whose
// forecasts are distributed down the hierarchy "based on the historical
// proportions of the data"; Gross & Sohl (1990) found the proportions of
// the historical averages to perform best, which is exactly the derivation
// weight h_t / h_top of Eq. 2.

#ifndef F2DB_BASELINES_TOP_DOWN_H_
#define F2DB_BASELINES_TOP_DOWN_H_

#include "baselines/builder.h"

namespace f2db {

/// One model at the top node; every node disaggregates from it.
class TopDownBuilder final : public ConfigurationBuilder {
 public:
  std::string name() const override { return "top_down"; }
  Result<BuildOutcome> Build(const ConfigurationEvaluator& evaluator,
                             const ModelFactory& factory) override;
};

}  // namespace f2db

#endif  // F2DB_BASELINES_TOP_DOWN_H_
