// Adapter exposing the model configuration advisor through the common
// ConfigurationBuilder interface, so benches and examples can sweep the
// advisor next to the Section VI-B baselines.

#ifndef F2DB_BASELINES_ADVISOR_BUILDER_H_
#define F2DB_BASELINES_ADVISOR_BUILDER_H_

#include "baselines/builder.h"
#include "core/advisor.h"

namespace f2db {

/// Runs the advisor and returns its final configuration.
class AdvisorBuilder final : public ConfigurationBuilder {
 public:
  explicit AdvisorBuilder(AdvisorOptions options = {})
      : options_(std::move(options)) {}

  std::string name() const override { return "advisor"; }
  Result<BuildOutcome> Build(const ConfigurationEvaluator& evaluator,
                             const ModelFactory& factory) override;

  /// The run statistics of the last Build (valid after a successful call).
  const AdvisorResult* last_result() const {
    return has_last_ ? &last_ : nullptr;
  }

 private:
  AdvisorOptions options_;
  AdvisorResult last_;
  bool has_last_ = false;
};

}  // namespace f2db

#endif  // F2DB_BASELINES_ADVISOR_BUILDER_H_
