// Combine approach (Section VI-B): Hyndman, Ahmed, Athanasopoulos & Shang,
// "Optimal combination forecasts for hierarchical time series" (2011).
// Forecasts every node independently, then reconciles all forecasts through
// the least-squares projection
//     y_tilde = S (S^T S)^{-1} S^T y_hat
// where S is the summing matrix mapping base series to all graph nodes.
// The solve over the base dimension is what makes this approach explode
// with the number of base series (paper Figure 9(a): "> one day" for
// Gen10k); Build refuses graphs above `max_base_series`.

#ifndef F2DB_BASELINES_COMBINE_H_
#define F2DB_BASELINES_COMBINE_H_

#include "baselines/builder.h"

namespace f2db {

/// Optimal-combination (OLS reconciliation) baseline.
class CombineBuilder final : public ConfigurationBuilder {
 public:
  /// `max_base_series` bounds the dense (B x B) normal-equation solve.
  explicit CombineBuilder(std::size_t max_base_series = 2000)
      : max_base_series_(max_base_series) {}

  std::string name() const override { return "combine"; }
  Result<BuildOutcome> Build(const ConfigurationEvaluator& evaluator,
                             const ModelFactory& factory) override;

  /// Reconciled test-horizon forecasts per node from the last Build
  /// (empty before). Reconciliation projects onto the aggregation-
  /// coherent subspace, so these satisfy parent = sum(children) exactly —
  /// exposed so tests can verify that property.
  const std::vector<std::vector<double>>& last_reconciled() const {
    return last_reconciled_;
  }

 private:
  std::size_t max_base_series_;
  std::vector<std::vector<double>> last_reconciled_;
};

}  // namespace f2db

#endif  // F2DB_BASELINES_COMBINE_H_
