#include "baselines/greedy.h"

#include <algorithm>
#include <unordered_set>

#include "common/stopwatch.h"

namespace f2db {
namespace {

/// All proper descendants of `node` (every node below it in any mix of
/// dimensions), deduplicated.
std::vector<NodeId> AllDescendants(const TimeSeriesGraph& graph, NodeId node) {
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen{node};
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    const NodeId current = stack.back();
    stack.pop_back();
    for (std::size_t dim = 0; dim < graph.schema().num_dimensions(); ++dim) {
      for (NodeId child : graph.Children(current, dim)) {
        if (seen.insert(child).second) {
          out.push_back(child);
          stack.push_back(child);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<BuildOutcome> GreedyBuilder::Build(
    const ConfigurationEvaluator& evaluator, const ModelFactory& factory) {
  StopWatch watch;
  const TimeSeriesGraph& graph = evaluator.graph();
  const std::size_t n = graph.num_nodes();
  BuildOutcome outcome{ModelConfiguration(n)};

  // Step 1: build ALL models (this is what makes Greedy expensive).
  std::vector<NodeId> all_nodes(n);
  for (NodeId node = 0; node < n; ++node) all_nodes[node] = node;
  auto pool = baselines_internal::FitModels(evaluator, factory, all_nodes);
  outcome.models_created = pool.size();

  // Step 2: precompute the static per-pair errors of the traditional
  // schemes. A scheme's error never changes while the selection grows, so
  // each (model, target) pair is evaluated exactly once.
  //   direct_err[m]        : m -> m
  //   disagg[m]            : list of (descendant t, error of m -> t)
  //   agg_err[t][dim]      : children(t, dim) -> t (needs all children)
  std::vector<double> direct_err(n, 1.0);
  std::vector<std::vector<std::pair<NodeId, double>>> disagg(n);
  for (auto& [node, entry] : pool) {
    const std::vector<const std::vector<double>*> forecast{
        &entry.test_forecast};
    direct_err[node] = evaluator.SchemeError(DerivationScheme::Direct(node),
                                             forecast, node);
    for (NodeId target : AllDescendants(graph, node)) {
      disagg[node].emplace_back(
          target, evaluator.SchemeError(DerivationScheme::Single(node),
                                        forecast, target));
    }
  }

  // Current per-node best error/scheme under the selected model set.
  std::vector<double> best_err(n, 1.0);
  std::vector<DerivationScheme> best_scheme(n);
  std::vector<bool> selected(n, false);

  // Aggregation bookkeeping: per (parent, dim) the number of children not
  // yet selected; when it reaches zero the aggregation scheme activates.
  struct AggState {
    NodeId parent;
    std::size_t dim;
    std::size_t missing;
    std::vector<NodeId> children;
  };
  std::vector<AggState> agg_states;
  std::vector<std::vector<std::size_t>> agg_of_child(n);  // child -> states
  for (NodeId node = 0; node < n; ++node) {
    for (auto& [dim, children] : graph.ChildSets(node)) {
      AggState state;
      state.parent = node;
      state.dim = dim;
      state.missing = children.size();
      state.children = children;
      for (NodeId child : children) {
        agg_of_child[child].push_back(agg_states.size());
      }
      agg_states.push_back(std::move(state));
    }
  }

  auto try_improve = [&](NodeId target, double error,
                         const DerivationScheme& scheme) {
    if (error < best_err[target]) {
      best_err[target] = error;
      best_scheme[target] = scheme;
    }
  };

  // Step 3: greedy forward selection.
  for (;;) {
    NodeId best_candidate = 0;
    double best_benefit = 0.0;
    bool found = false;
    for (auto& [node, entry] : pool) {
      if (selected[node]) continue;
      double benefit = 0.0;
      if (direct_err[node] < best_err[node]) {
        benefit += best_err[node] - direct_err[node];
      }
      for (const auto& [target, error] : disagg[node]) {
        if (error < best_err[target]) benefit += best_err[target] - error;
      }
      // Aggregations completed by this node.
      for (std::size_t idx : agg_of_child[node]) {
        const AggState& state = agg_states[idx];
        if (state.missing != 1) continue;
        const DerivationScheme scheme = DerivationScheme::Multi(state.children);
        // Evaluate with the pool's forecasts (selection is hypothetical).
        std::vector<const std::vector<double>*> forecasts;
        forecasts.reserve(state.children.size());
        bool ok = true;
        for (NodeId child : state.children) {
          const auto it = pool.find(child);
          if (it == pool.end()) {
            ok = false;
            break;
          }
          forecasts.push_back(&it->second.test_forecast);
        }
        if (!ok) continue;
        const double error =
            evaluator.SchemeError(scheme, forecasts, state.parent);
        if (error < best_err[state.parent]) {
          benefit += best_err[state.parent] - error;
        }
      }
      if (benefit > best_benefit + 1e-12) {
        best_benefit = benefit;
        best_candidate = node;
        found = true;
      }
    }
    if (!found) break;

    // Commit the best candidate.
    const NodeId m = best_candidate;
    selected[m] = true;
    try_improve(m, direct_err[m], DerivationScheme::Direct(m));
    for (const auto& [target, error] : disagg[m]) {
      try_improve(target, error, DerivationScheme::Single(m));
    }
    for (std::size_t idx : agg_of_child[m]) {
      AggState& state = agg_states[idx];
      if (state.missing == 0) continue;
      --state.missing;
      if (state.missing == 0) {
        const DerivationScheme scheme = DerivationScheme::Multi(state.children);
        std::vector<const std::vector<double>*> forecasts;
        bool ok = true;
        for (NodeId child : state.children) {
          const auto it = pool.find(child);
          if (it == pool.end()) {
            ok = false;
            break;
          }
          forecasts.push_back(&it->second.test_forecast);
        }
        if (ok) {
          try_improve(state.parent,
                      evaluator.SchemeError(scheme, forecasts, state.parent),
                      scheme);
        }
      }
    }
  }

  // Step 4: materialize the configuration with the selected models only.
  for (NodeId node = 0; node < n; ++node) {
    if (selected[node]) {
      auto it = pool.find(node);
      outcome.configuration.AddModel(node, std::move(it->second));
    }
    NodeAssignment assignment;
    assignment.error = best_err[node];
    assignment.scheme = best_scheme[node];
    outcome.configuration.set_assignment(node, std::move(assignment));
  }
  outcome.build_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace f2db
