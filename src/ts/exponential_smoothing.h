// Exponential smoothing models: simple (SES), double (Holt, optionally
// damped), and triple (Holt–Winters, additive or multiplicative
// seasonality).
//
// The paper's evaluation uses triple exponential smoothing as the model of
// choice ("we analyzed different forecast models ... and found that triple
// exponential smoothing worked best in most cases, where we set the
// seasonality according to the granularity of the data", Section VI-A).
// Smoothing parameters are estimated by minimizing the one-step-ahead sum
// of squared errors with a derivative-free optimizer (Section IV-B1).

#ifndef F2DB_TS_EXPONENTIAL_SMOOTHING_H_
#define F2DB_TS_EXPONENTIAL_SMOOTHING_H_

#include <memory>
#include <vector>

#include "common/failpoint.h"
#include "ts/model.h"

namespace f2db {

/// Fault-injection site: ExponentialSmoothingModel::Fit fails with
/// kUnavailable before touching any state (used to exercise the engine's
/// re-estimation fallback ladder).
F2DB_DEFINE_FAILPOINT(kFailpointEtsFit, "ts.ets_fit")

/// Structural configuration of an exponential smoothing model.
struct EtsSpec {
  bool trend = false;           ///< Include a (Holt) trend component.
  bool damped = false;          ///< Damped trend (requires trend).
  bool seasonal = false;        ///< Include a seasonal component.
  bool multiplicative = false;  ///< Multiplicative seasonality.
  std::size_t period = 1;       ///< Season length (>= 2 when seasonal).
};

/// Which optimizer estimates the smoothing parameters.
enum class EtsOptimizer {
  kNelderMead,          ///< Default: fast local simplex search.
  kHillClimb,           ///< Coordinate hill-climbing (paper Section IV-B1).
  kSimulatedAnnealing,  ///< Global stochastic search.
};

/// Unified exponential-smoothing model covering SES, Holt, and
/// Holt–Winters. The concrete ModelType is derived from the spec.
class ExponentialSmoothingModel final : public ForecastModel {
 public:
  explicit ExponentialSmoothingModel(
      EtsSpec spec, EtsOptimizer optimizer = EtsOptimizer::kNelderMead);

  /// Simple exponential smoothing.
  static std::unique_ptr<ExponentialSmoothingModel> Ses();
  /// Holt's linear (optionally damped) trend method.
  static std::unique_ptr<ExponentialSmoothingModel> Holt(bool damped = false);
  /// Triple exponential smoothing with additive seasonality.
  static std::unique_ptr<ExponentialSmoothingModel> HoltWintersAdditive(
      std::size_t period);
  /// Triple exponential smoothing with multiplicative seasonality.
  static std::unique_ptr<ExponentialSmoothingModel> HoltWintersMultiplicative(
      std::size_t period);

  Status Fit(const TimeSeries& history) override;
  std::vector<double> Forecast(std::size_t horizon) const override;
  void Update(double value) override;
  std::unique_ptr<ForecastModel> Clone() const override;
  ModelType type() const override;
  std::size_t num_parameters() const override;
  std::vector<double> parameters() const override;
  bool is_fitted() const override { return fitted_; }
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;
  std::vector<double> FittedValues() const override { return fitted_values_; }
  std::vector<double> ForecastVariance(std::size_t horizon) const override;
  double residual_variance() const override { return sigma2_; }

  const EtsSpec& spec() const { return spec_; }

  /// Smoothing parameters after Fit.
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double gamma() const { return gamma_; }
  double phi() const { return phi_; }

 private:
  /// Mutable smoothing state advanced one observation at a time.
  struct State {
    double level = 0.0;
    double trend = 0.0;
    /// seasonal[0] applies to the next observation; rotated on update.
    std::vector<double> seasonal;
  };

  /// Initializes level/trend/seasonal from the first observations.
  Status InitializeState(const TimeSeries& history, State& state) const;

  /// Advances `state` by observation y under the given parameters and
  /// returns the one-step-ahead forecast made before seeing y.
  double Step(State& state, double y, double alpha, double beta, double gamma,
              double phi) const;

  /// One-step forecast implied by the current state (k steps ahead).
  double PointForecast(const State& state, std::size_t k) const;

  EtsSpec spec_;
  EtsOptimizer optimizer_;
  bool fitted_ = false;
  double alpha_ = 0.3, beta_ = 0.1, gamma_ = 0.1, phi_ = 0.98;
  State state_;
  std::vector<double> fitted_values_;
  /// One-step in-sample residual variance from the final fitting pass.
  double sigma2_ = 0.0;
};

}  // namespace f2db

#endif  // F2DB_TS_EXPONENTIAL_SMOOTHING_H_
