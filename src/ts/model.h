// The forecast-model abstraction.
//
// Every node of the time series hyper graph may carry one forecast model
// (Section II-B). The advisor is agnostic to the model family; the engine
// additionally needs incremental state maintenance (Update) and
// serialization for the configuration storage tables (Section V).

#ifndef F2DB_TS_MODEL_H_
#define F2DB_TS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace f2db {

/// Model families available in this library.
enum class ModelType {
  kMean,               ///< Constant mean of the history.
  kNaive,              ///< Random walk: last observation.
  kSeasonalNaive,      ///< Last observed value of the same season.
  kDrift,              ///< Random walk with drift.
  kSes,                ///< Simple exponential smoothing.
  kHolt,               ///< Double exponential smoothing (trend).
  kHoltWintersAdd,     ///< Triple ES, additive seasonality (paper default).
  kHoltWintersMul,     ///< Triple ES, multiplicative seasonality.
  kArima,              ///< (Seasonal) ARIMA via CSS + Nelder–Mead.
  kTheta,              ///< Theta method (M3 winner; SES + half trend drift).
  kAuto,               ///< Holdout-based automatic selection.
};

/// Stable lower-case name for a model type ("holt_winters_add", ...).
const char* ModelTypeName(ModelType type);

/// Parses a ModelTypeName back to the enum.
Result<ModelType> ParseModelType(const std::string& name);

/// Interface implemented by all forecast models.
///
/// Lifecycle: construct -> Fit(history) -> Forecast(h) any number of times;
/// as new observations arrive, Update(y) advances the internal state by one
/// period without re-estimating parameters (the paper's incremental
/// maintenance). Re-estimation is a fresh Fit on the extended history,
/// triggered lazily by the engine's invalidation strategy.
///
/// Thread-safety contract: the const members (Forecast, ForecastVariance,
/// FittedValues, parameters, ...) must be genuinely read-only — no mutable
/// caches — so that a fitted model shared between threads can serve
/// concurrent forecasts. The engine relies on this: published snapshots
/// hold models as shared const objects, and every state transition goes
/// through Clone() + Fit/Update on the private copy (copy-on-write).
class ForecastModel {
 public:
  virtual ~ForecastModel() = default;

  /// Estimates parameters and initializes state from `history`.
  virtual Status Fit(const TimeSeries& history) = 0;

  /// Forecasts the next `horizon` values after the end of the history seen
  /// so far (Fit plus Updates). Requires a successful Fit.
  virtual std::vector<double> Forecast(std::size_t horizon) const = 0;

  /// Advances the model state by one new observation without changing the
  /// estimated parameters.
  virtual void Update(double value) = 0;

  /// Deep copy. Used when evaluating tentative configurations, and by the
  /// engine as the copy-on-write step of maintenance and lazy
  /// re-estimation: the published model is never mutated, its clone is.
  /// Must be cheap (parameters + O(season) state, no history).
  virtual std::unique_ptr<ForecastModel> Clone() const = 0;

  /// The model family.
  virtual ModelType type() const = 0;

  /// Number of free parameters estimated by Fit (for AIC-style criteria).
  virtual std::size_t num_parameters() const = 0;

  /// Flat view of the estimated parameters (empty before Fit).
  virtual std::vector<double> parameters() const = 0;

  /// True after a successful Fit.
  virtual bool is_fitted() const = 0;

  /// Serializes parameters + state into a flat vector for the engine's
  /// model table. RestoreState must accept exactly this output.
  virtual std::vector<double> SaveState() const = 0;

  /// Restores a model previously saved with SaveState. The model is usable
  /// for Forecast/Update afterwards.
  virtual Status RestoreState(const std::vector<double>& state) = 0;

  /// One-step-ahead in-sample forecasts for the fitted history; used for
  /// accuracy diagnostics and AIC computation. Empty when unsupported.
  virtual std::vector<double> FittedValues() const { return {}; }

  /// Variance of the h-step-ahead forecast errors for h = 1..horizon,
  /// based on the in-sample residual variance and the model's error
  /// propagation structure. Empty when the model does not support
  /// interval forecasts.
  virtual std::vector<double> ForecastVariance(std::size_t horizon) const {
    (void)horizon;
    return {};
  }

  /// In-sample one-step residual variance estimated at Fit time; 0 when
  /// unsupported or before Fit.
  virtual double residual_variance() const { return 0.0; }
};

}  // namespace f2db

#endif  // F2DB_TS_MODEL_H_
