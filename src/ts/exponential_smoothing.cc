#include "ts/exponential_smoothing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "math/optimizer.h"

namespace f2db {
namespace {

constexpr double kParamLo = 0.01;
constexpr double kParamHi = 0.99;
constexpr double kPhiLo = 0.80;
constexpr double kPhiHi = 0.995;

}  // namespace

ExponentialSmoothingModel::ExponentialSmoothingModel(EtsSpec spec,
                                                     EtsOptimizer optimizer)
    : spec_(spec), optimizer_(optimizer) {
  if (!spec_.trend) spec_.damped = false;
  if (!spec_.seasonal) {
    spec_.multiplicative = false;
    spec_.period = 1;
  }
}

std::unique_ptr<ExponentialSmoothingModel> ExponentialSmoothingModel::Ses() {
  return std::make_unique<ExponentialSmoothingModel>(EtsSpec{});
}

std::unique_ptr<ExponentialSmoothingModel> ExponentialSmoothingModel::Holt(
    bool damped) {
  EtsSpec spec;
  spec.trend = true;
  spec.damped = damped;
  return std::make_unique<ExponentialSmoothingModel>(spec);
}

std::unique_ptr<ExponentialSmoothingModel>
ExponentialSmoothingModel::HoltWintersAdditive(std::size_t period) {
  EtsSpec spec;
  spec.trend = true;
  spec.seasonal = true;
  spec.multiplicative = false;
  spec.period = period;
  return std::make_unique<ExponentialSmoothingModel>(spec);
}

std::unique_ptr<ExponentialSmoothingModel>
ExponentialSmoothingModel::HoltWintersMultiplicative(std::size_t period) {
  EtsSpec spec;
  spec.trend = true;
  spec.seasonal = true;
  spec.multiplicative = true;
  spec.period = period;
  return std::make_unique<ExponentialSmoothingModel>(spec);
}

ModelType ExponentialSmoothingModel::type() const {
  if (spec_.seasonal) {
    return spec_.multiplicative ? ModelType::kHoltWintersMul
                                : ModelType::kHoltWintersAdd;
  }
  return spec_.trend ? ModelType::kHolt : ModelType::kSes;
}

std::size_t ExponentialSmoothingModel::num_parameters() const {
  std::size_t n = 1;  // alpha
  if (spec_.trend) ++n;
  if (spec_.seasonal) ++n;
  if (spec_.damped) ++n;
  return n;
}

std::vector<double> ExponentialSmoothingModel::parameters() const {
  std::vector<double> out{alpha_};
  if (spec_.trend) out.push_back(beta_);
  if (spec_.seasonal) out.push_back(gamma_);
  if (spec_.damped) out.push_back(phi_);
  return out;
}

Status ExponentialSmoothingModel::InitializeState(const TimeSeries& history,
                                                  State& state) const {
  const std::size_t n = history.size();
  const std::size_t m = spec_.seasonal ? spec_.period : 1;
  if (spec_.seasonal && m < 2) {
    return Status::InvalidArgument("ETS: seasonal period must be >= 2");
  }
  const std::size_t min_obs = spec_.seasonal ? m + 2 : (spec_.trend ? 3u : 1u);
  if (n < min_obs) {
    return Status::InvalidArgument("ETS: series too short (" +
                                   std::to_string(n) + " < " +
                                   std::to_string(min_obs) + ")");
  }

  if (!spec_.seasonal) {
    state.level = history[0];
    state.trend = spec_.trend && n >= 2 ? history[1] - history[0] : 0.0;
    state.seasonal.clear();
    return Status::OK();
  }

  // Classical initialization: level = mean of the first season; trend =
  // difference of the first two season means (or overall slope when only
  // one full season is available); seasonal indices averaged per position.
  double season1 = 0.0;
  for (std::size_t i = 0; i < m; ++i) season1 += history[i];
  season1 /= static_cast<double>(m);
  state.level = season1;

  if (n >= 2 * m) {
    double season2 = 0.0;
    for (std::size_t i = m; i < 2 * m; ++i) season2 += history[i];
    season2 /= static_cast<double>(m);
    state.trend = (season2 - season1) / static_cast<double>(m);
  } else {
    state.trend =
        (history[n - 1] - history[0]) / static_cast<double>(n - 1);
  }
  if (!spec_.trend) state.trend = 0.0;

  state.seasonal.assign(m, spec_.multiplicative ? 1.0 : 0.0);
  std::vector<std::size_t> counts(m, 0);
  const std::size_t full_seasons = n / m;
  for (std::size_t k = 0; k < full_seasons; ++k) {
    double season_mean = 0.0;
    for (std::size_t j = 0; j < m; ++j) season_mean += history[k * m + j];
    season_mean /= static_cast<double>(m);
    if (spec_.multiplicative && std::abs(season_mean) < 1e-12) continue;
    for (std::size_t j = 0; j < m; ++j) {
      const double y = history[k * m + j];
      const double idx =
          spec_.multiplicative ? y / season_mean : y - season_mean;
      state.seasonal[j] += idx;
      ++counts[j];
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (counts[j] > 0) {
      state.seasonal[j] /= static_cast<double>(counts[j]);
      if (spec_.multiplicative) {
        // Remove the initial 1.0 contribution from assign().
        state.seasonal[j] -= 1.0 / static_cast<double>(counts[j]);
      }
    }
  }
  // Normalize seasonal indices (sum 0 for additive, mean 1 for mult.).
  double total = 0.0;
  for (double s : state.seasonal) total += s;
  if (spec_.multiplicative) {
    const double mean = total / static_cast<double>(m);
    if (std::abs(mean) > 1e-12) {
      for (double& s : state.seasonal) s /= mean;
    }
  } else {
    const double mean = total / static_cast<double>(m);
    for (double& s : state.seasonal) s -= mean;
  }
  return Status::OK();
}

double ExponentialSmoothingModel::PointForecast(const State& state,
                                                std::size_t k) const {
  // k >= 1 steps ahead of the current state.
  double trend_sum = 0.0;
  if (spec_.trend) {
    if (spec_.damped) {
      double damp = phi_;
      for (std::size_t i = 1; i <= k; ++i) {
        trend_sum += damp;
        damp *= phi_;
      }
    } else {
      trend_sum = static_cast<double>(k);
    }
  }
  const double base = state.level + trend_sum * state.trend;
  if (!spec_.seasonal) return base;
  const double s = state.seasonal[(k - 1) % state.seasonal.size()];
  return spec_.multiplicative ? base * s : base + s;
}

double ExponentialSmoothingModel::Step(State& state, double y, double alpha,
                                       double beta, double gamma,
                                       double phi) const {
  const double damped_trend = spec_.damped ? phi * state.trend : state.trend;
  double prediction;
  if (spec_.seasonal) {
    const double s0 = state.seasonal.front();
    const double base = state.level + (spec_.trend ? damped_trend : 0.0);
    prediction = spec_.multiplicative ? base * s0 : base + s0;

    const double deseasonalized =
        spec_.multiplicative ? (std::abs(s0) > 1e-12 ? y / s0 : y) : y - s0;
    const double prev_level = state.level;
    state.level = alpha * deseasonalized +
                  (1.0 - alpha) * (prev_level + (spec_.trend ? damped_trend : 0.0));
    if (spec_.trend) {
      state.trend =
          beta * (state.level - prev_level) + (1.0 - beta) * damped_trend;
    }
    const double detrended = spec_.multiplicative
                                 ? (std::abs(state.level) > 1e-12
                                        ? y / state.level
                                        : s0)
                                 : y - state.level;
    const double new_seasonal = gamma * detrended + (1.0 - gamma) * s0;
    state.seasonal.erase(state.seasonal.begin());
    state.seasonal.push_back(new_seasonal);
  } else {
    const double base = state.level + (spec_.trend ? damped_trend : 0.0);
    prediction = base;
    const double prev_level = state.level;
    state.level = alpha * y + (1.0 - alpha) * base;
    if (spec_.trend) {
      state.trend =
          beta * (state.level - prev_level) + (1.0 - beta) * damped_trend;
    }
  }
  return prediction;
}

Status ExponentialSmoothingModel::Fit(const TimeSeries& history) {
  F2DB_INJECT_FAILPOINT(kFailpointEtsFit);
  State init;
  F2DB_RETURN_IF_ERROR(InitializeState(history, init));

  // One-step-ahead SSE of a full pass over the history.
  auto sse_for = [&](double alpha, double beta, double gamma, double phi) {
    State state = init;
    double sse = 0.0;
    for (std::size_t t = 0; t < history.size(); ++t) {
      const double pred = Step(state, history[t], alpha, beta, gamma, phi);
      const double err = history[t] - pred;
      sse += err * err;
    }
    return std::isfinite(sse) ? sse : std::numeric_limits<double>::max();
  };

  // Pack the free parameters into an optimizer vector.
  const bool has_beta = spec_.trend;
  const bool has_gamma = spec_.seasonal;
  const bool has_phi = spec_.damped;
  auto unpack = [&](const std::vector<double>& x, double& alpha, double& beta,
                    double& gamma, double& phi) {
    std::size_t i = 0;
    alpha = x[i++];
    beta = has_beta ? x[i++] : 0.0;
    gamma = has_gamma ? x[i++] : 0.0;
    phi = has_phi ? x[i++] : 1.0;
  };
  Objective objective = [&](const std::vector<double>& x) {
    double alpha, beta, gamma, phi;
    unpack(x, alpha, beta, gamma, phi);
    return sse_for(alpha, beta, gamma, phi);
  };

  std::vector<double> x0{0.3};
  Bounds bounds;
  bounds.lower = {kParamLo};
  bounds.upper = {kParamHi};
  if (has_beta) {
    x0.push_back(0.1);
    bounds.lower.push_back(kParamLo);
    bounds.upper.push_back(kParamHi);
  }
  if (has_gamma) {
    x0.push_back(0.1);
    bounds.lower.push_back(kParamLo);
    bounds.upper.push_back(kParamHi);
  }
  if (has_phi) {
    x0.push_back(0.95);
    bounds.lower.push_back(kPhiLo);
    bounds.upper.push_back(kPhiHi);
  }

  OptimizationResult best;
  switch (optimizer_) {
    case EtsOptimizer::kNelderMead: {
      OptimizerOptions options;
      options.max_evaluations = 400 * x0.size();
      best = NelderMead(objective, x0, bounds, options);
      break;
    }
    case EtsOptimizer::kHillClimb: {
      OptimizerOptions options;
      options.max_evaluations = 400 * x0.size();
      best = HillClimb(objective, x0, bounds, options);
      break;
    }
    case EtsOptimizer::kSimulatedAnnealing: {
      AnnealingOptions options;
      options.base.max_evaluations = 600 * x0.size();
      Rng rng(0xE75F17u);
      best = SimulatedAnnealing(objective, x0, bounds, rng, options);
      break;
    }
  }

  // Optimizer non-convergence is an expected (transient) event, not a
  // programmer error: every objective value was non-finite (or the search
  // was aborted by the math.optimizer_converge failpoint). Surfacing
  // kUnavailable lets the engine degrade through its fallback ladder
  // instead of installing a model with garbage parameters.
  if (!(best.value < std::numeric_limits<double>::max())) {
    return Status::Unavailable(
        "ETS: optimizer did not reach a finite objective");
  }
  unpack(best.x, alpha_, beta_, gamma_, phi_);
  if (!spec_.damped) phi_ = 1.0;

  // Final pass: record fitted values and the end-of-history state.
  state_ = init;
  fitted_values_.clear();
  fitted_values_.reserve(history.size());
  double sse_final = 0.0;
  for (std::size_t t = 0; t < history.size(); ++t) {
    fitted_values_.push_back(Step(state_, history[t], alpha_, beta_, gamma_, phi_));
    const double err = history[t] - fitted_values_.back();
    sse_final += err * err;
  }
  sigma2_ = history.empty() ? 0.0
                            : sse_final / static_cast<double>(history.size());
  fitted_ = true;
  return Status::OK();
}

std::vector<double> ExponentialSmoothingModel::Forecast(
    std::size_t horizon) const {
  assert(fitted_);
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = PointForecast(state_, h + 1);
  }
  return out;
}

void ExponentialSmoothingModel::Update(double value) {
  Step(state_, value, alpha_, beta_, gamma_, phi_);
}

std::unique_ptr<ForecastModel> ExponentialSmoothingModel::Clone() const {
  return std::make_unique<ExponentialSmoothingModel>(*this);
}

std::vector<double> ExponentialSmoothingModel::ForecastVariance(
    std::size_t horizon) const {
  // Class-1 ETS forecast variance (Hyndman et al. 2008, Table 6.2):
  //   var_h = sigma2 * (1 + sum_{j=1}^{h-1} c_j^2)
  // with c_j = alpha (1 + beta* S_j) + gamma (1 - alpha) [j mod m == 0],
  // where S_j = j for an undamped trend and sum_{i<=j} phi^i when damped.
  // The multiplicative-seasonal variant has no closed form (class 2); the
  // additive formula is used as an approximation there.
  std::vector<double> out(horizon);
  double cumulative = 0.0;
  const std::size_t m = spec_.seasonal ? spec_.period : 0;
  double damp_sum = 0.0;
  double damp_pow = 1.0;
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = sigma2_ * (1.0 + cumulative);
    // Prepare c_{h+1} for the next step.
    const double j = static_cast<double>(h + 1);
    double trend_term = 0.0;
    if (spec_.trend) {
      if (spec_.damped) {
        damp_pow *= phi_;
        damp_sum += damp_pow;
        trend_term = beta_ * damp_sum;
      } else {
        trend_term = beta_ * j;
      }
    }
    double c = alpha_ * (1.0 + trend_term);
    if (m > 1 && (h + 1) % m == 0) c += gamma_ * (1.0 - alpha_);
    cumulative += c * c;
  }
  return out;
}

std::vector<double> ExponentialSmoothingModel::SaveState() const {
  std::vector<double> out;
  out.push_back(spec_.trend ? 1.0 : 0.0);
  out.push_back(spec_.damped ? 1.0 : 0.0);
  out.push_back(spec_.seasonal ? 1.0 : 0.0);
  out.push_back(spec_.multiplicative ? 1.0 : 0.0);
  out.push_back(static_cast<double>(spec_.period));
  out.push_back(alpha_);
  out.push_back(beta_);
  out.push_back(gamma_);
  out.push_back(phi_);
  out.push_back(sigma2_);
  out.push_back(state_.level);
  out.push_back(state_.trend);
  out.insert(out.end(), state_.seasonal.begin(), state_.seasonal.end());
  return out;
}

Status ExponentialSmoothingModel::RestoreState(
    const std::vector<double>& state) {
  if (state.size() < 12) return Status::InvalidArgument("ETS: bad state");
  EtsSpec spec;
  spec.trend = state[0] != 0.0;
  spec.damped = state[1] != 0.0;
  spec.seasonal = state[2] != 0.0;
  spec.multiplicative = state[3] != 0.0;
  spec.period = static_cast<std::size_t>(state[4]);
  const std::size_t season_len = spec.seasonal ? spec.period : 0;
  if (state.size() != 12 + season_len) {
    return Status::InvalidArgument("ETS: bad state size");
  }
  spec_ = spec;
  alpha_ = state[5];
  beta_ = state[6];
  gamma_ = state[7];
  phi_ = state[8];
  sigma2_ = state[9];
  state_.level = state[10];
  state_.trend = state[11];
  state_.seasonal.assign(state.begin() + 12, state.end());
  fitted_ = true;
  return Status::OK();
}

}  // namespace f2db
