#include "ts/history_selection.h"

#include <algorithm>
#include <limits>

#include "ts/accuracy.h"

namespace f2db {

Result<HistorySelection> SelectHistoryLength(
    const TimeSeries& series, const ModelFactory& factory,
    const HistorySelectionOptions& options) {
  const std::size_t n = series.size();
  if (options.validation_length == 0) {
    return Status::InvalidArgument("history selection: validation_length == 0");
  }
  if (n < options.min_length + options.validation_length) {
    return Status::InvalidArgument("history selection: series too short");
  }

  std::vector<std::size_t> candidates = options.candidate_lengths;
  if (candidates.empty()) {
    // Geometric ladder n, n/2, n/4, ... down to the floor.
    std::size_t length = n;
    while (length >= options.min_length + options.validation_length) {
      candidates.push_back(length);
      length /= 2;
    }
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("history selection: no viable candidates");
  }

  const TimeSeries validation = series.Tail(options.validation_length);

  HistorySelection best;
  best.validation_smape = std::numeric_limits<double>::max();
  for (std::size_t length : candidates) {
    length = std::min(length, n);
    if (length < options.min_length + options.validation_length) continue;
    // Train on the suffix with the validation tail removed.
    const TimeSeries train =
        series.Slice(n - length, length - options.validation_length);
    auto model = factory.CreateAndFit(train);
    if (!model.ok()) continue;
    ++best.candidates_tried;
    const double error =
        Smape(validation.values(),
              model.value()->Forecast(options.validation_length));
    if (error < best.validation_smape) {
      best.validation_smape = error;
      best.length = length;
    }
  }
  if (best.length == 0) {
    return Status::Internal("history selection: no candidate could be fitted");
  }
  return best;
}

}  // namespace f2db
