// Classical seasonal decomposition and the Box–Cox transform.
//
// Supporting tools for time series diagnostics: moving-average based
// decomposition into trend + seasonal + remainder (additive or
// multiplicative), and the variance-stabilizing Box–Cox transform with its
// inverse. The Theta method (ts/theta.h) and the data-set generators use
// these; they are also part of the public toolkit a forecasting library is
// expected to ship.

#ifndef F2DB_TS_DECOMPOSITION_H_
#define F2DB_TS_DECOMPOSITION_H_

#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace f2db {

/// Decomposition flavor.
enum class DecompositionType { kAdditive, kMultiplicative };

/// y = trend + seasonal + remainder (additive) or
/// y = trend * seasonal * remainder (multiplicative).
struct Decomposition {
  std::vector<double> trend;      ///< Centered moving average (NaN-free:
                                  ///< ends are extrapolated linearly).
  std::vector<double> seasonal;   ///< Period-repeating indices.
  std::vector<double> remainder;  ///< What is left.
  std::size_t period = 1;
  DecompositionType type = DecompositionType::kAdditive;
};

/// Classical decomposition with the given season length (>= 2).
/// Requires at least two full seasons. Multiplicative requires strictly
/// positive data.
Result<Decomposition> Decompose(const TimeSeries& series, std::size_t period,
                                DecompositionType type =
                                    DecompositionType::kAdditive);

/// Box-Cox transform: lambda == 0 -> log(x), else (x^lambda - 1) / lambda.
/// Requires strictly positive data.
Result<std::vector<double>> BoxCox(const std::vector<double>& xs,
                                   double lambda);

/// Inverse Box-Cox transform.
std::vector<double> InverseBoxCox(const std::vector<double>& xs,
                                  double lambda);

/// Chooses the Box-Cox lambda from {-1, -0.5, 0, 0.5, 1} minimizing the
/// coefficient of variation of seasonal-block standard deviations (Guerrero
/// style profile on a coarse grid). Requires positive data and >= 2 blocks.
Result<double> SelectBoxCoxLambda(const std::vector<double>& xs,
                                  std::size_t period);

}  // namespace f2db

#endif  // F2DB_TS_DECOMPOSITION_H_
