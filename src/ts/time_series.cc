#include "ts/time_series.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace f2db {

Result<TimeSeries> TimeSeries::Create(std::vector<double> values,
                                      std::int64_t start_time) {
  TimeSeries out(std::move(values), start_time);
  F2DB_RETURN_IF_ERROR(out.ValidateFinite());
  return out;
}

Status TimeSeries::ValidateFinite() const {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (!std::isfinite(values_[i])) {
      return Status::InvalidArgument(
          "non-finite observation at index " + std::to_string(i) +
          " (time " + std::to_string(start_time_ + static_cast<std::int64_t>(i)) +
          ")");
    }
  }
  return Status::OK();
}

void TimeSeries::DropFront(std::size_t count) {
  count = std::min(count, values_.size());
  values_.erase(values_.begin(),
                values_.begin() + static_cast<std::ptrdiff_t>(count));
  start_time_ += static_cast<std::int64_t>(count);
}

double TimeSeries::Sum() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

double TimeSeries::Mean() const {
  if (values_.empty()) return 0.0;
  return Sum() / static_cast<double>(values_.size());
}

TimeSeries TimeSeries::Slice(std::size_t begin, std::size_t count) const {
  assert(begin <= values_.size());
  count = std::min(count, values_.size() - begin);
  std::vector<double> out(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                          values_.begin() +
                              static_cast<std::ptrdiff_t>(begin + count));
  return TimeSeries(std::move(out),
                    start_time_ + static_cast<std::int64_t>(begin));
}

TimeSeries TimeSeries::Tail(std::size_t count) const {
  count = std::min(count, values_.size());
  return Slice(values_.size() - count, count);
}

std::pair<TimeSeries, TimeSeries> TimeSeries::TrainTestSplit(
    double train_fraction) const {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  std::size_t train_count = static_cast<std::size_t>(
      train_fraction * static_cast<double>(values_.size()));
  if (values_.size() >= 2) {
    train_count = std::clamp<std::size_t>(train_count, 1, values_.size() - 1);
  }
  return {Head(train_count), Slice(train_count, values_.size() - train_count)};
}

Result<TimeSeries> TimeSeries::SumOf(
    const std::vector<const TimeSeries*>& series) {
  if (series.empty()) return Status::InvalidArgument("SumOf: no inputs");
  TimeSeries out = *series[0];
  for (std::size_t i = 1; i < series.size(); ++i) {
    F2DB_RETURN_IF_ERROR(out.AddInPlace(*series[i]));
  }
  return out;
}

Status TimeSeries::AddInPlace(const TimeSeries& other) {
  if (other.size() != size() || other.start_time() != start_time()) {
    return Status::InvalidArgument(
        "AddInPlace: series are not aligned (size " + std::to_string(size()) +
        " vs " + std::to_string(other.size()) + ")");
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += other.values_[i];
  }
  return Status::OK();
}

std::string TimeSeries::ToString() const {
  std::ostringstream out;
  out << "TimeSeries(t0=" << start_time_ << ", n=" << values_.size() << ", [";
  const std::size_t show = std::min<std::size_t>(values_.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    if (i > 0) out << ", ";
    out << values_[i];
  }
  if (values_.size() > show) out << ", ...";
  out << "])";
  return out.str();
}

}  // namespace f2db
