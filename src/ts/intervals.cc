#include "ts/intervals.h"

#include <cmath>

#include "math/stats.h"

namespace f2db {

Result<std::vector<ForecastInterval>> IntervalsFromMoments(
    const std::vector<double>& points, const std::vector<double>& variances,
    double confidence) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  if (points.size() != variances.size()) {
    return Status::InvalidArgument("points/variances size mismatch");
  }
  const double z = InverseNormalCdf(0.5 * (1.0 + confidence));
  std::vector<ForecastInterval> out(points.size());
  for (std::size_t h = 0; h < points.size(); ++h) {
    const double spread = z * std::sqrt(std::max(variances[h], 0.0));
    out[h] = {points[h] - spread, points[h], points[h] + spread};
  }
  return out;
}

Result<std::vector<ForecastInterval>> ForecastWithIntervals(
    const ForecastModel& model, std::size_t horizon, double confidence) {
  if (!model.is_fitted()) {
    return Status::FailedPrecondition("model is not fitted");
  }
  const std::vector<double> variances = model.ForecastVariance(horizon);
  if (variances.size() != horizon) {
    return Status::Unimplemented(
        "model does not provide forecast variances");
  }
  return IntervalsFromMoments(model.Forecast(horizon), variances, confidence);
}

}  // namespace f2db
