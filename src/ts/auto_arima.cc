#include "ts/auto_arima.h"

#include <cmath>
#include <limits>

#include "math/stats.h"

namespace f2db {
namespace {

std::vector<double> DifferenceOnce(const std::vector<double>& xs,
                                   std::size_t lag) {
  if (xs.size() <= lag) return {};
  std::vector<double> out(xs.size() - lag);
  for (std::size_t t = lag; t < xs.size(); ++t) out[t - lag] = xs[t] - xs[t - lag];
  return out;
}

}  // namespace

std::size_t SelectDifferencingOrder(const std::vector<double>& values,
                                    std::size_t max_d) {
  std::vector<double> current = values;
  std::size_t d = 0;
  double sd = StdDev(current);
  while (d < max_d) {
    const std::vector<double> next = DifferenceOnce(current, 1);
    if (next.size() < 8) break;
    const double next_sd = StdDev(next);
    // Differencing a stationary AR(1) with coefficient rho shrinks the
    // standard deviation by sqrt(2(1-rho)); requiring a reduction below
    // 0.5 corresponds to rho > 0.875, i.e. near-unit-root behaviour.
    if (next_sd >= 0.5 * sd) break;
    current = next;
    sd = next_sd;
    ++d;
  }
  return d;
}

std::size_t SelectSeasonalDifferencing(const std::vector<double>& values,
                                       std::size_t season,
                                       std::size_t max_sd) {
  if (season < 2 || max_sd == 0) return 0;
  if (values.size() < 3 * season) return 0;
  const std::vector<double> acf = Autocorrelation(values, season);
  return acf[season] > 0.5 ? 1 : 0;
}

Result<AutoArimaResult> AutoArima(const TimeSeries& history,
                                  const AutoArimaOptions& options) {
  if (history.size() < 16) {
    return Status::InvalidArgument("AutoArima: series too short");
  }
  // Non-finite observations would corrupt the differencing heuristics and
  // every candidate fit; reject them before the grid search starts.
  F2DB_RETURN_IF_ERROR(history.ValidateFinite());

  // Differencing orders by heuristic (AIC values are not comparable across
  // different differencing, so these are fixed before the grid search).
  const std::size_t d = SelectDifferencingOrder(history.values(), options.max_d);
  std::vector<double> d_differenced = history.values();
  for (std::size_t k = 0; k < d; ++k) {
    d_differenced = DifferenceOnce(d_differenced, 1);
  }
  const std::size_t sd = SelectSeasonalDifferencing(
      d_differenced, options.season, options.max_seasonal_d);

  AutoArimaResult result;
  result.aicc = std::numeric_limits<double>::max();

  const bool seasonal = options.season >= 2;
  const std::size_t max_sp = seasonal ? options.max_seasonal_p : 0;
  const std::size_t max_sq = seasonal ? options.max_seasonal_q : 0;

  for (std::size_t p = 0; p <= options.max_p; ++p) {
    for (std::size_t q = 0; q <= options.max_q; ++q) {
      for (std::size_t sp = 0; sp <= max_sp; ++sp) {
        for (std::size_t sq = 0; sq <= max_sq; ++sq) {
          if (p + q + sp + sq == 0 && d + sd == 0) continue;  // white noise
          ArimaOrder order;
          order.p = p;
          order.d = d;
          order.q = q;
          order.sp = sp;
          order.sd = sd;
          order.sq = sq;
          order.season = seasonal ? options.season : 1;
          auto model = std::make_unique<ArimaModel>(order);
          if (!model->Fit(history).ok()) continue;
          ++result.models_tried;

          const double n_w = static_cast<double>(
              history.size() - d - sd * (seasonal ? options.season : 0));
          const double k = static_cast<double>(order.NumCoefficients()) + 1.0;
          double aicc = model->aic();
          if (n_w - k - 1.0 > 0.0) {
            aicc += 2.0 * k * (k + 1.0) / (n_w - k - 1.0);
          }
          if (aicc < result.aicc) {
            result.aicc = aicc;
            result.order = order;
            result.model = std::move(model);
          }
        }
      }
    }
  }
  if (result.model == nullptr) {
    return Status::Internal("AutoArima: no candidate order could be fitted");
  }
  return result;
}

}  // namespace f2db
