#include "ts/seasonality.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

namespace f2db {
namespace {

// Removes an OLS linear trend.
std::vector<double> Detrend(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n < 3) return xs;
  // Closed-form simple regression on t = 0..n-1.
  const double nn = static_cast<double>(n);
  const double t_mean = (nn - 1.0) / 2.0;
  const double y_mean = Mean(xs);
  double num = 0.0;
  double denom = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double dt = static_cast<double>(t) - t_mean;
    num += dt * (xs[t] - y_mean);
    denom += dt * dt;
  }
  const double slope = denom > 0 ? num / denom : 0.0;
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = xs[t] - y_mean - slope * (static_cast<double>(t) - t_mean);
  }
  return out;
}

}  // namespace

SeasonalityResult DetectSeasonality(const TimeSeries& series,
                                    const SeasonalityOptions& options) {
  SeasonalityResult result;
  const std::size_t n = series.size();
  if (n < 8) return result;

  const std::vector<double> data =
      options.detrend ? Detrend(series.values()) : series.values();

  const std::size_t longest =
      std::min(options.max_period, n / 3 > 1 ? n / 3 : 1);
  std::vector<std::size_t> candidates = options.candidates;
  if (candidates.empty()) {
    for (std::size_t m = 2; m <= longest; ++m) candidates.push_back(m);
  }
  if (candidates.empty()) return result;

  const std::size_t max_lag =
      std::min(n - 1, *std::max_element(candidates.begin(), candidates.end()) + 1);
  const std::vector<double> acf = Autocorrelation(data, max_lag);
  const double noise_band = 1.96 / std::sqrt(static_cast<double>(n));

  double best = 0.0;
  std::size_t best_period = 1;
  for (std::size_t m : candidates) {
    if (m < 2 || m >= acf.size()) continue;
    const double value = acf[m];
    if (value < options.min_acf || value < noise_band) continue;
    // Local-maximum check: the seasonal lag must beat its neighbors, so a
    // slowly decaying ACF (trend remnant) does not masquerade as a season.
    const double left = acf[m - 1];
    const double right = m + 1 < acf.size() ? acf[m + 1] : -1.0;
    if (value < left || value < right) continue;
    if (value > best) {
      best = value;
      best_period = m;
    }
  }
  result.period = best_period;
  result.strength = best_period > 1 ? best : 0.0;
  return result;
}

}  // namespace f2db
