// Training-history length selection.
//
// Long histories are not always better: after level or regime shifts, a
// recent window can beat the full history. Ge & Zdonik's skip-list approach
// (cited in the paper's related work, VLDB'08) addresses exactly this for
// very long series; this module provides the holdout-based equivalent:
// candidate suffix lengths are scored by one-step rolling error on a
// validation tail, and the best window is returned for model fitting (used
// e.g. before the engine's lazy re-estimation).

#ifndef F2DB_TS_HISTORY_SELECTION_H_
#define F2DB_TS_HISTORY_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "ts/model_factory.h"
#include "ts/time_series.h"

namespace f2db {

/// Options for history-length selection.
struct HistorySelectionOptions {
  /// Candidate suffix lengths; empty = geometric ladder {n, n/2, n/4, ...}
  /// down to min_length.
  std::vector<std::size_t> candidate_lengths;
  /// Smallest window considered (and the ladder floor).
  std::size_t min_length = 16;
  /// Observations held out (from the very end) for scoring.
  std::size_t validation_length = 8;
};

/// Chosen window plus its validation score.
struct HistorySelection {
  /// Suffix length to train on (includes the validation part).
  std::size_t length = 0;
  double validation_smape = 1.0;
  std::size_t candidates_tried = 0;
};

/// Scores each candidate suffix by fitting on suffix-minus-validation and
/// forecasting the validation tail; returns the best suffix length.
Result<HistorySelection> SelectHistoryLength(
    const TimeSeries& series, const ModelFactory& factory,
    const HistorySelectionOptions& options = {});

}  // namespace f2db

#endif  // F2DB_TS_HISTORY_SELECTION_H_
