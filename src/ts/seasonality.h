// Season length detection.
//
// The paper sets the smoothing seasonality "according to the granularity
// of the data" (Section VI-A) — a human decision. This module automates it
// for unlabeled series: candidate periods are scored by the autocorrelation
// at the seasonal lag, with local-maximum and significance checks, so
// AutoSelectModel / the advisor can run without a season hint.

#ifndef F2DB_TS_SEASONALITY_H_
#define F2DB_TS_SEASONALITY_H_

#include <cstddef>
#include <vector>

#include "ts/time_series.h"

namespace f2db {

/// Options for season detection.
struct SeasonalityOptions {
  /// Candidate periods to test; empty = all of 2..max_period.
  std::vector<std::size_t> candidates;
  /// Upper bound when candidates is empty (also bounded by size/3).
  std::size_t max_period = 52;
  /// Minimum ACF value at the seasonal lag to call it significant; the
  /// classical 1.96/sqrt(n) white-noise band is applied on top.
  double min_acf = 0.3;
  /// Remove a linear trend before computing the ACF (recommended; trends
  /// inflate all autocorrelations).
  bool detrend = true;
};

/// Detected season: the best period and its diagnostic score.
struct SeasonalityResult {
  /// 1 when no significant seasonality was found.
  std::size_t period = 1;
  /// ACF value at the detected seasonal lag (0 when period == 1).
  double strength = 0.0;
};

/// Detects the dominant season length of `series`.
SeasonalityResult DetectSeasonality(const TimeSeries& series,
                                    const SeasonalityOptions& options = {});

}  // namespace f2db

#endif  // F2DB_TS_SEASONALITY_H_
