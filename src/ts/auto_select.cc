#include "ts/auto_select.h"

#include <limits>

#include "ts/accuracy.h"
#include "ts/arima.h"
#include "ts/exponential_smoothing.h"
#include "ts/naive_models.h"
#include "ts/theta.h"

namespace f2db {
namespace {

// Builds the candidate set (unfitted) for the given options.
std::vector<std::unique_ptr<ForecastModel>> BuildCandidates(
    const AutoSelectOptions& options) {
  std::vector<std::unique_ptr<ForecastModel>> out;
  out.push_back(std::make_unique<MeanModel>());
  out.push_back(std::make_unique<DriftModel>());
  out.push_back(ExponentialSmoothingModel::Ses());
  out.push_back(ExponentialSmoothingModel::Holt(/*damped=*/false));
  out.push_back(std::make_unique<ThetaModel>(options.period));
  if (options.period >= 2) {
    out.push_back(std::make_unique<SeasonalNaiveModel>(options.period));
    out.push_back(ExponentialSmoothingModel::HoltWintersAdditive(options.period));
    out.push_back(
        ExponentialSmoothingModel::HoltWintersMultiplicative(options.period));
  }
  if (options.include_arima) {
    ArimaOrder order;
    order.p = 1;
    order.d = 1;
    order.q = 1;
    out.push_back(std::make_unique<ArimaModel>(order));
    if (options.period >= 2) {
      ArimaOrder seasonal;
      seasonal.p = 0;
      seasonal.d = 1;
      seasonal.q = 1;
      seasonal.sp = 0;
      seasonal.sd = 1;
      seasonal.sq = 1;
      seasonal.season = options.period;
      out.push_back(std::make_unique<ArimaModel>(seasonal));
    }
  }
  return out;
}

}  // namespace

Result<AutoSelection> AutoSelectModel(const TimeSeries& history,
                                      const AutoSelectOptions& options) {
  if (history.size() < 4) {
    return Status::InvalidArgument("AutoSelect: series too short");
  }
  const auto [train, test] = history.TrainTestSplit(options.train_fraction);

  AutoSelection best;
  best.holdout_smape = std::numeric_limits<double>::max();
  for (auto& candidate : BuildCandidates(options)) {
    if (!candidate->Fit(train).ok()) continue;
    const std::vector<double> forecast = candidate->Forecast(test.size());
    const double error = Smape(test.values(), forecast);
    if (error < best.holdout_smape) {
      best.holdout_smape = error;
      best.chosen_type = candidate->type();
      best.model = std::move(candidate);
    }
  }
  if (best.model == nullptr) {
    return Status::Internal("AutoSelect: no candidate could be fitted");
  }
  // Refit the winner on the full history.
  F2DB_RETURN_IF_ERROR(best.model->Fit(history));
  return best;
}

}  // namespace f2db
