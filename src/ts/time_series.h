// TimeSeries: an equidistant sequence of measure values.
//
// In the paper's data model (Section II-A) a base time series is the ordered
// sequence of measure values sharing identical values in all categorical
// dimensions; aggregated time series arise from SUM aggregation over
// categorical dimensions. Both are represented by this container. The time
// axis is a dense integer index (period number); calendar mapping is the
// caller's concern.

#ifndef F2DB_TS_TIME_SERIES_H_
#define F2DB_TS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace f2db {

/// An equidistant univariate time series with a dense integer time axis.
class TimeSeries {
 public:
  /// Empty series starting at time 0.
  TimeSeries() = default;

  /// Series over `values` with the first observation at `start_time`.
  explicit TimeSeries(std::vector<double> values, std::int64_t start_time = 0)
      : start_time_(start_time), values_(std::move(values)) {}

  /// Validated construction: rejects NaN/Inf observations with a clear
  /// InvalidArgument naming the offending index. Ingestion boundaries
  /// (engine inserts, CSV loads) go through this; internal trusted code may
  /// keep using the unchecked constructor.
  static Result<TimeSeries> Create(std::vector<double> values,
                                   std::int64_t start_time = 0);

  /// OK when every observation is finite; InvalidArgument naming the first
  /// non-finite index otherwise.
  Status ValidateFinite() const;

  /// Number of observations.
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Time index of the first observation.
  std::int64_t start_time() const { return start_time_; }
  /// Time index one past the last observation.
  std::int64_t end_time() const {
    return start_time_ + static_cast<std::int64_t>(values_.size());
  }

  /// Observation by position (0-based), not by time index.
  double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }

  /// Observation at absolute time index t; requires t in range.
  double AtTime(std::int64_t t) const {
    return values_[static_cast<std::size_t>(t - start_time_)];
  }

  const std::vector<double>& values() const { return values_; }

  /// Appends one observation at the next time index.
  void Append(double value) { values_.push_back(value); }

  /// Drops the oldest `count` observations (clamped to size()) and moves
  /// start_time forward accordingly — the retention primitive: the series
  /// keeps its identity and time axis but forgets its oldest history.
  void DropFront(std::size_t count);

  /// Sum over the whole history (the h_s of Eq. 2 in the paper).
  double Sum() const;

  /// Arithmetic mean of the history.
  double Mean() const;

  /// Sub-series of `count` observations starting at position `begin`.
  TimeSeries Slice(std::size_t begin, std::size_t count) const;

  /// First `count` observations.
  TimeSeries Head(std::size_t count) const { return Slice(0, count); }

  /// Last `count` observations.
  TimeSeries Tail(std::size_t count) const;

  /// Splits into (train, test) where train holds `train_fraction` of the
  /// observations (at least one observation in each part when size >= 2).
  std::pair<TimeSeries, TimeSeries> TrainTestSplit(double train_fraction) const;

  /// Element-wise sum of `series` (all equal length & start). Implements the
  /// SUM aggregation function of the paper's data model.
  static Result<TimeSeries> SumOf(const std::vector<const TimeSeries*>& series);

  /// Element-wise in-place addition; requires matching length & start.
  Status AddInPlace(const TimeSeries& other);

  /// Compact rendering for diagnostics.
  std::string ToString() const;

 private:
  std::int64_t start_time_ = 0;
  std::vector<double> values_;
};

}  // namespace f2db

#endif  // F2DB_TS_TIME_SERIES_H_
