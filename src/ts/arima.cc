#include "ts/arima.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "math/optimizer.h"

namespace f2db {
namespace {

// Maximum observations kept after RestoreState; recursions never look
// further back than the expanded polynomial orders plus the differencing
// window, so a bounded tail is sufficient.
constexpr std::size_t kMinTail = 4;

double SafeTanh(double x) { return std::tanh(x); }

}  // namespace

std::vector<double> PacfToArCoefficients(const std::vector<double>& pacf) {
  const std::size_t p = pacf.size();
  std::vector<double> phi(p, 0.0);
  std::vector<double> prev;
  for (std::size_t k = 1; k <= p; ++k) {
    prev = phi;
    phi[k - 1] = pacf[k - 1];
    for (std::size_t j = 1; j < k; ++j) {
      phi[j - 1] = prev[j - 1] - pacf[k - 1] * prev[k - 1 - j];
    }
  }
  return phi;
}

ArimaModel::ArimaModel(ArimaOrder order) : order_(order) {
  if (order_.sp == 0 && order_.sq == 0 && order_.sd == 0) order_.season = 1;
  phi_.assign(order_.p, 0.0);
  theta_.assign(order_.q, 0.0);
  seasonal_phi_.assign(order_.sp, 0.0);
  seasonal_theta_.assign(order_.sq, 0.0);
  ExpandPolynomials();
}

void ArimaModel::ExpandPolynomials() {
  const std::size_t s = order_.season;
  // AR: (1 - sum phi_i B^i)(1 - sum PHI_j B^{js}) expanded so that
  //   z_t = sum_k expanded_ar_[k-1] z_{t-k} + ...
  const std::size_t ar_len = order_.p + order_.sp * s;
  expanded_ar_.assign(ar_len, 0.0);
  for (std::size_t i = 1; i <= order_.p; ++i) {
    expanded_ar_[i - 1] += phi_[i - 1];
  }
  for (std::size_t j = 1; j <= order_.sp; ++j) {
    expanded_ar_[j * s - 1] += seasonal_phi_[j - 1];
    for (std::size_t i = 1; i <= order_.p; ++i) {
      expanded_ar_[j * s + i - 1] -= seasonal_phi_[j - 1] * phi_[i - 1];
    }
  }
  // MA: (1 + sum theta_i B^i)(1 + sum THETA_j B^{js}), so that
  //   z_t = e_t + sum_k expanded_ma_[k-1] e_{t-k} + AR part.
  const std::size_t ma_len = order_.q + order_.sq * s;
  expanded_ma_.assign(ma_len, 0.0);
  for (std::size_t i = 1; i <= order_.q; ++i) {
    expanded_ma_[i - 1] += theta_[i - 1];
  }
  for (std::size_t j = 1; j <= order_.sq; ++j) {
    expanded_ma_[j * s - 1] += seasonal_theta_[j - 1];
    for (std::size_t i = 1; i <= order_.q; ++i) {
      expanded_ma_[j * s + i - 1] += seasonal_theta_[j - 1] * theta_[i - 1];
    }
  }
}

std::vector<double> ArimaModel::Difference(
    const std::vector<double>& raw) const {
  std::vector<double> out = raw;
  const std::size_t s = order_.season;
  for (std::size_t k = 0; k < order_.sd; ++k) {
    if (out.size() <= s) return {};
    std::vector<double> next(out.size() - s);
    for (std::size_t t = s; t < out.size(); ++t) next[t - s] = out[t] - out[t - s];
    out = std::move(next);
  }
  for (std::size_t k = 0; k < order_.d; ++k) {
    if (out.size() <= 1) return {};
    std::vector<double> next(out.size() - 1);
    for (std::size_t t = 1; t < out.size(); ++t) next[t - 1] = out[t] - out[t - 1];
    out = std::move(next);
  }
  return out;
}

double ArimaModel::ConditionalSse(const std::vector<double>& z,
                                  std::vector<double>* errors) const {
  const std::size_t n = z.size();
  const std::size_t ar_len = expanded_ar_.size();
  const std::size_t ma_len = expanded_ma_.size();
  std::vector<double> e(n, 0.0);
  double sse = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    double pred = 0.0;
    for (std::size_t i = 1; i <= ar_len && i <= t; ++i) {
      pred += expanded_ar_[i - 1] * z[t - i];
    }
    for (std::size_t j = 1; j <= ma_len && j <= t; ++j) {
      pred += expanded_ma_[j - 1] * e[t - j];
    }
    e[t] = z[t] - pred;
    if (t >= ar_len) {  // condition on the first ar_len observations
      sse += e[t] * e[t];
      ++count;
    }
  }
  if (errors != nullptr) *errors = std::move(e);
  if (count == 0) return std::numeric_limits<double>::max();
  return sse;
}

Status ArimaModel::Fit(const TimeSeries& history) {
  F2DB_INJECT_FAILPOINT(kFailpointArimaFit);
  if ((order_.sp > 0 || order_.sq > 0 || order_.sd > 0) && order_.season < 2) {
    return Status::InvalidArgument("ARIMA: seasonal orders require season >= 2");
  }
  // A single NaN/Inf observation poisons the CSS recursion and every
  // forecast downstream; reject it up front instead of fitting garbage.
  F2DB_RETURN_IF_ERROR(history.ValidateFinite());
  raw_ = history.values();
  const std::vector<double> w = Difference(raw_);
  const std::size_t ar_len = order_.p + order_.sp * order_.season;
  const std::size_t ma_len = order_.q + order_.sq * order_.season;
  const std::size_t min_obs = ar_len + ma_len + 5;
  if (w.size() < min_obs) {
    return Status::InvalidArgument(
        "ARIMA: series too short after differencing (" +
        std::to_string(w.size()) + " < " + std::to_string(min_obs) + ")");
  }

  // Demean the differenced series; mu is estimated by the sample mean.
  double mean = 0.0;
  for (double v : w) mean += v;
  mean /= static_cast<double>(w.size());
  mu_ = mean;
  std::vector<double> z(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) z[i] = w[i] - mu_;

  const std::size_t dim = order_.NumCoefficients();
  if (dim > 0) {
    // Unconstrained parameters map through tanh to PACFs, which map to
    // stationary AR (invertible MA) coefficients.
    auto apply = [&](const std::vector<double>& x) {
      std::size_t idx = 0;
      auto take = [&](std::size_t count) {
        std::vector<double> pacf(count);
        for (std::size_t i = 0; i < count; ++i) {
          pacf[i] = 0.98 * SafeTanh(x[idx++]);
        }
        return PacfToArCoefficients(pacf);
      };
      phi_ = take(order_.p);
      theta_ = take(order_.q);
      seasonal_phi_ = take(order_.sp);
      seasonal_theta_ = take(order_.sq);
      ExpandPolynomials();
    };
    Objective objective = [&](const std::vector<double>& x) {
      apply(x);
      return ConditionalSse(z, nullptr);
    };
    OptimizerOptions options;
    options.max_evaluations = 300 * dim;
    options.tolerance = 1e-9;
    const std::vector<double> x0(dim, 0.0);
    const OptimizationResult best = NelderMead(objective, x0, Bounds{}, options);
    // Same contract as the ETS fitter: a search that never reached a finite
    // objective is a transient estimation failure, not a usable model.
    if (!(best.value < std::numeric_limits<double>::max())) {
      return Status::Unavailable(
          "ARIMA: optimizer did not reach a finite objective");
    }
    apply(best.x);
  }

  const double sse = ConditionalSse(z, &errors_);
  z_ = std::move(z);
  const double n_eff =
      static_cast<double>(z_.size() > ar_len ? z_.size() - ar_len : 1);
  sigma2_ = std::max(sse / n_eff, 0.0);
  const double sigma2 = std::max(sigma2_, 1e-300);
  aic_ = n_eff * std::log(sigma2) +
         2.0 * (static_cast<double>(dim) + 1.0);

  // One-step in-sample fit on the original scale: y_t - e_t (differencing
  // uses past actuals, so the innovation carries over linearly).
  fitted_values_ = raw_;
  const std::size_t offset = raw_.size() - z_.size();
  for (std::size_t t = 0; t < z_.size(); ++t) {
    fitted_values_[offset + t] = raw_[offset + t] - errors_[t];
  }

  fitted_ = true;
  return Status::OK();
}

std::vector<double> ArimaModel::Forecast(std::size_t horizon) const {
  assert(fitted_);
  const std::size_t ar_len = expanded_ar_.size();
  const std::size_t ma_len = expanded_ma_.size();
  const std::size_t n = z_.size();

  // Forecast the demeaned differenced series.
  std::vector<double> future_z(horizon, 0.0);
  auto z_at = [&](std::ptrdiff_t t) -> double {
    if (t < 0) return 0.0;
    if (t < static_cast<std::ptrdiff_t>(n)) return z_[static_cast<std::size_t>(t)];
    return future_z[static_cast<std::size_t>(t) - n];
  };
  auto e_at = [&](std::ptrdiff_t t) -> double {
    if (t < 0 || t >= static_cast<std::ptrdiff_t>(n)) return 0.0;
    return errors_[static_cast<std::size_t>(t)];
  };
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::ptrdiff_t t = static_cast<std::ptrdiff_t>(n + h);
    double pred = 0.0;
    for (std::size_t i = 1; i <= ar_len; ++i) {
      pred += expanded_ar_[i - 1] * z_at(t - static_cast<std::ptrdiff_t>(i));
    }
    for (std::size_t j = 1; j <= ma_len; ++j) {
      pred += expanded_ma_[j - 1] * e_at(t - static_cast<std::ptrdiff_t>(j));
    }
    future_z[h] = pred;
  }

  // Undo the demeaning, then integrate the differences back to the
  // original scale. w = Delta^d Delta_s^D y; invert regular diffs first.
  std::vector<double> future_w(horizon);
  for (std::size_t h = 0; h < horizon; ++h) future_w[h] = future_z[h] + mu_;

  // v = Delta_s^D y (after removing the d regular differences).
  // Build the "v tails" for each regular-integration level.
  const std::size_t s = order_.season;
  std::vector<double> v_full = raw_;
  for (std::size_t k = 0; k < order_.sd; ++k) {
    std::vector<double> next(v_full.size() > s ? v_full.size() - s : 0);
    for (std::size_t t = s; t < v_full.size(); ++t) {
      next[t - s] = v_full[t] - v_full[t - s];
    }
    v_full = std::move(next);
  }
  // levels[0] = v (seasonally differenced only), levels[k] = Delta^k v.
  std::vector<std::vector<double>> levels;
  levels.push_back(v_full);
  for (std::size_t k = 0; k < order_.d; ++k) {
    const std::vector<double>& cur = levels.back();
    std::vector<double> next(cur.size() > 1 ? cur.size() - 1 : 0);
    for (std::size_t t = 1; t < cur.size(); ++t) next[t - 1] = cur[t] - cur[t - 1];
    levels.push_back(std::move(next));
  }

  // Integrate the d regular differences.
  std::vector<double> current = future_w;
  for (std::size_t k = order_.d; k-- > 0;) {
    const std::vector<double>& base_level = levels[k];
    double last = base_level.empty() ? 0.0 : base_level.back();
    for (double& v : current) {
      last += v;
      v = last;
    }
  }

  // Integrate the D seasonal differences. Reconstruct per level of
  // seasonal integration, starting from v forecasts up to raw y.
  std::vector<std::vector<double>> season_levels;  // level 0 = raw y
  season_levels.push_back(raw_);
  {
    std::vector<double> tmp = raw_;
    for (std::size_t k = 0; k < order_.sd; ++k) {
      std::vector<double> next(tmp.size() > s ? tmp.size() - s : 0);
      for (std::size_t t = s; t < tmp.size(); ++t) next[t - s] = tmp[t] - tmp[t - s];
      tmp = std::move(next);
      season_levels.push_back(tmp);
    }
  }
  for (std::size_t k = order_.sd; k-- > 0;) {
    const std::vector<double>& base_level = season_levels[k];
    std::vector<double> integrated(horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      // y_{n+h} = w_{n+h} + y_{n+h-s}; the lagged value is historical when
      // h < s and a previously integrated forecast otherwise.
      double lagged = 0.0;
      if (h < s) {
        if (base_level.size() >= s - h) {
          lagged = base_level[base_level.size() - (s - h)];
        } else if (!base_level.empty()) {
          lagged = base_level.back();
        }
      } else {
        lagged = integrated[h - s];
      }
      integrated[h] = current[h] + lagged;
    }
    current = std::move(integrated);
  }
  return current;
}

void ArimaModel::Update(double value) {
  raw_.push_back(value);
  // New differenced value needs the last d + D*s raw observations.
  const std::size_t s = order_.season;
  const std::size_t need = order_.d + order_.sd * s + 1;
  if (raw_.size() < need) {
    return;  // not enough history yet to form a differenced value
  }
  // Compute the newest w by differencing the tail.
  std::vector<double> tail(raw_.end() - static_cast<std::ptrdiff_t>(
                                            std::min(raw_.size(), need + s)),
                           raw_.end());
  const std::vector<double> w_tail = Difference(tail);
  if (w_tail.empty()) return;
  const double z_new = w_tail.back() - mu_;

  // New innovation from the recursion.
  const std::size_t ar_len = expanded_ar_.size();
  const std::size_t ma_len = expanded_ma_.size();
  const std::size_t t = z_.size();
  double pred = 0.0;
  for (std::size_t i = 1; i <= ar_len && i <= t; ++i) {
    pred += expanded_ar_[i - 1] * z_[t - i];
  }
  for (std::size_t j = 1; j <= ma_len && j <= t; ++j) {
    pred += expanded_ma_[j - 1] * errors_[t - j];
  }
  z_.push_back(z_new);
  errors_.push_back(z_new - pred);
}

std::unique_ptr<ForecastModel> ArimaModel::Clone() const {
  return std::make_unique<ArimaModel>(*this);
}

std::vector<double> ArimaModel::ForecastVariance(std::size_t horizon) const {
  // Psi-weight recursion on the full (integrated) AR polynomial:
  //   Phi(B) = A(B) * (1-B)^d * (1-B^s)^D, with A(B) the expanded
  //   stationary AR polynomial. Then
  //   psi_0 = 1,  psi_k = sum_i c_i psi_{k-i} + theta_k,
  //   var_h = sigma2 * sum_{k<h} psi_k^2.
  std::vector<double> poly{1.0};
  for (std::size_t i = 0; i < expanded_ar_.size(); ++i) {
    poly.push_back(-expanded_ar_[i]);
  }
  auto multiply_by_one_minus_b_lag = [&poly](std::size_t lag) {
    std::vector<double> next(poly.size() + lag, 0.0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i] += poly[i];
      next[i + lag] -= poly[i];
    }
    poly = std::move(next);
  };
  for (std::size_t k = 0; k < order_.d; ++k) multiply_by_one_minus_b_lag(1);
  for (std::size_t k = 0; k < order_.sd; ++k) {
    multiply_by_one_minus_b_lag(order_.season);
  }
  // c_i = -poly[i] for i >= 1.
  std::vector<double> psi(horizon, 0.0);
  std::vector<double> out(horizon, 0.0);
  double cumulative = 0.0;
  for (std::size_t k = 0; k < horizon; ++k) {
    double value = (k == 0) ? 1.0 : 0.0;
    if (k >= 1) {
      for (std::size_t i = 1; i < poly.size() && i <= k; ++i) {
        value += -poly[i] * psi[k - i];
      }
      if (k <= expanded_ma_.size()) value += expanded_ma_[k - 1];
    }
    psi[k] = value;
    cumulative += value * value;
    out[k] = sigma2_ * cumulative;
  }
  return out;
}

std::vector<double> ArimaModel::parameters() const {
  std::vector<double> out{mu_};
  out.insert(out.end(), phi_.begin(), phi_.end());
  out.insert(out.end(), theta_.begin(), theta_.end());
  out.insert(out.end(), seasonal_phi_.begin(), seasonal_phi_.end());
  out.insert(out.end(), seasonal_theta_.begin(), seasonal_theta_.end());
  return out;
}

std::vector<double> ArimaModel::SaveState() const {
  std::vector<double> out;
  out.push_back(static_cast<double>(order_.p));
  out.push_back(static_cast<double>(order_.d));
  out.push_back(static_cast<double>(order_.q));
  out.push_back(static_cast<double>(order_.sp));
  out.push_back(static_cast<double>(order_.sd));
  out.push_back(static_cast<double>(order_.sq));
  out.push_back(static_cast<double>(order_.season));
  out.push_back(mu_);
  out.push_back(aic_);
  out.push_back(sigma2_);
  for (const auto* group : {&phi_, &theta_, &seasonal_phi_, &seasonal_theta_}) {
    out.insert(out.end(), group->begin(), group->end());
  }
  // Bounded tails are sufficient for Forecast and Update.
  const std::size_t s = order_.season;
  const std::size_t raw_tail =
      std::min(raw_.size(),
               std::max(kMinTail, order_.d + (order_.sd + 1) * s + 2));
  const std::size_t z_tail =
      std::min(z_.size(), std::max(kMinTail, expanded_ar_.size() + 1));
  const std::size_t e_tail =
      std::min(errors_.size(), std::max(kMinTail, expanded_ma_.size() + 1));
  out.push_back(static_cast<double>(raw_tail));
  out.push_back(static_cast<double>(z_tail));
  out.push_back(static_cast<double>(e_tail));
  out.insert(out.end(), raw_.end() - static_cast<std::ptrdiff_t>(raw_tail),
             raw_.end());
  out.insert(out.end(), z_.end() - static_cast<std::ptrdiff_t>(z_tail),
             z_.end());
  out.insert(out.end(), errors_.end() - static_cast<std::ptrdiff_t>(e_tail),
             errors_.end());
  return out;
}

Status ArimaModel::RestoreState(const std::vector<double>& state) {
  if (state.size() < 13) return Status::InvalidArgument("ARIMA: bad state");
  std::size_t idx = 0;
  ArimaOrder order;
  order.p = static_cast<std::size_t>(state[idx++]);
  order.d = static_cast<std::size_t>(state[idx++]);
  order.q = static_cast<std::size_t>(state[idx++]);
  order.sp = static_cast<std::size_t>(state[idx++]);
  order.sd = static_cast<std::size_t>(state[idx++]);
  order.sq = static_cast<std::size_t>(state[idx++]);
  order.season = static_cast<std::size_t>(state[idx++]);
  order_ = order;
  mu_ = state[idx++];
  aic_ = state[idx++];
  sigma2_ = state[idx++];
  auto take = [&](std::size_t count) -> Result<std::vector<double>> {
    if (idx + count > state.size()) {
      return Status::InvalidArgument("ARIMA: truncated state");
    }
    std::vector<double> out(state.begin() + static_cast<std::ptrdiff_t>(idx),
                            state.begin() +
                                static_cast<std::ptrdiff_t>(idx + count));
    idx += count;
    return out;
  };
  F2DB_ASSIGN_OR_RETURN(phi_, take(order_.p));
  F2DB_ASSIGN_OR_RETURN(theta_, take(order_.q));
  F2DB_ASSIGN_OR_RETURN(seasonal_phi_, take(order_.sp));
  F2DB_ASSIGN_OR_RETURN(seasonal_theta_, take(order_.sq));
  ExpandPolynomials();
  if (idx + 3 > state.size()) return Status::InvalidArgument("ARIMA: bad tails");
  const std::size_t raw_tail = static_cast<std::size_t>(state[idx++]);
  const std::size_t z_tail = static_cast<std::size_t>(state[idx++]);
  const std::size_t e_tail = static_cast<std::size_t>(state[idx++]);
  F2DB_ASSIGN_OR_RETURN(raw_, take(raw_tail));
  F2DB_ASSIGN_OR_RETURN(z_, take(z_tail));
  F2DB_ASSIGN_OR_RETURN(errors_, take(e_tail));
  if (idx != state.size()) return Status::InvalidArgument("ARIMA: extra state");
  fitted_values_.clear();
  fitted_ = true;
  return Status::OK();
}

}  // namespace f2db
