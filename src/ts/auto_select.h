// Automatic forecast-model selection on a holdout split.
//
// Fits a candidate set (naive baselines, smoothing family, ARIMA) on the
// first part of the history, scores one-step-matched SMAPE on the held-out
// tail, and refits the winner on the full history. The paper performs this
// kind of empirical model analysis once per data set (Section VI-A); this
// module makes it available per series.

#ifndef F2DB_TS_AUTO_SELECT_H_
#define F2DB_TS_AUTO_SELECT_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "ts/model.h"

namespace f2db {

/// Options for automatic model selection.
struct AutoSelectOptions {
  /// Season length hint (>= 2 enables the seasonal candidates).
  std::size_t period = 1;
  /// Fraction of the history used for fitting candidates.
  double train_fraction = 0.8;
  /// Include ARIMA candidates (more expensive).
  bool include_arima = true;
};

/// Result of automatic selection: the chosen model fitted on the whole
/// history plus the holdout error that selected it.
struct AutoSelection {
  std::unique_ptr<ForecastModel> model;
  double holdout_smape = 1.0;
  ModelType chosen_type = ModelType::kMean;
};

/// Selects and fits the best model for `history`.
Result<AutoSelection> AutoSelectModel(const TimeSeries& history,
                                      const AutoSelectOptions& options = {});

}  // namespace f2db

#endif  // F2DB_TS_AUTO_SELECT_H_
