// Automatic ARIMA order selection (Box–Jenkins automated).
//
// Chooses the differencing orders by variance-reduction / seasonal-strength
// heuristics, then grid-searches the AR/MA orders minimizing the corrected
// Akaike criterion (AICc) of the CSS fit — the automated counterpart of the
// manual Box–Jenkins identification step the paper's model-creation
// pipeline references (Box, Jenkins & Reinsel).

#ifndef F2DB_TS_AUTO_ARIMA_H_
#define F2DB_TS_AUTO_ARIMA_H_

#include <memory>

#include "common/status.h"
#include "ts/arima.h"

namespace f2db {

/// Search space of AutoArima.
struct AutoArimaOptions {
  std::size_t max_p = 3;
  std::size_t max_q = 3;
  std::size_t max_d = 2;
  /// Season length; >= 2 enables the seasonal component search.
  std::size_t season = 1;
  std::size_t max_seasonal_p = 1;
  std::size_t max_seasonal_q = 1;
  std::size_t max_seasonal_d = 1;
};

/// Outcome of the order search.
struct AutoArimaResult {
  std::unique_ptr<ArimaModel> model;  ///< Fitted on the full history.
  ArimaOrder order;
  double aicc = 0.0;
  std::size_t models_tried = 0;
};

/// Selects and fits the best ARIMA order for `history`.
Result<AutoArimaResult> AutoArima(const TimeSeries& history,
                                  const AutoArimaOptions& options = {});

/// Heuristic regular differencing order: difference while the standard
/// deviation halves (near-unit-root criterion), up to max_d. Exposed for
/// tests.
std::size_t SelectDifferencingOrder(const std::vector<double>& values,
                                    std::size_t max_d);

/// Heuristic seasonal differencing: 1 when the ACF at the seasonal lag of
/// the d-differenced series exceeds 0.5 (and max_sd > 0). Exposed for tests.
std::size_t SelectSeasonalDifferencing(const std::vector<double>& values,
                                       std::size_t season, std::size_t max_sd);

}  // namespace f2db

#endif  // F2DB_TS_AUTO_ARIMA_H_
