// (Seasonal) ARIMA models estimated by conditional sum of squares.
//
// ARIMA(p,d,q)(P,D,Q)_s in the Box–Jenkins sense (the paper cites Box,
// Jenkins & Reinsel for its model-creation pipeline and generates its
// synthetic data from a SARIMA process). Estimation minimizes the
// conditional sum of squares of the innovations with Nelder–Mead; AR and MA
// coefficients are reparametrized through partial autocorrelations
// (Monahan's transform) so that every optimizer iterate is stationary and
// invertible.

#ifndef F2DB_TS_ARIMA_H_
#define F2DB_TS_ARIMA_H_

#include <memory>
#include <vector>

#include "common/failpoint.h"
#include "ts/model.h"

namespace f2db {

/// Fault-injection site: ArimaModel::Fit fails with kUnavailable before
/// touching any state (used to exercise the engine's re-estimation
/// fallback ladder).
F2DB_DEFINE_FAILPOINT(kFailpointArimaFit, "ts.arima_fit")

/// Orders of a seasonal ARIMA model.
struct ArimaOrder {
  std::size_t p = 1;  ///< Non-seasonal AR order.
  std::size_t d = 0;  ///< Non-seasonal differencing.
  std::size_t q = 1;  ///< Non-seasonal MA order.
  std::size_t sp = 0;      ///< Seasonal AR order (P).
  std::size_t sd = 0;      ///< Seasonal differencing (D).
  std::size_t sq = 0;      ///< Seasonal MA order (Q).
  std::size_t season = 1;  ///< Season length s (>= 2 when seasonal parts set).

  /// Total number of estimated coefficients (excluding the mean).
  std::size_t NumCoefficients() const { return p + q + sp + sq; }
};

/// Maps partial autocorrelations in (-1, 1) to the coefficients of a
/// stationary AR polynomial (Durbin–Levinson step of Monahan's transform).
/// Exposed for tests.
std::vector<double> PacfToArCoefficients(const std::vector<double>& pacf);

/// Seasonal ARIMA forecast model.
class ArimaModel final : public ForecastModel {
 public:
  explicit ArimaModel(ArimaOrder order);

  Status Fit(const TimeSeries& history) override;
  std::vector<double> Forecast(std::size_t horizon) const override;
  void Update(double value) override;
  std::unique_ptr<ForecastModel> Clone() const override;
  ModelType type() const override { return ModelType::kArima; }
  std::size_t num_parameters() const override {
    return order_.NumCoefficients() + 1;  // + mean
  }
  std::vector<double> parameters() const override;
  bool is_fitted() const override { return fitted_; }
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;
  std::vector<double> FittedValues() const override { return fitted_values_; }
  std::vector<double> ForecastVariance(std::size_t horizon) const override;
  double residual_variance() const override { return sigma2_; }

  const ArimaOrder& order() const { return order_; }
  /// Estimated mean of the differenced series.
  double mu() const { return mu_; }
  /// Non-seasonal AR / MA and seasonal AR / MA coefficients.
  const std::vector<double>& phi() const { return phi_; }
  const std::vector<double>& theta() const { return theta_; }
  const std::vector<double>& seasonal_phi() const { return seasonal_phi_; }
  const std::vector<double>& seasonal_theta() const { return seasonal_theta_; }
  /// Akaike information criterion of the CSS fit.
  double aic() const { return aic_; }

 private:
  /// Rebuilds the expanded AR/MA polynomials from the coefficient groups.
  void ExpandPolynomials();

  /// Applies d regular and D seasonal differences to `raw`.
  std::vector<double> Difference(const std::vector<double>& raw) const;

  /// Computes innovations over a demeaned differenced series.
  /// Returns the conditional sum of squares; fills `errors` when non-null.
  double ConditionalSse(const std::vector<double>& z,
                        std::vector<double>* errors) const;

  ArimaOrder order_;
  bool fitted_ = false;
  double mu_ = 0.0;
  std::vector<double> phi_, theta_, seasonal_phi_, seasonal_theta_;
  std::vector<double> expanded_ar_, expanded_ma_;  ///< Multiplied polynomials.
  double aic_ = 0.0;
  double sigma2_ = 0.0;  ///< CSS innovation variance.

  // State advanced by Update(): recent raw values, demeaned differenced
  // values, and innovations. Bounded lags only are ever read.
  std::vector<double> raw_;
  std::vector<double> z_;
  std::vector<double> errors_;
  std::vector<double> fitted_values_;
};

}  // namespace f2db

#endif  // F2DB_TS_ARIMA_H_
