#include "ts/backtest.h"

#include <cmath>

#include "ts/accuracy.h"

namespace f2db {
namespace {

/// Collects per-origin forecasts into the aggregate result.
class BacktestAccumulator {
 public:
  void Add(const std::vector<double>& actual,
           const std::vector<double>& forecast) {
    result_.per_origin_smape.push_back(Smape(actual, forecast));
    for (std::size_t i = 0; i < actual.size(); ++i) {
      const double err = actual[i] - forecast[i];
      abs_sum_ += std::abs(err);
      sq_sum_ += err * err;
      ++count_;
    }
    ++result_.origins;
  }

  BacktestResult Finish() {
    if (result_.origins > 0) {
      double total = 0.0;
      for (double v : result_.per_origin_smape) total += v;
      result_.smape = total / static_cast<double>(result_.origins);
    }
    if (count_ > 0) {
      result_.mae = abs_sum_ / static_cast<double>(count_);
      result_.rmse = std::sqrt(sq_sum_ / static_cast<double>(count_));
    }
    return std::move(result_);
  }

 private:
  BacktestResult result_;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  std::size_t count_ = 0;
};

Status ValidateOptions(const TimeSeries& series,
                       const BacktestOptions& options) {
  if (options.horizon == 0 || options.stride == 0) {
    return Status::InvalidArgument("backtest: horizon/stride must be >= 1");
  }
  if (series.size() < options.min_train + options.horizon) {
    return Status::InvalidArgument("backtest: series too short for protocol");
  }
  return Status::OK();
}

std::vector<double> ActualWindow(const TimeSeries& series, std::size_t origin,
                                 std::size_t horizon) {
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) out[h] = series[origin + h];
  return out;
}

}  // namespace

Result<BacktestResult> RollingOriginBacktest(const TimeSeries& series,
                                             const ModelFactory& factory,
                                             const BacktestOptions& options) {
  F2DB_RETURN_IF_ERROR(ValidateOptions(series, options));
  BacktestAccumulator accumulator;
  for (std::size_t origin = options.min_train;
       origin + options.horizon <= series.size(); origin += options.stride) {
    auto model = factory.CreateAndFit(series.Head(origin));
    if (!model.ok()) continue;  // window too short for this family: skip
    accumulator.Add(ActualWindow(series, origin, options.horizon),
                    model.value()->Forecast(options.horizon));
  }
  BacktestResult result = accumulator.Finish();
  if (result.origins == 0) {
    return Status::Internal("backtest: no origin could be fitted");
  }
  return result;
}

Result<BacktestResult> IncrementalBacktest(const TimeSeries& series,
                                           const ModelFactory& factory,
                                           const BacktestOptions& options) {
  F2DB_RETURN_IF_ERROR(ValidateOptions(series, options));
  F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> model,
                        factory.CreateAndFit(series.Head(options.min_train)));
  BacktestAccumulator accumulator;
  std::size_t consumed = options.min_train;  // observations seen by the model
  for (std::size_t origin = options.min_train;
       origin + options.horizon <= series.size(); origin += options.stride) {
    // Catch the state up to this origin (parameters frozen).
    while (consumed < origin) {
      model->Update(series[consumed]);
      ++consumed;
    }
    accumulator.Add(ActualWindow(series, origin, options.horizon),
                    model->Forecast(options.horizon));
  }
  BacktestResult result = accumulator.Finish();
  if (result.origins == 0) {
    return Status::Internal("backtest: no origins scored");
  }
  return result;
}

}  // namespace f2db
