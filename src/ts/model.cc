#include "ts/model.h"

namespace f2db {

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kMean:
      return "mean";
    case ModelType::kNaive:
      return "naive";
    case ModelType::kSeasonalNaive:
      return "seasonal_naive";
    case ModelType::kDrift:
      return "drift";
    case ModelType::kSes:
      return "ses";
    case ModelType::kHolt:
      return "holt";
    case ModelType::kHoltWintersAdd:
      return "holt_winters_add";
    case ModelType::kHoltWintersMul:
      return "holt_winters_mul";
    case ModelType::kArima:
      return "arima";
    case ModelType::kTheta:
      return "theta";
    case ModelType::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<ModelType> ParseModelType(const std::string& name) {
  for (ModelType type :
       {ModelType::kMean, ModelType::kNaive, ModelType::kSeasonalNaive,
        ModelType::kDrift, ModelType::kSes, ModelType::kHolt,
        ModelType::kHoltWintersAdd, ModelType::kHoltWintersMul,
        ModelType::kArima, ModelType::kTheta, ModelType::kAuto}) {
    if (name == ModelTypeName(type)) return type;
  }
  return Status::InvalidArgument("unknown model type: " + name);
}

}  // namespace f2db
