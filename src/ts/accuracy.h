// Forecast accuracy measures.
//
// The paper (Section II-D, Eq. 4) evaluates configurations with SMAPE, the
// symmetric mean absolute percentage error, because it is scale independent
// and bounded in [0, 1]. The additional measures here (MAE, RMSE, MAPE,
// MASE) support the test suite and ablation studies.

#ifndef F2DB_TS_ACCURACY_H_
#define F2DB_TS_ACCURACY_H_

#include <vector>

namespace f2db {

/// Symmetric mean absolute percentage error (Eq. 4):
///   mean_t |x_t - xhat_t| / (|x_t| + |xhat_t|), in [0, 1].
/// A time step where both actual and forecast are ~0 contributes 0.
/// Returns 1.0 (the worst value) for empty or mismatched inputs.
double Smape(const std::vector<double>& actual,
             const std::vector<double>& forecast);

/// Mean absolute error.
double MeanAbsoluteError(const std::vector<double>& actual,
                         const std::vector<double>& forecast);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& actual,
                            const std::vector<double>& forecast);

/// Mean absolute percentage error; steps with |actual| ~ 0 are skipped.
double Mape(const std::vector<double>& actual,
            const std::vector<double>& forecast);

/// Mean absolute scaled error (Hyndman & Koehler 2006): MAE scaled by the
/// in-sample one-step naive MAE of `train`. Returns +inf when the scale
/// denominator is ~0.
double Mase(const std::vector<double>& train,
            const std::vector<double>& actual,
            const std::vector<double>& forecast);

}  // namespace f2db

#endif  // F2DB_TS_ACCURACY_H_
