// Baseline forecast models: mean, naive (random walk), seasonal naive, and
// drift. These serve as sanity baselines in tests and as cheap fallbacks in
// automatic model selection.

#ifndef F2DB_TS_NAIVE_MODELS_H_
#define F2DB_TS_NAIVE_MODELS_H_

#include <memory>
#include <vector>

#include "ts/model.h"

namespace f2db {

/// Forecasts the running mean of all observations seen so far.
class MeanModel final : public ForecastModel {
 public:
  Status Fit(const TimeSeries& history) override;
  std::vector<double> Forecast(std::size_t horizon) const override;
  void Update(double value) override;
  std::unique_ptr<ForecastModel> Clone() const override;
  ModelType type() const override { return ModelType::kMean; }
  std::size_t num_parameters() const override { return 1; }
  std::vector<double> parameters() const override { return {mean_}; }
  bool is_fitted() const override { return fitted_; }
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;
  std::vector<double> ForecastVariance(std::size_t horizon) const override;
  double residual_variance() const override { return sigma2_; }

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double count_ = 0.0;
  double sigma2_ = 0.0;  ///< Residual variance around the mean.
};

/// Random walk forecast: every horizon gets the last observation.
class NaiveModel final : public ForecastModel {
 public:
  Status Fit(const TimeSeries& history) override;
  std::vector<double> Forecast(std::size_t horizon) const override;
  void Update(double value) override;
  std::unique_ptr<ForecastModel> Clone() const override;
  ModelType type() const override { return ModelType::kNaive; }
  std::size_t num_parameters() const override { return 0; }
  std::vector<double> parameters() const override { return {}; }
  bool is_fitted() const override { return fitted_; }
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;
  std::vector<double> ForecastVariance(std::size_t horizon) const override;
  double residual_variance() const override { return sigma2_; }

 private:
  bool fitted_ = false;
  double last_ = 0.0;
  double sigma2_ = 0.0;  ///< Variance of one-step differences.
};

/// Repeats the most recent full season.
class SeasonalNaiveModel final : public ForecastModel {
 public:
  /// `period` is the season length (>= 1; 1 degenerates to NaiveModel).
  explicit SeasonalNaiveModel(std::size_t period) : period_(period) {}

  Status Fit(const TimeSeries& history) override;
  std::vector<double> Forecast(std::size_t horizon) const override;
  void Update(double value) override;
  std::unique_ptr<ForecastModel> Clone() const override;
  ModelType type() const override { return ModelType::kSeasonalNaive; }
  std::size_t num_parameters() const override { return 0; }
  std::vector<double> parameters() const override { return {}; }
  bool is_fitted() const override { return fitted_; }
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;
  std::vector<double> ForecastVariance(std::size_t horizon) const override;
  double residual_variance() const override { return sigma2_; }

 private:
  std::size_t period_;
  bool fitted_ = false;
  std::vector<double> season_;  ///< Ring buffer of the last `period_` values.
  std::size_t pos_ = 0;         ///< Index of the oldest value in the ring.
  double sigma2_ = 0.0;         ///< Variance of seasonal differences.
};

/// Random walk with drift: extrapolates the average historical step.
class DriftModel final : public ForecastModel {
 public:
  Status Fit(const TimeSeries& history) override;
  std::vector<double> Forecast(std::size_t horizon) const override;
  void Update(double value) override;
  std::unique_ptr<ForecastModel> Clone() const override;
  ModelType type() const override { return ModelType::kDrift; }
  std::size_t num_parameters() const override { return 1; }
  std::vector<double> parameters() const override;
  bool is_fitted() const override { return fitted_; }
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;
  std::vector<double> ForecastVariance(std::size_t horizon) const override;
  double residual_variance() const override { return sigma2_; }

 private:
  bool fitted_ = false;
  double first_ = 0.0;
  double last_ = 0.0;
  double count_ = 0.0;
  double sigma2_ = 0.0;  ///< Variance of drift-adjusted differences.
};

}  // namespace f2db

#endif  // F2DB_TS_NAIVE_MODELS_H_
