#include "ts/decomposition.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

namespace f2db {
namespace {

// Centered moving average of window `period` (even periods use the
// standard 2x(m) average). Ends are filled by linear extrapolation from
// the first/last defined values so downstream code never sees gaps.
std::vector<double> CenteredMovingAverage(const std::vector<double>& xs,
                                          std::size_t period) {
  const std::size_t n = xs.size();
  std::vector<double> out(n, 0.0);
  const std::size_t half = period / 2;
  const bool even = period % 2 == 0;
  const std::size_t first = half;
  const std::size_t last = n - half - 1;
  for (std::size_t t = first; t <= last; ++t) {
    double sum = 0.0;
    if (even) {
      sum += 0.5 * xs[t - half];
      sum += 0.5 * xs[t + half];
      for (std::size_t j = t - half + 1; j < t + half; ++j) sum += xs[j];
      out[t] = sum / static_cast<double>(period);
    } else {
      for (std::size_t j = t - half; j <= t + half; ++j) sum += xs[j];
      out[t] = sum / static_cast<double>(period);
    }
  }
  // Extrapolate the ends linearly from the first/last two interior values.
  if (last > first) {
    const double head_slope = out[first + 1] - out[first];
    for (std::size_t t = first; t-- > 0;) out[t] = out[t + 1] - head_slope;
    const double tail_slope = out[last] - out[last - 1];
    for (std::size_t t = last + 1; t < n; ++t) out[t] = out[t - 1] + tail_slope;
  } else {
    for (std::size_t t = 0; t < n; ++t) out[t] = out[first];
  }
  return out;
}

}  // namespace

Result<Decomposition> Decompose(const TimeSeries& series, std::size_t period,
                                DecompositionType type) {
  const std::size_t n = series.size();
  if (period < 2) return Status::InvalidArgument("Decompose: period < 2");
  if (n < 2 * period) {
    return Status::InvalidArgument("Decompose: need >= 2 full seasons");
  }
  const std::vector<double>& xs = series.values();
  if (type == DecompositionType::kMultiplicative) {
    for (double v : xs) {
      if (v <= 0.0) {
        return Status::InvalidArgument(
            "Decompose: multiplicative needs positive data");
      }
    }
  }

  Decomposition out;
  out.period = period;
  out.type = type;
  out.trend = CenteredMovingAverage(xs, period);

  // Seasonal indices: average detrended value per season position.
  std::vector<double> index_sum(period, 0.0);
  std::vector<std::size_t> index_count(period, 0);
  for (std::size_t t = 0; t < n; ++t) {
    const double detrended = type == DecompositionType::kAdditive
                                 ? xs[t] - out.trend[t]
                                 : xs[t] / out.trend[t];
    index_sum[t % period] += detrended;
    ++index_count[t % period];
  }
  std::vector<double> indices(period);
  for (std::size_t j = 0; j < period; ++j) {
    indices[j] = index_count[j] > 0
                     ? index_sum[j] / static_cast<double>(index_count[j])
                     : (type == DecompositionType::kAdditive ? 0.0 : 1.0);
  }
  // Normalize: additive indices sum to 0, multiplicative average to 1.
  const double mean_index = Mean(indices);
  for (double& v : indices) {
    if (type == DecompositionType::kAdditive) {
      v -= mean_index;
    } else if (std::abs(mean_index) > 1e-12) {
      v /= mean_index;
    }
  }

  out.seasonal.resize(n);
  out.remainder.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    out.seasonal[t] = indices[t % period];
    out.remainder[t] = type == DecompositionType::kAdditive
                           ? xs[t] - out.trend[t] - out.seasonal[t]
                           : xs[t] / (out.trend[t] * out.seasonal[t]);
  }
  return out;
}

Result<std::vector<double>> BoxCox(const std::vector<double>& xs,
                                   double lambda) {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0) {
      return Status::InvalidArgument("BoxCox: data must be positive");
    }
    out[i] = std::abs(lambda) < 1e-12
                 ? std::log(xs[i])
                 : (std::pow(xs[i], lambda) - 1.0) / lambda;
  }
  return out;
}

std::vector<double> InverseBoxCox(const std::vector<double>& xs,
                                  double lambda) {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::abs(lambda) < 1e-12) {
      out[i] = std::exp(xs[i]);
    } else {
      const double base = lambda * xs[i] + 1.0;
      out[i] = base > 0.0 ? std::pow(base, 1.0 / lambda) : 0.0;
    }
  }
  return out;
}

Result<double> SelectBoxCoxLambda(const std::vector<double>& xs,
                                  std::size_t period) {
  if (period < 2) return Status::InvalidArgument("lambda: period < 2");
  if (xs.size() < 2 * period) {
    return Status::InvalidArgument("lambda: need >= 2 seasonal blocks");
  }
  for (double v : xs) {
    if (v <= 0.0) return Status::InvalidArgument("lambda: positive data only");
  }
  const double grid[] = {-1.0, -0.5, 0.0, 0.5, 1.0};
  double best_lambda = 1.0;
  double best_score = std::numeric_limits<double>::max();
  for (const double lambda : grid) {
    auto transformed = BoxCox(xs, lambda);
    if (!transformed.ok()) continue;
    // Per-block standard deviations; a good lambda equalizes them.
    std::vector<double> block_sds;
    for (std::size_t start = 0; start + period <= xs.size(); start += period) {
      std::vector<double> block(
          transformed.value().begin() + static_cast<std::ptrdiff_t>(start),
          transformed.value().begin() +
              static_cast<std::ptrdiff_t>(start + period));
      block_sds.push_back(StdDev(block));
    }
    const double score = CoefficientOfVariation(block_sds);
    if (score < best_score) {
      best_score = score;
      best_lambda = lambda;
    }
  }
  return best_lambda;
}

}  // namespace f2db
