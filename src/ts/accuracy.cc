#include "ts/accuracy.h"

#include <cmath>
#include <limits>

namespace f2db {

double Smape(const std::vector<double>& actual,
             const std::vector<double>& forecast) {
  if (actual.empty() || actual.size() != forecast.size()) return 1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::abs(actual[i]) + std::abs(forecast[i]);
    if (denom < 1e-12) continue;  // both ~0: perfect, contributes 0
    sum += std::abs(actual[i] - forecast[i]) / denom;
  }
  return sum / static_cast<double>(actual.size());
}

double MeanAbsoluteError(const std::vector<double>& actual,
                         const std::vector<double>& forecast) {
  if (actual.empty() || actual.size() != forecast.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    sum += std::abs(actual[i] - forecast[i]);
  }
  return sum / static_cast<double>(actual.size());
}

double RootMeanSquaredError(const std::vector<double>& actual,
                            const std::vector<double>& forecast) {
  if (actual.empty() || actual.size() != forecast.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - forecast[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(actual.size()));
}

double Mape(const std::vector<double>& actual,
            const std::vector<double>& forecast) {
  if (actual.empty() || actual.size() != forecast.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < 1e-12) continue;
    sum += std::abs((actual[i] - forecast[i]) / actual[i]);
    ++count;
  }
  if (count == 0) return std::numeric_limits<double>::infinity();
  return sum / static_cast<double>(count);
}

double Mase(const std::vector<double>& train,
            const std::vector<double>& actual,
            const std::vector<double>& forecast) {
  if (train.size() < 2) return std::numeric_limits<double>::infinity();
  double scale = 0.0;
  for (std::size_t i = 1; i < train.size(); ++i) {
    scale += std::abs(train[i] - train[i - 1]);
  }
  scale /= static_cast<double>(train.size() - 1);
  if (scale < 1e-12) return std::numeric_limits<double>::infinity();
  return MeanAbsoluteError(actual, forecast) / scale;
}

}  // namespace f2db
