// Prediction intervals for forecast models.
//
// Point forecasts answer the paper's forecast queries; production users of
// a forecast-enabled DBMS additionally want uncertainty bands. This module
// turns a model's ForecastVariance into symmetric normal-theory intervals:
//   point +/- z_{(1+c)/2} * sqrt(var_h).
// The engine exposes the same through derived schemes (sources assumed
// independent, variance scales with the squared derivation weight).

#ifndef F2DB_TS_INTERVALS_H_
#define F2DB_TS_INTERVALS_H_

#include <vector>

#include "common/status.h"
#include "ts/model.h"

namespace f2db {

/// One interval forecast step.
struct ForecastInterval {
  double lower = 0.0;
  double point = 0.0;
  double upper = 0.0;
};

/// Interval forecasts for `horizon` steps at the given confidence level
/// (e.g. 0.95). Fails when the model does not provide forecast variances
/// or the confidence is outside (0, 1).
Result<std::vector<ForecastInterval>> ForecastWithIntervals(
    const ForecastModel& model, std::size_t horizon, double confidence = 0.95);

/// Builds intervals from externally computed points and variances (used by
/// the engine for derived schemes). Sizes must match.
Result<std::vector<ForecastInterval>> IntervalsFromMoments(
    const std::vector<double>& points, const std::vector<double>& variances,
    double confidence);

}  // namespace f2db

#endif  // F2DB_TS_INTERVALS_H_
