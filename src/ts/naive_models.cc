#include "ts/naive_models.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

namespace f2db {

// ---------------------------------------------------------------- MeanModel

Status MeanModel::Fit(const TimeSeries& history) {
  if (history.empty()) return Status::InvalidArgument("MeanModel: empty series");
  mean_ = history.Mean();
  count_ = static_cast<double>(history.size());
  sigma2_ = Variance(history.values());
  fitted_ = true;
  return Status::OK();
}

std::vector<double> MeanModel::Forecast(std::size_t horizon) const {
  return std::vector<double>(horizon, mean_);
}

void MeanModel::Update(double value) {
  count_ += 1.0;
  mean_ += (value - mean_) / count_;
}

std::unique_ptr<ForecastModel> MeanModel::Clone() const {
  return std::make_unique<MeanModel>(*this);
}

std::vector<double> MeanModel::SaveState() const {
  return {mean_, count_, sigma2_};
}

Status MeanModel::RestoreState(const std::vector<double>& state) {
  if (state.size() != 3) return Status::InvalidArgument("MeanModel: bad state");
  mean_ = state[0];
  count_ = state[1];
  sigma2_ = state[2];
  fitted_ = true;
  return Status::OK();
}

std::vector<double> MeanModel::ForecastVariance(std::size_t horizon) const {
  // Forecast = sample mean: var = sigma2 * (1 + 1/n) at every horizon.
  const double v = sigma2_ * (1.0 + (count_ > 0 ? 1.0 / count_ : 0.0));
  return std::vector<double>(horizon, v);
}

// --------------------------------------------------------------- NaiveModel

Status NaiveModel::Fit(const TimeSeries& history) {
  if (history.empty()) return Status::InvalidArgument("NaiveModel: empty series");
  last_ = history[history.size() - 1];
  std::vector<double> diffs;
  diffs.reserve(history.size());
  for (std::size_t i = 1; i < history.size(); ++i) {
    diffs.push_back(history[i] - history[i - 1]);
  }
  double sum_sq = 0.0;
  for (double d : diffs) sum_sq += d * d;
  sigma2_ = diffs.empty() ? 0.0 : sum_sq / static_cast<double>(diffs.size());
  fitted_ = true;
  return Status::OK();
}

std::vector<double> NaiveModel::Forecast(std::size_t horizon) const {
  return std::vector<double>(horizon, last_);
}

void NaiveModel::Update(double value) { last_ = value; }

std::unique_ptr<ForecastModel> NaiveModel::Clone() const {
  return std::make_unique<NaiveModel>(*this);
}

std::vector<double> NaiveModel::SaveState() const {
  return {last_, sigma2_};
}

Status NaiveModel::RestoreState(const std::vector<double>& state) {
  if (state.size() != 2) return Status::InvalidArgument("NaiveModel: bad state");
  last_ = state[0];
  sigma2_ = state[1];
  fitted_ = true;
  return Status::OK();
}

std::vector<double> NaiveModel::ForecastVariance(std::size_t horizon) const {
  // Random walk: errors accumulate, var_h = sigma2 * h.
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = sigma2_ * static_cast<double>(h + 1);
  }
  return out;
}

// ------------------------------------------------------- SeasonalNaiveModel

Status SeasonalNaiveModel::Fit(const TimeSeries& history) {
  if (period_ == 0) return Status::InvalidArgument("SeasonalNaive: period 0");
  if (history.size() < period_) {
    return Status::InvalidArgument(
        "SeasonalNaive: need at least one full season (" +
        std::to_string(period_) + " observations)");
  }
  season_.resize(period_);
  for (std::size_t i = 0; i < period_; ++i) {
    season_[i] = history[history.size() - period_ + i];
  }
  pos_ = 0;
  double sum_sq = 0.0;
  std::size_t count = 0;
  for (std::size_t i = period_; i < history.size(); ++i) {
    const double d = history[i] - history[i - period_];
    sum_sq += d * d;
    ++count;
  }
  sigma2_ = count > 0 ? sum_sq / static_cast<double>(count) : 0.0;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> SeasonalNaiveModel::Forecast(std::size_t horizon) const {
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = season_[(pos_ + h % period_) % period_];
  }
  return out;
}

void SeasonalNaiveModel::Update(double value) {
  // Overwrite the oldest slot (the season the new value belongs to).
  season_[pos_] = value;
  pos_ = (pos_ + 1) % period_;
}

std::unique_ptr<ForecastModel> SeasonalNaiveModel::Clone() const {
  return std::make_unique<SeasonalNaiveModel>(*this);
}

std::vector<double> SeasonalNaiveModel::SaveState() const {
  std::vector<double> out;
  out.push_back(static_cast<double>(period_));
  out.push_back(static_cast<double>(pos_));
  out.push_back(sigma2_);
  out.insert(out.end(), season_.begin(), season_.end());
  return out;
}

Status SeasonalNaiveModel::RestoreState(const std::vector<double>& state) {
  if (state.size() < 3) {
    return Status::InvalidArgument("SeasonalNaive: bad state");
  }
  const std::size_t period = static_cast<std::size_t>(state[0]);
  if (period == 0 || state.size() != 3 + period) {
    return Status::InvalidArgument("SeasonalNaive: bad state size");
  }
  period_ = period;
  pos_ = static_cast<std::size_t>(state[1]) % period_;
  sigma2_ = state[2];
  season_.assign(state.begin() + 3, state.end());
  fitted_ = true;
  return Status::OK();
}

std::vector<double> SeasonalNaiveModel::ForecastVariance(
    std::size_t horizon) const {
  // var_h = sigma2 * (number of completed seasonal cycles + 1).
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = sigma2_ * static_cast<double>(h / period_ + 1);
  }
  return out;
}

// --------------------------------------------------------------- DriftModel

Status DriftModel::Fit(const TimeSeries& history) {
  if (history.size() < 2) {
    return Status::InvalidArgument("DriftModel: need >= 2 observations");
  }
  first_ = history[0];
  last_ = history[history.size() - 1];
  count_ = static_cast<double>(history.size());
  const double slope = (last_ - first_) / (count_ - 1.0);
  double sum_sq = 0.0;
  for (std::size_t i = 1; i < history.size(); ++i) {
    const double d = history[i] - history[i - 1] - slope;
    sum_sq += d * d;
  }
  sigma2_ = sum_sq / static_cast<double>(history.size() - 1);
  fitted_ = true;
  return Status::OK();
}

std::vector<double> DriftModel::Forecast(std::size_t horizon) const {
  const double slope = (count_ > 1.0) ? (last_ - first_) / (count_ - 1.0) : 0.0;
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = last_ + slope * static_cast<double>(h + 1);
  }
  return out;
}

void DriftModel::Update(double value) {
  last_ = value;
  count_ += 1.0;
}

std::unique_ptr<ForecastModel> DriftModel::Clone() const {
  return std::make_unique<DriftModel>(*this);
}

std::vector<double> DriftModel::parameters() const {
  const double slope = (count_ > 1.0) ? (last_ - first_) / (count_ - 1.0) : 0.0;
  return {slope};
}

std::vector<double> DriftModel::SaveState() const {
  return {first_, last_, count_, sigma2_};
}

Status DriftModel::RestoreState(const std::vector<double>& state) {
  if (state.size() != 4) return Status::InvalidArgument("DriftModel: bad state");
  first_ = state[0];
  last_ = state[1];
  count_ = state[2];
  sigma2_ = state[3];
  fitted_ = true;
  return Status::OK();
}

std::vector<double> DriftModel::ForecastVariance(std::size_t horizon) const {
  // Hyndman & Athanasopoulos: var_h = sigma2 * h * (1 + h / (n - 1)).
  std::vector<double> out(horizon);
  const double n1 = std::max(count_ - 1.0, 1.0);
  for (std::size_t h = 0; h < horizon; ++h) {
    const double hh = static_cast<double>(h + 1);
    out[h] = sigma2_ * hh * (1.0 + hh / n1);
  }
  return out;
}

}  // namespace f2db
