#include "ts/model_factory.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/string_util.h"
#include "ts/auto_select.h"
#include "ts/exponential_smoothing.h"
#include "ts/naive_models.h"
#include "ts/theta.h"

namespace f2db {
namespace {

// Instantiates an unfitted model for a concrete (non-auto) type.
Result<std::unique_ptr<ForecastModel>> Instantiate(const ModelSpec& spec) {
  switch (spec.type) {
    case ModelType::kMean:
      return std::unique_ptr<ForecastModel>(std::make_unique<MeanModel>());
    case ModelType::kNaive:
      return std::unique_ptr<ForecastModel>(std::make_unique<NaiveModel>());
    case ModelType::kSeasonalNaive:
      return std::unique_ptr<ForecastModel>(
          std::make_unique<SeasonalNaiveModel>(spec.period));
    case ModelType::kDrift:
      return std::unique_ptr<ForecastModel>(std::make_unique<DriftModel>());
    case ModelType::kSes:
      return std::unique_ptr<ForecastModel>(ExponentialSmoothingModel::Ses());
    case ModelType::kHolt:
      return std::unique_ptr<ForecastModel>(
          ExponentialSmoothingModel::Holt(false));
    case ModelType::kHoltWintersAdd:
      return std::unique_ptr<ForecastModel>(
          ExponentialSmoothingModel::HoltWintersAdditive(spec.period));
    case ModelType::kHoltWintersMul:
      return std::unique_ptr<ForecastModel>(
          ExponentialSmoothingModel::HoltWintersMultiplicative(spec.period));
    case ModelType::kArima:
      return std::unique_ptr<ForecastModel>(
          std::make_unique<ArimaModel>(spec.arima));
    case ModelType::kTheta:
      return std::unique_ptr<ForecastModel>(
          std::make_unique<ThetaModel>(spec.period));
    case ModelType::kAuto:
      return Status::InvalidArgument(
          "ModelFactory: kAuto needs data; use CreateAndFit");
  }
  return Status::InvalidArgument("ModelFactory: unknown model type");
}

}  // namespace

Result<std::unique_ptr<ForecastModel>> ModelFactory::Create() const {
  return Instantiate(spec_);
}

Result<std::unique_ptr<ForecastModel>> ModelFactory::CreateAndFit(
    const TimeSeries& history) const {
  if (fit_hook_) {
    F2DB_RETURN_IF_ERROR(fit_hook_(history));
  }
  if (artificial_delay_seconds_ > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(artificial_delay_seconds_));
  }
  if (spec_.type == ModelType::kAuto) {
    AutoSelectOptions options;
    options.period = spec_.period;
    F2DB_ASSIGN_OR_RETURN(AutoSelection selection,
                          AutoSelectModel(history, options));
    return std::move(selection.model);
  }
  F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> model,
                        Instantiate(spec_));
  F2DB_RETURN_IF_ERROR(model->Fit(history));
  return model;
}

std::string ModelFactory::SerializeModel(const ForecastModel& model) {
  std::ostringstream out;
  out.precision(17);
  out << ModelTypeName(model.type());
  for (double v : model.SaveState()) out << ";" << v;
  return out.str();
}

Result<std::unique_ptr<ForecastModel>> ModelFactory::DeserializeModel(
    const std::string& text) {
  const std::vector<std::string> parts = SplitString(text, ';');
  if (parts.empty()) return Status::InvalidArgument("empty model text");
  F2DB_ASSIGN_OR_RETURN(ModelType type, ParseModelType(parts[0]));
  std::vector<double> state;
  state.reserve(parts.size() - 1);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    F2DB_ASSIGN_OR_RETURN(double v, ParseDouble(parts[i]));
    state.push_back(v);
  }
  ModelSpec spec;
  spec.type = type;
  spec.period = 2;  // placeholder; RestoreState overwrites seasonal config
  F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> model,
                        Instantiate(spec));
  F2DB_RETURN_IF_ERROR(model->RestoreState(state));
  return model;
}

}  // namespace f2db
