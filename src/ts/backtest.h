// Rolling-origin backtesting.
//
// The standard protocol for judging forecast quality: refit (or
// incrementally update) a model at successive origins and score the
// h-step-ahead forecasts against the actuals. The incremental variant
// measures exactly what the engine's maintenance processor does between
// re-estimations (Section V): parameters frozen, state advanced by
// Update() — its gap to the refit variant quantifies how quickly model
// parameters go stale, which is what the paper's invalidation strategies
// trade off.

#ifndef F2DB_TS_BACKTEST_H_
#define F2DB_TS_BACKTEST_H_

#include <vector>

#include "common/status.h"
#include "ts/model_factory.h"
#include "ts/time_series.h"

namespace f2db {

/// Protocol parameters.
struct BacktestOptions {
  /// Observations in the first training window.
  std::size_t min_train = 16;
  /// Forecast horizon scored at every origin.
  std::size_t horizon = 1;
  /// Origins advance by this many observations.
  std::size_t stride = 1;
};

/// Aggregated backtest scores.
struct BacktestResult {
  double smape = 1.0;
  double mae = 0.0;
  double rmse = 0.0;
  std::size_t origins = 0;
  /// SMAPE per origin (time-ordered) for drift diagnostics.
  std::vector<double> per_origin_smape;
};

/// Refits the factory's model at every origin ("gold standard").
Result<BacktestResult> RollingOriginBacktest(const TimeSeries& series,
                                             const ModelFactory& factory,
                                             const BacktestOptions& options = {});

/// Fits once on the first window, then only advances the model state with
/// Update() between origins — the engine's between-re-estimations path.
Result<BacktestResult> IncrementalBacktest(const TimeSeries& series,
                                           const ModelFactory& factory,
                                           const BacktestOptions& options = {});

}  // namespace f2db

#endif  // F2DB_TS_BACKTEST_H_
