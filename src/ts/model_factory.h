// ModelSpec and ModelFactory: uniform creation, fitting, and serialization
// of forecast models.
//
// The advisor and all baselines create models through a factory so that the
// model family is a single configuration point (the paper fixes triple
// exponential smoothing for its evaluation but the approach is
// model-agnostic, Section II-B). The factory also implements the
// "artificially vary the time to create a single forecast model" knob used
// in Figures 8(c)/8(d) of the paper.

#ifndef F2DB_TS_MODEL_FACTORY_H_
#define F2DB_TS_MODEL_FACTORY_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "ts/arima.h"
#include "ts/model.h"

namespace f2db {

/// Full specification of a forecast model to create.
struct ModelSpec {
  ModelType type = ModelType::kHoltWintersAdd;
  /// Season length for seasonal model families.
  std::size_t period = 1;
  /// Orders when type == kArima.
  ArimaOrder arima;

  /// Convenience factories.
  static ModelSpec TripleExponentialSmoothing(std::size_t period) {
    ModelSpec spec;
    spec.type = ModelType::kHoltWintersAdd;
    spec.period = period;
    return spec;
  }
  static ModelSpec Arima(ArimaOrder order) {
    ModelSpec spec;
    spec.type = ModelType::kArima;
    spec.arima = order;
    spec.period = order.season;
    return spec;
  }
  static ModelSpec Auto(std::size_t period) {
    ModelSpec spec;
    spec.type = ModelType::kAuto;
    spec.period = period;
    return spec;
  }
};

/// Creates, fits, and (de)serializes forecast models of one spec.
class ModelFactory {
 public:
  explicit ModelFactory(ModelSpec spec) : spec_(spec) {}

  const ModelSpec& spec() const { return spec_; }

  /// Artificial per-creation delay in seconds (0 disables). Reproduces the
  /// model-creation-time sweep of Figures 8(c)/(d).
  void set_artificial_delay_seconds(double seconds) {
    artificial_delay_seconds_ = seconds < 0 ? 0 : seconds;
  }
  double artificial_delay_seconds() const { return artificial_delay_seconds_; }

  /// Pre-fit hook invoked with the training series before every
  /// CreateAndFit; a non-OK status aborts that creation. Intended for
  /// failure injection in tests (e.g. make fitting fail for selected
  /// nodes) — callers must tolerate creation failures either way.
  using FitHook = std::function<Status(const TimeSeries&)>;
  void set_fit_hook(FitHook hook) { fit_hook_ = std::move(hook); }

  /// Instantiates an unfitted model of the configured spec. For kAuto this
  /// fails — automatic selection needs data; use CreateAndFit.
  Result<std::unique_ptr<ForecastModel>> Create() const;

  /// Creates and fits a model on `history`, applying the artificial delay.
  Result<std::unique_ptr<ForecastModel>> CreateAndFit(
      const TimeSeries& history) const;

  /// Serializes a fitted model to a single-line string for the engine's
  /// model table.
  static std::string SerializeModel(const ForecastModel& model);

  /// Restores a model serialized with SerializeModel.
  static Result<std::unique_ptr<ForecastModel>> DeserializeModel(
      const std::string& text);

 private:
  ModelSpec spec_;
  double artificial_delay_seconds_ = 0.0;
  FitHook fit_hook_;
};

}  // namespace f2db

#endif  // F2DB_TS_MODEL_FACTORY_H_
