// The Theta method (Assimakopoulos & Nikolopoulos 2000).
//
// Winner of the M3 competition that the paper cites for model coverage
// (Makridakis & Hibon 2000). Implemented in its standard equivalent form
// (Hyndman & Billah 2003): deseasonalize multiplicatively, forecast with
// simple exponential smoothing plus half the slope of the fitted linear
// trend as drift, reseasonalize.

#ifndef F2DB_TS_THETA_H_
#define F2DB_TS_THETA_H_

#include <memory>
#include <vector>

#include "ts/model.h"

namespace f2db {

/// Theta forecast model with optional multiplicative deseasonalization.
class ThetaModel final : public ForecastModel {
 public:
  /// `period` >= 2 enables deseasonalization; 1 runs on the raw series.
  explicit ThetaModel(std::size_t period = 1) : period_(period) {}

  Status Fit(const TimeSeries& history) override;
  std::vector<double> Forecast(std::size_t horizon) const override;
  void Update(double value) override;
  std::unique_ptr<ForecastModel> Clone() const override;
  ModelType type() const override { return ModelType::kTheta; }
  std::size_t num_parameters() const override { return 2; }  // alpha, drift
  std::vector<double> parameters() const override { return {alpha_, drift_}; }
  bool is_fitted() const override { return fitted_; }
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;
  std::vector<double> FittedValues() const override { return fitted_values_; }
  std::vector<double> ForecastVariance(std::size_t horizon) const override;
  double residual_variance() const override { return sigma2_; }

  double alpha() const { return alpha_; }
  /// Half the regression slope of the deseasonalized series.
  double drift() const { return drift_; }

 private:
  /// Seasonal index applying to the observation k steps ahead (k >= 1).
  double SeasonalIndexAhead(std::size_t k) const;

  std::size_t period_;
  bool fitted_ = false;
  double alpha_ = 0.3;
  double drift_ = 0.0;
  double level_ = 0.0;
  /// Multiplicative seasonal ring; seasonal_[pos_] applies to the next
  /// observation. Empty when period_ < 2 or no seasonality detected.
  std::vector<double> seasonal_;
  std::size_t pos_ = 0;
  double sigma2_ = 0.0;
  std::vector<double> fitted_values_;
};

}  // namespace f2db

#endif  // F2DB_TS_THETA_H_
