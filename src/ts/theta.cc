#include "ts/theta.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "math/optimizer.h"
#include "ts/decomposition.h"

namespace f2db {

double ThetaModel::SeasonalIndexAhead(std::size_t k) const {
  if (seasonal_.empty()) return 1.0;
  return seasonal_[(pos_ + k - 1) % seasonal_.size()];
}

Status ThetaModel::Fit(const TimeSeries& history) {
  const std::size_t n = history.size();
  if (n < 4) return Status::InvalidArgument("Theta: series too short");

  // Deseasonalize multiplicatively when a season is configured and the
  // history covers at least two full cycles.
  std::vector<double> work = history.values();
  seasonal_.clear();
  pos_ = 0;
  if (period_ >= 2 && n >= 2 * period_) {
    bool positive = true;
    for (double v : work) positive = positive && v > 0.0;
    if (positive) {
      auto decomposition =
          Decompose(history, period_, DecompositionType::kMultiplicative);
      if (decomposition.ok()) {
        seasonal_.resize(period_);
        for (std::size_t j = 0; j < period_; ++j) {
          seasonal_[j] = decomposition.value().seasonal[j];
        }
        for (std::size_t t = 0; t < n; ++t) {
          const double index = seasonal_[t % period_];
          if (std::abs(index) > 1e-12) work[t] /= index;
        }
        // seasonal_[pos_] must apply to the NEXT observation (time n).
        pos_ = n % period_;
      }
    }
  }

  // Theta-0 line: linear regression slope; the drift is half of it.
  const double nn = static_cast<double>(n);
  const double t_mean = (nn - 1.0) / 2.0;
  double y_mean = 0.0;
  for (double v : work) y_mean += v;
  y_mean /= nn;
  double num = 0.0, denom = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double dt = static_cast<double>(t) - t_mean;
    num += dt * (work[t] - y_mean);
    denom += dt * dt;
  }
  const double slope = denom > 0 ? num / denom : 0.0;
  drift_ = 0.5 * slope;

  // SES on the deseasonalized series; alpha by one-step SSE.
  auto sse_for = [&](double alpha) {
    double level = work[0];
    double sse = 0.0;
    for (std::size_t t = 1; t < n; ++t) {
      const double err = work[t] - level;
      sse += err * err;
      level = alpha * work[t] + (1.0 - alpha) * level;
    }
    return sse;
  };
  Bounds bounds;
  bounds.lower = {0.01};
  bounds.upper = {0.99};
  OptimizerOptions options;
  options.max_evaluations = 200;
  const OptimizationResult best =
      NelderMead([&](const std::vector<double>& x) { return sse_for(x[0]); },
                 {0.3}, bounds, options);
  alpha_ = std::clamp(best.x[0], 0.01, 0.99);

  // Final pass: level, fitted values, residual variance.
  level_ = work[0];
  fitted_values_.assign(n, 0.0);
  double sse = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double index = seasonal_.empty() ? 1.0 : seasonal_[t % period_];
    const double predicted = (level_ + drift_) * index;
    fitted_values_[t] = t == 0 ? history[0] : predicted;
    const double err = history[t] - fitted_values_[t];
    sse += err * err;
    level_ = alpha_ * work[t] + (1.0 - alpha_) * level_;
  }
  sigma2_ = sse / nn;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> ThetaModel::Forecast(std::size_t horizon) const {
  assert(fitted_);
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const double base = level_ + drift_ * static_cast<double>(h + 1);
    out[h] = base * SeasonalIndexAhead(h + 1);
  }
  return out;
}

void ThetaModel::Update(double value) {
  double deseasonalized = value;
  if (!seasonal_.empty()) {
    const double index = seasonal_[pos_];
    if (std::abs(index) > 1e-12) deseasonalized = value / index;
    pos_ = (pos_ + 1) % seasonal_.size();
  }
  level_ = alpha_ * deseasonalized + (1.0 - alpha_) * level_;
}

std::unique_ptr<ForecastModel> ThetaModel::Clone() const {
  return std::make_unique<ThetaModel>(*this);
}

std::vector<double> ThetaModel::SaveState() const {
  std::vector<double> out{static_cast<double>(period_),
                          static_cast<double>(seasonal_.size()),
                          static_cast<double>(pos_),
                          alpha_,
                          drift_,
                          level_,
                          sigma2_};
  out.insert(out.end(), seasonal_.begin(), seasonal_.end());
  return out;
}

Status ThetaModel::RestoreState(const std::vector<double>& state) {
  if (state.size() < 7) return Status::InvalidArgument("Theta: bad state");
  const std::size_t season_len = static_cast<std::size_t>(state[1]);
  if (state.size() != 7 + season_len) {
    return Status::InvalidArgument("Theta: bad state size");
  }
  period_ = static_cast<std::size_t>(state[0]);
  pos_ = static_cast<std::size_t>(state[2]);
  alpha_ = state[3];
  drift_ = state[4];
  level_ = state[5];
  sigma2_ = state[6];
  seasonal_.assign(state.begin() + 7, state.end());
  if (!seasonal_.empty()) pos_ %= seasonal_.size();
  fitted_ = true;
  return Status::OK();
}

std::vector<double> ThetaModel::ForecastVariance(std::size_t horizon) const {
  // SES-style error accumulation: var_h = sigma2 (1 + (h-1) alpha^2).
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = sigma2_ * (1.0 + static_cast<double>(h) * alpha_ * alpha_);
  }
  return out;
}

}  // namespace f2db
