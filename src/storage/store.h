// SegmentStore: a shard's sealed-segment directory (DESIGN.md §13).
//
// Owns "<data_dir>/segments/": the manifest, the chain of sealed segment
// files, and their lifecycle (seal, retention delete, orphan cleanup).
// Mutations are driven by the engine's compaction path, which is
// serialized; the store only guards its cached manifest with a mutex so
// the stats exporter can read the live-chain gauges concurrently.

#ifndef F2DB_STORAGE_STORE_H_
#define F2DB_STORAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/manifest.h"
#include "storage/segment.h"

namespace f2db::storage {

/// "<data_dir>/segments".
std::string SegmentsDirFor(const std::string& data_dir);

/// Reads and fully validates every segment the manifest references, in
/// chain order: per-file CRCs, manifest agreement (seq, range, series
/// count, byte size), contiguity of consecutive ranges, and an identical
/// node set in every segment. Any failure rejects the whole chain —
/// recovery then falls back to the checkpoint + WAL path.
Result<std::vector<SegmentData>> ReadSegmentChain(
    const std::string& segments_dir, const ManifestData& manifest);

/// The sealed-segment directory of one shard.
class SegmentStore {
 public:
  /// Creates/opens "<data_dir>/segments", loads the manifest when present,
  /// and removes stale "*.tmp" files and segment files the manifest does
  /// not reference. An unparsable manifest is treated as absent for
  /// serving (recovery has already fallen back to the checkpoint path),
  /// but it and the now-unreferenced segments are quarantined as
  /// "*.corrupt" — never deleted — with a loud error log, so the data a
  /// flipped manifest bit orphaned stays available for offline repair.
  static Result<std::unique_ptr<SegmentStore>> Open(
      const std::string& data_dir);

  const std::string& dir() const { return dir_; }
  bool has_manifest() const;
  /// Snapshot copy of the current manifest (empty default when absent).
  ManifestData manifest() const;
  /// Sequence number the next sealed segment should use.
  std::uint64_t next_seq() const;

  /// Durably writes one segment file (does NOT touch the manifest) and
  /// returns its encoded size. Fires the "segment_written" crash hook.
  Result<std::uint64_t> WriteSegment(const SegmentData& segment);

  /// Atomically publishes `next` as the manifest — the commit point of a
  /// compaction. Fires the manifest rename crash hooks.
  Status CommitManifest(ManifestData next);

  /// Reads the full chain the current manifest references.
  Result<std::vector<SegmentData>> ReadChain() const;

  /// Unlinks one segment file (idempotent; used after a retention commit).
  Status DeleteSegmentFile(std::uint64_t seq);

  /// Live-chain gauges for the stats exporter.
  std::uint64_t live_segments() const;
  std::uint64_t live_bytes() const;

 private:
  explicit SegmentStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string dir_;
  mutable std::mutex mutex_;
  bool has_manifest_ = false;
  ManifestData manifest_;
};

}  // namespace f2db::storage

#endif  // F2DB_STORAGE_STORE_H_
