// Bit-level time-series compression for sealed segments (DESIGN.md §13).
//
// One series block encodes N (timestamp, value) points:
//
//   zigzag varint t[0]                                  (byte-aligned)
//   64 raw bits of value[0]                             (bit stream from here)
//   per point i >= 1:
//     timestamp: delta-of-delta, zigzagged, bucketed
//       dod == 0        -> '0'
//       fits  7 bits    -> '10'   + 7 bits
//       fits  9 bits    -> '110'  + 9 bits
//       fits 12 bits    -> '1110' + 12 bits
//       else            -> '1111' + 64 bits
//     value: Gorilla-style XOR against the previous value
//       xor == 0                         -> '0'
//       fits the previous window         -> '1' '0' + window bits
//       new window                       -> '1' '1' + 5-bit leading-zero
//                                           count + 6-bit length (0 = 64)
//                                           + meaningful bits
//
// The stream is padded to a byte boundary with zero bits; the decoder
// verifies the padding so truncation and trailing garbage are detected
// even before the segment CRC check. Values are compressed at the bit
// level, so every double bit pattern round-trips exactly (NaN payloads,
// infinities, negative zero, denormals). Timestamps may be irregular; the
// only requirement is that consecutive deltas fit in int64.
//
// The point count is NOT part of the block — the segment frames each
// block with an explicit count and a CRC (segment.h).

#ifndef F2DB_STORAGE_CODEC_H_
#define F2DB_STORAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace f2db::storage {

/// Appends bits MSB-first into a byte string.
class BitWriter {
 public:
  void PutBit(bool bit);
  /// Appends the low `count` bits of `value`, most significant first.
  void PutBits(std::uint64_t value, int count);
  /// The stream so far, zero-padded to a byte boundary.
  std::string Take() { return std::move(bytes_); }
  std::size_t size_bytes() const { return bytes_.size(); }

 private:
  std::string bytes_;
  int free_bits_ = 0;  ///< Unused low bits of the last byte.
};

/// Reads bits MSB-first from a byte string; all reads are bounds-checked.
class BitReader {
 public:
  explicit BitReader(std::string_view bytes) : bytes_(bytes) {}

  /// False when the stream is exhausted.
  bool GetBit(bool* out);
  /// Reads `count` bits into the low bits of `*out`; false on overrun.
  bool GetBits(int count, std::uint64_t* out);
  /// Bits left in the stream (including byte padding).
  std::size_t remaining_bits() const {
    return bytes_.size() * 8 - consumed_bits_;
  }
  /// True when every remaining bit (at most 7 of padding) is zero.
  bool PaddingIsZero();

 private:
  std::string_view bytes_;
  std::size_t consumed_bits_ = 0;
};

/// Compresses aligned timestamp/value columns into one block.
/// `times.size()` must equal `values.size()`; empty input yields an empty
/// block.
Result<std::string> EncodeSeriesBlock(const std::vector<std::int64_t>& times,
                                      const std::vector<double>& values);

/// Decompresses a block of exactly `count` points. Truncated or malformed
/// input (including nonzero padding) fails with InvalidArgument and leaves
/// the outputs unspecified.
Status DecodeSeriesBlock(std::string_view block, std::size_t count,
                         std::vector<std::int64_t>* times,
                         std::vector<double>* values);

}  // namespace f2db::storage

#endif  // F2DB_STORAGE_CODEC_H_
