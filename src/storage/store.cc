#include "storage/store.h"

#include <dirent.h>
#include <stdio.h>

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "storage/fsio.h"

namespace f2db::storage {
namespace {

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("segment chain: " + what);
}

}  // namespace

std::string SegmentsDirFor(const std::string& data_dir) {
  return data_dir + "/segments";
}

Result<std::vector<SegmentData>> ReadSegmentChain(
    const std::string& segments_dir, const ManifestData& manifest) {
  std::vector<SegmentData> chain;
  chain.reserve(manifest.segments.size());
  const ManifestSegment* prev = nullptr;
  for (const ManifestSegment& entry : manifest.segments) {
    F2DB_ASSIGN_OR_RETURN(
        const std::string bytes,
        ReadFileToString(SegmentPath(segments_dir, entry.seq)));
    if (bytes.size() != entry.bytes) {
      return Corrupt(SegmentFileName(entry.seq) + " is " +
                     std::to_string(bytes.size()) + " bytes; manifest says " +
                     std::to_string(entry.bytes));
    }
    F2DB_ASSIGN_OR_RETURN(SegmentData segment, DecodeSegment(bytes));
    if (segment.seq != entry.seq ||
        segment.start_time != entry.start_time ||
        segment.count != entry.count ||
        segment.series.size() != entry.num_series) {
      return Corrupt(SegmentFileName(entry.seq) +
                     " disagrees with its manifest entry");
    }
    if (prev != nullptr) {
      if (entry.seq <= prev->seq) return Corrupt("non-ascending seq");
      if (entry.start_time !=
          prev->start_time + static_cast<std::int64_t>(prev->count)) {
        return Corrupt("gap between " + SegmentFileName(prev->seq) + " and " +
                       SegmentFileName(entry.seq));
      }
      if (!chain.empty()) {
        const SegmentData& first = chain.front();
        if (segment.series.size() != first.series.size()) {
          return Corrupt("series set differs across the chain");
        }
        for (std::size_t i = 0; i < segment.series.size(); ++i) {
          if (segment.series[i].node != first.series[i].node) {
            return Corrupt("series set differs across the chain");
          }
        }
      }
    }
    prev = &entry;
    chain.push_back(std::move(segment));
  }
  return chain;
}

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const std::string& data_dir) {
  const std::string dir = SegmentsDirFor(data_dir);
  F2DB_RETURN_IF_ERROR(EnsureDir(data_dir));
  F2DB_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<SegmentStore> store(new SegmentStore(dir));

  auto manifest = ReadManifestFile(dir);
  bool manifest_corrupt = false;
  if (manifest.ok()) {
    store->manifest_ = std::move(manifest).value();
    store->has_manifest_ = true;
  } else if (manifest.status().code() != StatusCode::kNotFound) {
    // An unparsable manifest is treated as absent for serving — recovery
    // has already fallen back to the checkpoint path, and the next
    // compaction reseals from scratch — but its bytes and the segments it
    // referenced are evidence, not garbage: a single flipped bit in the
    // manifest must not turn every sealed segment into a deletable
    // "orphan". Quarantine them as *.corrupt instead so the retention
    // offsets only the manifest records can still be repaired offline.
    // (NotFound simply means no compaction has run yet.)
    manifest_corrupt = true;
    F2DB_LOG(kError) << "segment manifest " << dir << "/" << kManifestFileName
                     << " is unreadable (" << manifest.status().ToString()
                     << "); quarantining it and unreferenced segments as"
                        " *.corrupt — retention offsets may be understated"
                        " until repaired";
    const std::string path = dir + "/" + kManifestFileName;
    if (::rename(path.c_str(), (path + ".corrupt").c_str()) != 0) {
      F2DB_LOG(kWarning) << "cannot quarantine " << path;
    }
  }

  // Remove stale temp files and segments the manifest does not reference
  // (left by a crash between a segment write and the manifest commit, or
  // between a retention commit and the file unlink). With a corrupt
  // manifest the referenced set is unknowable, so segments are
  // quarantined rather than removed.
  std::set<std::string> referenced;
  for (const ManifestSegment& entry : store->manifest_.segments) {
    referenced.insert(SegmentFileName(entry.seq));
  }
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return Status::Internal("opendir " + dir);
  std::vector<std::string> doomed;
  std::vector<std::string> quarantined;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const bool tmp = name.size() > 4 && name.ends_with(".tmp");
    const bool seg = name.starts_with("seg-") && name.ends_with(".f2ds");
    if (tmp) {
      doomed.push_back(name);
    } else if (seg && referenced.find(name) == referenced.end()) {
      (manifest_corrupt ? quarantined : doomed).push_back(name);
    }
  }
  ::closedir(handle);
  for (const std::string& name : doomed) {
    F2DB_RETURN_IF_ERROR(RemoveFile(dir + "/" + name));
  }
  for (const std::string& name : quarantined) {
    const std::string path = dir + "/" + name;
    if (::rename(path.c_str(), (path + ".corrupt").c_str()) != 0) {
      F2DB_LOG(kWarning) << "cannot quarantine " << path;
    }
  }
  return store;
}

bool SegmentStore::has_manifest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_manifest_;
}

ManifestData SegmentStore::manifest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifest_;
}

std::uint64_t SegmentStore::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifest_.segments.empty() ? 1 : manifest_.segments.back().seq + 1;
}

Result<std::uint64_t> SegmentStore::WriteSegment(const SegmentData& segment) {
  std::uint64_t bytes = 0;
  F2DB_RETURN_IF_ERROR(WriteSegmentFile(dir_, segment, &bytes));
  return bytes;
}

Status SegmentStore::CommitManifest(ManifestData next) {
  F2DB_RETURN_IF_ERROR(WriteManifestFile(dir_, next));
  std::lock_guard<std::mutex> lock(mutex_);
  manifest_ = std::move(next);
  has_manifest_ = true;
  return Status::OK();
}

Result<std::vector<SegmentData>> SegmentStore::ReadChain() const {
  return ReadSegmentChain(dir_, manifest());
}

Status SegmentStore::DeleteSegmentFile(std::uint64_t seq) {
  return RemoveFile(SegmentPath(dir_, seq));
}

std::uint64_t SegmentStore::live_segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifest_.segments.size();
}

std::uint64_t SegmentStore::live_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const ManifestSegment& entry : manifest_.segments) {
    total += entry.bytes;
  }
  return total;
}

}  // namespace f2db::storage
