// Durable file primitives for the storage engine, plus the storage crash
// hook the crash fuzzer uses to SIGKILL the process at named protocol
// points (DESIGN.md §13).
//
// Everything the storage layer persists — sealed segments and the
// manifest — commits through the same tmp + fsync + rename + dir-fsync
// sequence the checkpoint writer uses, so a crash at any instant leaves
// either the old file or the new file, never a torn one.

#ifndef F2DB_STORAGE_FSIO_H_
#define F2DB_STORAGE_FSIO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace f2db::storage {

/// Process-global crash hook: when set, FireStorageCrashHook invokes it
/// with the protocol point name. The crash fuzzer installs a hook that
/// SIGKILLs the process at a chosen point; production never sets it.
/// Points fired by this layer: "segment_written", "before_manifest_rename",
/// "after_manifest_rename". The engine additionally fires
/// "before_wal_delete" between the manifest commit and WAL truncation.
using StorageCrashHook = void (*)(const char* point);

/// Installs (or clears, with nullptr) the crash hook.
void SetStorageCrashHook(StorageCrashHook hook);

/// Invokes the installed hook, if any, with `point`.
void FireStorageCrashHook(const char* point);

/// Creates `dir` if it does not exist (one level; parents must exist).
Status EnsureDir(const std::string& dir);

/// fsyncs the directory itself so a rename/create inside it is durable.
Status SyncDir(const std::string& dir);

/// Whole-file read; NotFound when the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically publishes `bytes` at `path`: writes `<path>.tmp`, fsyncs it,
/// renames onto `path`, and fsyncs the directory. When the hook point
/// names are non-null, FireStorageCrashHook runs immediately before and
/// after the rename — the commit point of the protocol.
Status WriteFileDurably(const std::string& path, std::string_view bytes,
                        const char* hook_before_rename = nullptr,
                        const char* hook_after_rename = nullptr);

/// Unlinks `path`; missing files are OK (idempotent delete).
Status RemoveFile(const std::string& path);

}  // namespace f2db::storage

#endif  // F2DB_STORAGE_FSIO_H_
