#include "storage/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace f2db::storage {
namespace {

std::atomic<StorageCrashHook> g_crash_hook{nullptr};

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

}  // namespace

void SetStorageCrashHook(StorageCrashHook hook) {
  g_crash_hook.store(hook, std::memory_order_release);
}

void FireStorageCrashHook(const char* point) {
  if (StorageCrashHook hook = g_crash_hook.load(std::memory_order_acquire)) {
    hook(point);
  }
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal(Errno("mkdir", dir));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal(Errno("open dir", dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(Errno("fsync dir", dir));
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("open", path));
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal(Errno("read", path));
    }
    if (n == 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileDurably(const std::string& path, std::string_view bytes,
                        const char* hook_before_rename,
                        const char* hook_after_rename) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(Errno("open", tmp));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal(Errno("write", tmp));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal(Errno("fsync", tmp));
  }
  ::close(fd);
  if (hook_before_rename != nullptr) FireStorageCrashHook(hook_before_rename);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal(Errno("rename", path));
  }
  if (hook_after_rename != nullptr) FireStorageCrashHook(hook_after_rename);
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return SyncDir(dir);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::Internal(Errno("unlink", path));
}

}  // namespace f2db::storage
