#include "storage/segment.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "storage/codec.h"
#include "storage/fsio.h"

namespace f2db::storage {
namespace {

constexpr std::size_t kHeaderSize = 40;
constexpr std::size_t kHeaderCrcOffset = 36;
constexpr std::size_t kBlockHeaderSize = 16;

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("segment: ") + what);
}

}  // namespace

std::string SegmentFileName(std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08" PRIu64 ".f2ds", seq);
  return name;
}

std::string SegmentPath(const std::string& dir, std::uint64_t seq) {
  return dir + "/" + SegmentFileName(seq);
}

Result<std::string> EncodeSegment(const SegmentData& segment) {
  // Block headers carry count and the series count as u32; a larger
  // segment would encode a file its own decoder rejects ("block count
  // mismatch"), so refuse at encode time instead of producing it.
  constexpr std::uint64_t kU32Max = 0xffffffffu;
  if (segment.count > kU32Max || segment.series.size() > kU32Max) {
    return Status::InvalidArgument(
        "segment: count or series count exceeds format v1's u32 range");
  }
  std::string out;
  out.append(kSegmentMagic, 7);
  out.push_back(static_cast<char>(kSegmentFormatVersion));
  PutU64(&out, segment.seq);
  PutU64(&out, static_cast<std::uint64_t>(segment.start_time));
  PutU64(&out, segment.count);
  PutU32(&out, static_cast<std::uint32_t>(segment.series.size()));
  PutU32(&out, Crc32c(out.data(), out.size()));

  std::vector<std::int64_t> times(segment.count);
  for (std::uint64_t i = 0; i < segment.count; ++i) {
    times[i] = segment.start_time + static_cast<std::int64_t>(i);
  }
  for (const SegmentSeries& series : segment.series) {
    if (series.values.size() != segment.count) {
      return Status::InvalidArgument("segment: series length != count");
    }
    F2DB_ASSIGN_OR_RETURN(const std::string enc,
                          EncodeSeriesBlock(times, series.values));
    PutU32(&out, series.node);
    PutU32(&out, static_cast<std::uint32_t>(segment.count));
    PutU32(&out, static_cast<std::uint32_t>(enc.size()));
    // The CRC spans the 12 block-header bytes just appended AND the
    // payload, so a flip anywhere in the block — including the node id —
    // is caught by decode.
    const std::uint32_t meta_crc = Crc32c(out.data() + out.size() - 12, 12);
    PutU32(&out, Crc32c(enc.data(), enc.size(), meta_crc));
    out += enc;
  }
  return out;
}

Result<SegmentData> DecodeSegment(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) return Corrupt("short header");
  if (std::memcmp(bytes.data(), kSegmentMagic, 7) != 0) {
    return Corrupt("bad magic");
  }
  const std::uint8_t version = static_cast<std::uint8_t>(bytes[7]);
  if (version != kSegmentFormatVersion) return Corrupt("unsupported version");
  const std::uint32_t header_crc = GetU32(bytes.data() + kHeaderCrcOffset);
  if (header_crc != Crc32c(bytes.data(), kHeaderCrcOffset)) {
    return Corrupt("header CRC mismatch");
  }

  SegmentData segment;
  segment.seq = GetU64(bytes.data() + 8);
  segment.start_time = static_cast<std::int64_t>(GetU64(bytes.data() + 16));
  segment.count = GetU64(bytes.data() + 24);
  const std::uint32_t num_series = GetU32(bytes.data() + 32);
  segment.series.reserve(num_series);

  std::size_t offset = kHeaderSize;
  std::vector<std::int64_t> times;
  for (std::uint32_t s = 0; s < num_series; ++s) {
    if (bytes.size() - offset < kBlockHeaderSize) {
      return Corrupt("truncated block header");
    }
    SegmentSeries series;
    series.node = GetU32(bytes.data() + offset);
    const std::uint32_t count = GetU32(bytes.data() + offset + 4);
    const std::uint32_t enc_len = GetU32(bytes.data() + offset + 8);
    const std::uint32_t enc_crc = GetU32(bytes.data() + offset + 12);
    const std::uint32_t meta_crc = Crc32c(bytes.data() + offset, 12);
    offset += kBlockHeaderSize;
    if (count != segment.count) return Corrupt("block count mismatch");
    if (bytes.size() - offset < enc_len) return Corrupt("truncated block");
    const std::string_view enc = bytes.substr(offset, enc_len);
    offset += enc_len;
    if (enc_crc != Crc32c(enc.data(), enc.size(), meta_crc)) {
      return Corrupt("block CRC mismatch");
    }
    F2DB_RETURN_IF_ERROR(
        DecodeSeriesBlock(enc, count, &times, &series.values));
    for (std::uint32_t i = 0; i < count; ++i) {
      if (times[i] != segment.start_time + static_cast<std::int64_t>(i)) {
        return Corrupt("irregular time axis");
      }
    }
    segment.series.push_back(std::move(series));
  }
  if (offset != bytes.size()) return Corrupt("trailing bytes");
  return segment;
}

Status WriteSegmentFile(const std::string& dir, const SegmentData& segment,
                        std::uint64_t* bytes_written) {
  F2DB_ASSIGN_OR_RETURN(const std::string bytes, EncodeSegment(segment));
  F2DB_RETURN_IF_ERROR(
      WriteFileDurably(SegmentPath(dir, segment.seq), bytes));
  if (bytes_written != nullptr) *bytes_written = bytes.size();
  FireStorageCrashHook("segment_written");
  return Status::OK();
}

Result<SegmentData> ReadSegmentFile(const std::string& path) {
  F2DB_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  auto decoded = DecodeSegment(bytes);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  path + ": " + decoded.status().message());
  }
  return decoded;
}

}  // namespace f2db::storage
