#include "storage/codec.h"

#include <bit>

namespace f2db::storage {
namespace {

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view data, std::size_t* pos, std::uint64_t* out) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= data.size()) return false;
    const std::uint8_t byte = static_cast<std::uint8_t>(data[*pos]);
    ++*pos;
    if (shift == 63 && byte > 0x01) {
      // The 10th byte holds only bit 63; anything beyond would be
      // silently discarded by the shift, so overlong/non-canonical
      // encodings are rejected like every other malformed input.
      return false;
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;  // More than 10 continuation bytes: malformed.
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("series block: ") + what);
}

}  // namespace

void BitWriter::PutBit(bool bit) {
  if (free_bits_ == 0) {
    bytes_.push_back(0);
    free_bits_ = 8;
  }
  if (bit) {
    bytes_.back() |= static_cast<char>(1u << (free_bits_ - 1));
  }
  --free_bits_;
}

void BitWriter::PutBits(std::uint64_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    PutBit((value >> i) & 1u);
  }
}

bool BitReader::GetBit(bool* out) {
  if (consumed_bits_ >= bytes_.size() * 8) return false;
  const std::size_t byte = consumed_bits_ / 8;
  const int bit = 7 - static_cast<int>(consumed_bits_ % 8);
  *out = (static_cast<std::uint8_t>(bytes_[byte]) >> bit) & 1u;
  ++consumed_bits_;
  return true;
}

bool BitReader::GetBits(int count, std::uint64_t* out) {
  std::uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    bool bit = false;
    if (!GetBit(&bit)) return false;
    value = (value << 1) | static_cast<std::uint64_t>(bit);
  }
  *out = value;
  return true;
}

bool BitReader::PaddingIsZero() {
  if (remaining_bits() >= 8) return false;
  bool bit = false;
  while (GetBit(&bit)) {
    if (bit) return false;
  }
  return true;
}

Result<std::string> EncodeSeriesBlock(const std::vector<std::int64_t>& times,
                                      const std::vector<double>& values) {
  if (times.size() != values.size()) {
    return Status::InvalidArgument("series block: column lengths differ");
  }
  std::string out;
  if (times.empty()) return out;

  PutVarint(&out, ZigZag(times[0]));
  BitWriter bits;
  bits.PutBits(std::bit_cast<std::uint64_t>(values[0]), 64);

  std::int64_t prev_time = times[0];
  std::int64_t prev_delta = 0;
  std::uint64_t prev_word = std::bit_cast<std::uint64_t>(values[0]);
  int win_lead = -1;  ///< Leading-zero count of the open window; -1 = none.
  int win_len = 0;    ///< Meaningful-bit count of the open window.

  for (std::size_t i = 1; i < times.size(); ++i) {
    const std::int64_t delta = times[i] - prev_time;
    const std::int64_t dod = delta - prev_delta;
    prev_delta = delta;
    prev_time = times[i];
    const std::uint64_t z = ZigZag(dod);
    if (dod == 0) {
      bits.PutBit(false);
    } else if (z < (1u << 7)) {
      bits.PutBits(0b10, 2);
      bits.PutBits(z, 7);
    } else if (z < (1u << 9)) {
      bits.PutBits(0b110, 3);
      bits.PutBits(z, 9);
    } else if (z < (1u << 12)) {
      bits.PutBits(0b1110, 4);
      bits.PutBits(z, 12);
    } else {
      bits.PutBits(0b1111, 4);
      bits.PutBits(z, 64);
    }

    const std::uint64_t word = std::bit_cast<std::uint64_t>(values[i]);
    const std::uint64_t x = word ^ prev_word;
    prev_word = word;
    if (x == 0) {
      bits.PutBit(false);
      continue;
    }
    bits.PutBit(true);
    int lead = std::countl_zero(x);
    if (lead > 31) lead = 31;  // 5-bit field; a wider window is still exact.
    const int trail = std::countr_zero(x);
    const int len = 64 - lead - trail;
    const int win_trail = 64 - win_lead - win_len;
    if (win_lead >= 0 && lead >= win_lead && trail >= win_trail) {
      bits.PutBit(false);
      bits.PutBits(x >> win_trail, win_len);
    } else {
      bits.PutBit(true);
      bits.PutBits(static_cast<std::uint64_t>(lead), 5);
      bits.PutBits(static_cast<std::uint64_t>(len) & 63, 6);  // 64 encodes as 0.
      bits.PutBits(x >> trail, len);
      win_lead = lead;
      win_len = len;
    }
  }
  out += bits.Take();
  return out;
}

Status DecodeSeriesBlock(std::string_view block, std::size_t count,
                         std::vector<std::int64_t>* times,
                         std::vector<double>* values) {
  times->clear();
  values->clear();
  if (count == 0) {
    if (!block.empty()) return Malformed("nonempty block for zero points");
    return Status::OK();
  }
  times->reserve(count);
  values->reserve(count);

  std::size_t pos = 0;
  std::uint64_t z0 = 0;
  if (!GetVarint(block, &pos, &z0)) return Malformed("truncated first time");
  BitReader bits(block.substr(pos));
  std::uint64_t word = 0;
  if (!bits.GetBits(64, &word)) return Malformed("truncated first value");

  std::int64_t time = UnZigZag(z0);
  times->push_back(time);
  values->push_back(std::bit_cast<double>(word));

  std::int64_t prev_delta = 0;
  int win_lead = -1;
  int win_len = 0;

  for (std::size_t i = 1; i < count; ++i) {
    // Timestamp: read the unary bucket prefix, then the zigzagged DoD.
    bool bit = false;
    int prefix = 0;
    while (prefix < 4) {
      if (!bits.GetBit(&bit)) return Malformed("truncated timestamp prefix");
      if (!bit) break;
      ++prefix;
    }
    std::int64_t dod = 0;
    if (prefix > 0) {
      static constexpr int kWidth[] = {0, 7, 9, 12, 64};
      std::uint64_t z = 0;
      if (!bits.GetBits(kWidth[prefix], &z)) {
        return Malformed("truncated timestamp delta");
      }
      dod = UnZigZag(z);
    }
    prev_delta += dod;
    time += prev_delta;
    times->push_back(time);

    // Value: XOR control bits.
    if (!bits.GetBit(&bit)) return Malformed("truncated value control");
    if (!bit) {
      values->push_back(std::bit_cast<double>(word));
      continue;
    }
    if (!bits.GetBit(&bit)) return Malformed("truncated window control");
    if (bit) {
      std::uint64_t lead = 0;
      std::uint64_t len = 0;
      if (!bits.GetBits(5, &lead) || !bits.GetBits(6, &len)) {
        return Malformed("truncated window header");
      }
      if (len == 0) len = 64;
      if (lead + len > 64) return Malformed("window exceeds 64 bits");
      win_lead = static_cast<int>(lead);
      win_len = static_cast<int>(len);
    } else if (win_lead < 0) {
      return Malformed("window reuse before any window");
    }
    std::uint64_t meaningful = 0;
    if (!bits.GetBits(win_len, &meaningful)) {
      return Malformed("truncated value bits");
    }
    word ^= meaningful << (64 - win_lead - win_len);
    values->push_back(std::bit_cast<double>(word));
  }

  if (!bits.PaddingIsZero()) return Malformed("trailing garbage");
  return Status::OK();
}

}  // namespace f2db::storage
