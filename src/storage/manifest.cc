#include "storage/manifest.h"

#include <cinttypes>
#include <cstdio>

#include "common/crc32c.h"
#include "storage/fsio.h"

namespace f2db::storage {
namespace {

/// %.17g round-trips every double exactly (the checkpoint convention).
std::string RenderDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("manifest: ") + what);
}

/// Pops the next '\n'-terminated line; false when the text is exhausted.
bool NextLine(std::string_view* text, std::string* line) {
  if (text->empty()) return false;
  const std::size_t eol = text->find('\n');
  if (eol == std::string_view::npos) {
    line->assign(text->data(), text->size());
    text->remove_prefix(text->size());
  } else {
    line->assign(text->data(), eol);
    text->remove_prefix(eol + 1);
  }
  return true;
}

}  // namespace

std::string SerializeManifest(const ManifestData& manifest) {
  std::string body = "f2db-manifest v1\n";
  char line[256];
  std::snprintf(line, sizeof(line), "epoch %" PRIu64 "\n", manifest.wal_epoch);
  body += line;
  std::snprintf(line, sizeof(line), "sealed %" PRId64 " %" PRId64 "\n",
                manifest.sealed_from, manifest.sealed_to);
  body += line;
  std::snprintf(line, sizeof(line),
                "counters %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 "\n",
                manifest.inserts, manifest.time_advances, manifest.reestimates,
                manifest.quarantines, manifest.refit_failures);
  body += line;
  std::snprintf(line, sizeof(line), "dropped %" PRIu64 "\n",
                manifest.records_dropped);
  body += line;
  std::snprintf(line, sizeof(line), "offsets %zu\n", manifest.offsets.size());
  body += line;
  for (const auto& [node, sum] : manifest.offsets) {
    std::snprintf(line, sizeof(line), "%" PRIu32 " ", node);
    body += line;
    body += RenderDouble(sum);
    body += '\n';
  }
  std::snprintf(line, sizeof(line), "segments %zu\n",
                manifest.segments.size());
  body += line;
  for (const ManifestSegment& seg : manifest.segments) {
    std::snprintf(line, sizeof(line),
                  "%" PRIu64 " %" PRId64 " %" PRIu64 " %" PRIu32 " %" PRIu64
                  "\n",
                  seg.seq, seg.start_time, seg.count, seg.num_series,
                  seg.bytes);
    body += line;
  }
  std::snprintf(line, sizeof(line), "crc %08x\n",
                Crc32c(body.data(), body.size()));
  body += line;
  return body;
}

Result<ManifestData> ParseManifest(std::string_view text) {
  const std::size_t trailer = text.rfind("crc ");
  if (trailer == std::string_view::npos || trailer == 0 ||
      text[trailer - 1] != '\n' || text.back() != '\n' ||
      text.find('\n', trailer) != text.size() - 1) {
    return Malformed("missing crc trailer");
  }
  std::uint32_t stored_crc = 0;
  if (std::sscanf(text.data() + trailer, "crc %8" SCNx32, &stored_crc) != 1) {
    return Malformed("unparsable crc trailer");
  }
  std::string_view body = text.substr(0, trailer);
  if (stored_crc != Crc32c(body.data(), body.size())) {
    return Malformed("crc mismatch");
  }

  ManifestData manifest;
  std::string line;
  if (!NextLine(&body, &line) || line != "f2db-manifest v1") {
    return Malformed("bad header");
  }
  if (!NextLine(&body, &line) ||
      std::sscanf(line.c_str(), "epoch %" SCNu64, &manifest.wal_epoch) != 1) {
    return Malformed("bad epoch line");
  }
  if (!NextLine(&body, &line) ||
      std::sscanf(line.c_str(), "sealed %" SCNd64 " %" SCNd64,
                  &manifest.sealed_from, &manifest.sealed_to) != 2) {
    return Malformed("bad sealed line");
  }
  if (!NextLine(&body, &line) ||
      std::sscanf(line.c_str(),
                  "counters %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                  " %" SCNu64,
                  &manifest.inserts, &manifest.time_advances,
                  &manifest.reestimates, &manifest.quarantines,
                  &manifest.refit_failures) != 5) {
    return Malformed("bad counters line");
  }
  if (!NextLine(&body, &line) ||
      std::sscanf(line.c_str(), "dropped %" SCNu64,
                  &manifest.records_dropped) != 1) {
    return Malformed("bad dropped line");
  }
  std::size_t num_offsets = 0;
  if (!NextLine(&body, &line) ||
      std::sscanf(line.c_str(), "offsets %zu", &num_offsets) != 1) {
    return Malformed("bad offsets line");
  }
  manifest.offsets.reserve(num_offsets);
  for (std::size_t i = 0; i < num_offsets; ++i) {
    std::uint32_t node = 0;
    double sum = 0.0;
    if (!NextLine(&body, &line) ||
        std::sscanf(line.c_str(), "%" SCNu32 " %lg", &node, &sum) != 2) {
      return Malformed("bad offset entry");
    }
    manifest.offsets.emplace_back(node, sum);
  }
  std::size_t num_segments = 0;
  if (!NextLine(&body, &line) ||
      std::sscanf(line.c_str(), "segments %zu", &num_segments) != 1) {
    return Malformed("bad segments line");
  }
  manifest.segments.reserve(num_segments);
  for (std::size_t i = 0; i < num_segments; ++i) {
    ManifestSegment seg;
    if (!NextLine(&body, &line) ||
        std::sscanf(line.c_str(),
                    "%" SCNu64 " %" SCNd64 " %" SCNu64 " %" SCNu32 " %" SCNu64,
                    &seg.seq, &seg.start_time, &seg.count, &seg.num_series,
                    &seg.bytes) != 5) {
      return Malformed("bad segment entry");
    }
    manifest.segments.push_back(seg);
  }
  if (NextLine(&body, &line) && !line.empty()) {
    return Malformed("trailing content");
  }
  return manifest;
}

Status WriteManifestFile(const std::string& dir,
                         const ManifestData& manifest) {
  return WriteFileDurably(dir + "/" + kManifestFileName,
                          SerializeManifest(manifest),
                          "before_manifest_rename", "after_manifest_rename");
}

Result<ManifestData> ReadManifestFile(const std::string& dir) {
  F2DB_ASSIGN_OR_RETURN(const std::string text,
                        ReadFileToString(dir + "/" + kManifestFileName));
  auto parsed = ParseManifest(text);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  dir + "/" + kManifestFileName + ": " +
                      parsed.status().message());
  }
  return parsed;
}

}  // namespace f2db::storage
