// The segment manifest: the commit point of compaction (DESIGN.md §13).
//
// A manifest names the shard's sealed segment chain, the WAL epoch from
// which replay must resume, the engine counters at the seal cut, and the
// per-base-series sums retention has dropped (so history sums — and with
// them derivation weights — stay exact after old raw history is deleted).
//
// Format v1 is line-oriented text with a CRC32C trailer, mirroring
// checkpoint v1:
//
//   f2db-manifest v1
//   epoch <wal epoch>
//   sealed <from> <to>
//   counters <inserts> <advances> <reestimates> <quarantines> <refit-fails>
//   dropped <records>
//   offsets <k>
//   <node> <sum %.17g>            x k
//   segments <m>
//   <seq> <start> <count> <num_series> <bytes>    x m
//   crc <crc32c of everything above, %08x>
//
// The manifest is published by atomic rename; recovery treats whichever
// of (checkpoint, manifest) carries the strictly higher WAL epoch as the
// base artifact.

#ifndef F2DB_STORAGE_MANIFEST_H_
#define F2DB_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace f2db::storage {

/// File name of the manifest inside a segments directory.
inline constexpr char kManifestFileName[] = "MANIFEST";

/// One chain entry: the identity and footprint of a sealed segment.
struct ManifestSegment {
  std::uint64_t seq = 0;
  std::int64_t start_time = 0;
  std::uint64_t count = 0;
  std::uint32_t num_series = 0;
  std::uint64_t bytes = 0;
};

/// The full durable state of a shard's segment chain.
struct ManifestData {
  /// Replay resumes from this WAL epoch; everything older is covered by
  /// the chain (plus the rewritten live tail at the head of this epoch).
  std::uint64_t wal_epoch = 0;
  /// Sealed period range [sealed_from, sealed_to) across the chain,
  /// including ranges later dropped by retention.
  std::int64_t sealed_from = 0;
  std::int64_t sealed_to = 0;
  /// Engine counters at the seal cut (restored on segment-based recovery).
  std::uint64_t inserts = 0;
  std::uint64_t time_advances = 0;
  std::uint64_t reestimates = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t refit_failures = 0;
  /// Total raw records retention has dropped over the shard's lifetime.
  std::uint64_t records_dropped = 0;
  /// Per-base-node sum of retention-dropped observations, ascending by
  /// node. history_sum(node) = live Sum() + aggregated offset.
  std::vector<std::pair<std::uint32_t, double>> offsets;
  /// The live chain, ascending and contiguous by (seq, time range).
  std::vector<ManifestSegment> segments;
};

/// Renders the manifest text including the CRC trailer.
std::string SerializeManifest(const ManifestData& manifest);

/// Parses and CRC-verifies a manifest image.
Result<ManifestData> ParseManifest(std::string_view text);

/// Durably publishes the manifest in `dir` via atomic rename, firing the
/// "before_manifest_rename"/"after_manifest_rename" crash hooks around
/// the commit.
Status WriteManifestFile(const std::string& dir, const ManifestData& manifest);

/// Reads and parses "<dir>/MANIFEST"; NotFound when absent.
Result<ManifestData> ReadManifestFile(const std::string& dir);

}  // namespace f2db::storage

#endif  // F2DB_STORAGE_MANIFEST_H_
