// Sealed segment files: the immutable columnar history format
// (DESIGN.md §13).
//
// A segment seals one aligned slice [start_time, start_time + count) of
// every base series of a shard's cube. On-disk layout (little-endian):
//
//   header:   "F2DBSEG" | u8 version (kSegmentFormatVersion) |
//             u64 seq | i64 start_time | u64 count | u32 num_series |
//             u32 crc32c(header bytes so far)              = 40 bytes
//   block x num_series:
//             u32 node | u32 count | u32 enc_len |
//             u32 crc32c(block header + enc) | enc          (codec.h block)
//
// Timestamps inside a sealed segment are the dense period index
// start_time + i, which the delta-of-delta codec collapses to roughly one
// bit per point. Decode verifies the magic, version byte, both CRC
// levels, the per-block counts, the regular time axis, and that no bytes
// trail the last block — a torn, truncated, or bit-flipped segment is
// rejected, never misparsed.

#ifndef F2DB_STORAGE_SEGMENT_H_
#define F2DB_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace f2db::storage {

/// On-disk format version; bumped on any layout change so old binaries
/// fail loudly instead of misparsing (checked by the golden-file tests).
inline constexpr std::uint8_t kSegmentFormatVersion = 1;

/// The 7 magic bytes opening every segment file.
inline constexpr char kSegmentMagic[] = "F2DBSEG";

/// One base series' slice inside a segment.
struct SegmentSeries {
  std::uint32_t node = 0;       ///< Base node id in the shard's graph.
  std::vector<double> values;   ///< Exactly `count` observations.
};

/// A decoded segment: an aligned history slice across all base series.
struct SegmentData {
  std::uint64_t seq = 0;        ///< Position in the shard's segment chain.
  std::int64_t start_time = 0;  ///< First period sealed.
  std::uint64_t count = 0;      ///< Periods sealed per series.
  std::vector<SegmentSeries> series;
};

/// "seg-00000042.f2ds" for seq 42.
std::string SegmentFileName(std::uint64_t seq);

/// "<dir>/seg-00000042.f2ds".
std::string SegmentPath(const std::string& dir, std::uint64_t seq);

/// Serializes a segment into its on-disk byte form.
Result<std::string> EncodeSegment(const SegmentData& segment);

/// Parses and fully validates a segment image (both CRC levels, counts,
/// regular time axis, no trailing bytes).
Result<SegmentData> DecodeSegment(std::string_view bytes);

/// Durably publishes `segment` under `dir` (tmp + fsync + rename +
/// dir-fsync) and reports the encoded size. Fires the "segment_written"
/// crash hook after the file is durable.
Status WriteSegmentFile(const std::string& dir, const SegmentData& segment,
                        std::uint64_t* bytes_written);

/// Reads and validates one segment file.
Result<SegmentData> ReadSegmentFile(const std::string& path);

}  // namespace f2db::storage

#endif  // F2DB_STORAGE_SEGMENT_H_
