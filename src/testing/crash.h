// Crash fuzzing: kill -9 a durable engine mid-workload, recover, compare.
//
// One RunCrashFuzz() iteration is a differential crash test driven entirely
// by a 64-bit seed:
//   1. generate a workload (the differential harness's seeded generator)
//      and flatten its maintenance ops into an insert-attempt list;
//   2. fork() a child that opens a durable engine (fsync=always) over a
//      fresh data directory, loads the configuration (logged as a WAL
//      kCatalog record), executes a seed-chosen prefix of the attempts —
//      optionally taking a mid-workload checkpoint — and then SIGKILLs
//      itself: no destructors, no flushes, exactly what a power cut leaves;
//   3. optionally tear the WAL tail: truncate a seed-chosen number of
//      bytes off the final record (only when that record is an insert, so
//      the expected surviving prefix stays well-defined);
//   4. reopen the engine in the parent — checkpoint load + WAL replay —
//      and compare against a ReferenceOracle replaying the accepted-insert
//      prefix (minus the torn record): forecasts at every address within
//      the differential tolerances, plus exact agreement on the time
//      frontier, advance count, pending-insert count, and insert counter.
//
// The child disables re-estimation so the WAL holds only kCatalog +
// kInsert records and replay is exactly reproducible by the oracle; the
// model-install and quarantine record kinds are covered by the recovery
// integration tests, where their effect is directly assertable.
//
// With num_shards > 1 the iteration crashes a ShardedEngine instead: a
// scatter-gather workload (complete insert rounds only, so shard and
// global frontiers stay reconcilable), NO configuration (every per-shard
// WAL holds only kInsert records), per-shard directories under the data
// dir, and the torn tail lands on the WAL of the shard that owns the last
// accepted insert — one shard recovers through truncation while its
// siblings replay intact. Recovery then checks every shard independently:
// per-shard insert/advance/pending counters derived from the accepted
// prefix, and the recovered base series values cell by cell.
//
// fork() requires a single-threaded caller (the child inherits only the
// calling thread); run iterations before starting servers or pools.

#ifndef F2DB_TESTING_CRASH_H_
#define F2DB_TESTING_CRASH_H_

#include <cstdint>
#include <string>

namespace f2db::testing {

struct CrashFuzzOptions {
  /// Drives everything: workload, kill point, checkpoint point, torn-tail
  /// choice and length.
  std::uint64_t seed = 0;
  /// Scratch directory for this iteration's WAL + checkpoint; removed and
  /// recreated at the start, removed again on success.
  std::string data_dir;
  /// Keep the data directory on failure (replay/debugging).
  bool keep_dir_on_failure = true;
  /// 1 crashes a single durable F2dbEngine (the original mode). > 1
  /// crashes a ShardedEngine with this many partitions: per-shard WAL
  /// directories, a scatter-gather workload, no configuration, and the
  /// torn tail injected into the shard owning the last accepted insert.
  std::size_t num_shards = 1;
};

struct CrashFuzzReport {
  bool ok = false;
  /// First divergence, prefixed with the seed for replay.
  std::string failure;

  // What the iteration exercised (for coverage accounting in tests).
  std::size_t attempts_total = 0;     ///< flattened insert attempts in spec
  std::size_t attempts_executed = 0;  ///< attempts before the kill
  std::size_t inserts_accepted = 0;   ///< accepted pre-crash (incl. torn)
  bool killed_by_sigkill = false;
  bool checkpoint_taken = false;
  bool torn_tail_injected = false;
  /// A mid-workload compaction was attempted; `compaction_crash_point` is
  /// the storage hook the SIGKILL landed on ("" when the compaction was
  /// allowed to complete).
  bool compaction_attempted = false;
  std::string compaction_crash_point;
  std::size_t records_replayed = 0;   ///< engine recovery counter
};

/// Runs one seeded crash-recovery iteration (see file comment).
CrashFuzzReport RunCrashFuzz(const CrashFuzzOptions& options);

/// Removes `dir` recursively (files and subdirectories — a sharded data
/// dir nests shard-<k> directories). Shared by the fuzzer and the
/// durability tests' scratch-dir handling.
void RemoveDirectoryTree(const std::string& dir);

}  // namespace f2db::testing

#endif  // F2DB_TESTING_CRASH_H_
