#include "testing/property.h"

#include <cstdlib>
#include <limits>

namespace f2db::testing {

namespace {

bool ParseUint64(const char* text, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

}  // namespace

std::uint64_t PropertySeed(std::uint64_t fallback) {
  std::uint64_t seed = 0;
  if (ParseUint64(std::getenv("F2DB_PROPERTY_SEED"), &seed)) return seed;
  return fallback;
}

bool PropertySeedFromEnv() {
  std::uint64_t seed = 0;
  return ParseUint64(std::getenv("F2DB_PROPERTY_SEED"), &seed);
}

std::size_t PropertyBudgetMultiplier() {
  std::uint64_t value = 0;
  if (!ParseUint64(std::getenv("F2DB_PROPERTY_ITERATIONS"), &value)) return 1;
  if (value == 0) return 1;
  return static_cast<std::size_t>(value);
}

std::size_t PropertyIterations(std::size_t base) {
  const std::size_t multiplier = PropertyBudgetMultiplier();
  if (base != 0 &&
      multiplier > std::numeric_limits<std::size_t>::max() / base) {
    return std::numeric_limits<std::size_t>::max();
  }
  return base * multiplier;
}

std::string ReplayHint(std::uint64_t seed) {
  return "replay: F2DB_PROPERTY_SEED=" + std::to_string(seed) +
         " ctest -R Property --output-on-failure";
}

std::uint64_t SubSeed(std::uint64_t base, const std::string& label) {
  // FNV-1a over the label folded into the base seed; stable across runs
  // and platforms.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : label) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return base ^ hash;
}

}  // namespace f2db::testing
