// ReferenceOracle: a deliberately naive reimplementation of the paper's
// query semantics, used as the ground truth of the differential harness.
//
// The oracle re-implements — from the paper's equations, NOT from the
// engine — everything a forecast query's value depends on:
//   - cube aggregation (Section II-A): an aggregate series is the plain
//     sum over every base cell it covers, recomputed from scratch on every
//     access (allocation-happy, single-threaded, no incremental state);
//   - derivation-scheme forecasting (Eqs. 1-3): forecast(t) =
//     k_{S->t} * sum_s forecast(s) with k = h_t / sum h_s over the full
//     stored history, where a model-less source recurses into its own
//     stored scheme exactly once per level (bounded like the engine's
//     derived fallback);
//   - maintenance (Section V): inserts buffer per time stamp and the cube
//     advances when a period is complete, updating every model by one
//     observation;
//   - configuration evaluation (Section II-D): SMAPE of a derived test
//     forecast against held-out actuals.
//
// It deliberately shares NO code with src/engine or src/core: the cube
// structure is plain vectors (no TimeSeriesGraph), addresses are resolved
// by walking parent maps, and weights/aggregates are recomputed by brute
// force. The only shared substrate is ts/ (the ForecastModel interface),
// because the harness must feed bit-identical fitted models to both sides
// to compare the pipelines around them.

#ifndef F2DB_TESTING_ORACLE_H_
#define F2DB_TESTING_ORACLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ts/model.h"

namespace f2db::testing {

/// Plain description of one categorical dimension: levels from finest to
/// coarsest with parent maps, mirroring the paper's functional
/// dependencies. Level index num_levels() denotes the implicit ALL level.
struct OracleDimension {
  std::string name;
  /// Declared level names, finest first.
  std::vector<std::string> level_names;
  /// Member value names per declared level.
  std::vector<std::vector<std::string>> values;
  /// parents[l][v] = value index at level l+1 that v at level l rolls up
  /// into. The topmost declared level maps implicitly into ALL.
  std::vector<std::vector<std::size_t>> parents;

  std::size_t num_levels() const { return level_names.size(); }
  std::size_t num_values(std::size_t level) const {
    return level >= values.size() ? 1 : values[level].size();
  }
};

/// One (level, value) coordinate per dimension; level == num_levels()
/// means ALL (value 0).
struct OracleAddress {
  struct Coordinate {
    std::size_t level = 0;
    std::size_t value = 0;
    bool operator==(const Coordinate&) const = default;
    auto operator<=>(const Coordinate&) const = default;
  };
  std::vector<Coordinate> coords;

  bool operator==(const OracleAddress&) const = default;
  auto operator<=>(const OracleAddress&) const = default;

  /// Stable rendering, e.g. "1:0|2:0" — map key and diagnostics.
  std::string Key() const;
};

/// Outcome of ReferenceOracle::Insert, mirroring the engine's maintenance
/// contract without sharing its Status plumbing.
enum class OracleInsert {
  kAccepted,       ///< Buffered (and possibly advanced the cube).
  kBehindFrontier, ///< time < frontier: the period is already stored.
  kDuplicate,      ///< This cell already has a buffered value for `time`.
  kNonFinite,      ///< NaN/Inf measure value.
  kUnknownCell,    ///< Cell index out of range.
};

/// The single-threaded reference implementation.
class ReferenceOracle {
 public:
  explicit ReferenceOracle(std::vector<OracleDimension> dims);

  std::size_t num_dimensions() const { return dims_.size(); }
  const OracleDimension& dimension(std::size_t d) const { return dims_[d]; }

  /// Base cells are numbered 0..num_base_cells() in odometer order over the
  /// level-0 values (dimension 0 most significant).
  std::size_t num_base_cells() const;

  /// The level-0 value index per dimension of a base cell.
  std::vector<std::size_t> CellValues(std::size_t cell) const;

  /// The level-0-everywhere address of a base cell.
  OracleAddress CellAddress(std::size_t cell) const;

  /// Every address of the cube (all (level, value) combinations across
  /// dimensions, ALL included), in deterministic odometer order.
  std::vector<OracleAddress> AllAddresses() const;

  /// True when `address` has valid ranges for this cube.
  bool IsValid(const OracleAddress& address) const;

  /// True when base cell `cell` rolls up into `address` (ancestor test by
  /// repeated parent lookups in every dimension).
  bool Covers(const OracleAddress& address, std::size_t cell) const;

  // ------------------------------------------------------------- data

  /// Installs the stored history of one base cell. All base series must be
  /// set with equal lengths before maintenance/queries run.
  void SetBaseSeries(std::size_t cell, std::vector<double> values);

  /// Length of the stored history (== the frontier time index; series
  /// start at time 0).
  std::size_t series_length() const;

  /// Next expected time index (one past the stored history).
  std::int64_t frontier() const {
    return static_cast<std::int64_t>(series_length());
  }

  /// The aggregate series of any address, recomputed from scratch as the
  /// sum over every covered base cell (the naive Section II-A semantics).
  std::vector<double> SeriesOf(const OracleAddress& address) const;

  /// Sum over the full stored history of an address (h_x of Eq. 2),
  /// recomputed from scratch.
  double HistorySum(const OracleAddress& address) const;

  /// Derivation weight k_{S->t} of Eq. 3 over full-history sums; 0 when
  /// the denominator magnitude falls below 1e-12 (the engine's guard,
  /// mirrored so both sides agree on the degenerate case).
  double Weight(const std::vector<OracleAddress>& sources,
                const OracleAddress& target) const;

  // ---------------------------------------------------- configuration

  /// Stores the derivation scheme of `target`.
  void SetScheme(const OracleAddress& target,
                 std::vector<OracleAddress> sources);

  /// True when a scheme is stored for `target`.
  bool HasScheme(const OracleAddress& target) const;

  /// Installs a fitted model at `node`. The oracle owns the model and will
  /// Update it on every advance (one observation of the node's naive
  /// aggregate). Pass a clone of whatever the engine received so both
  /// sides start from bit-identical state.
  void SetModel(const OracleAddress& node,
                std::unique_ptr<ForecastModel> model);

  bool HasModel(const OracleAddress& node) const;

  /// Advances a node's model by one observation (the catch-up step the
  /// engine's LoadConfiguration performs). No-op without a model.
  void UpdateModel(const OracleAddress& node, double value);

  /// Number of cube advances since construction (every model has received
  /// exactly this many incremental updates).
  std::size_t advances() const { return advances_; }

  // ----------------------------------------------------- maintenance

  /// Buffers one fact; when every base cell has a value for the frontier
  /// period, the cube advances (repeatedly, if later buffered periods
  /// become complete) and every model is updated with its node's new
  /// aggregate observation.
  OracleInsert Insert(std::size_t cell, std::int64_t time, double value);

  /// Buffered (not yet applied) fact count.
  std::size_t pending_inserts() const;

  // ---------------------------------------------------------- queries

  /// The reference forecast of Eqs. 1-3: weight * sum of source forecasts,
  /// where a model-less source is derived through its own stored scheme
  /// (bounded recursion, depth limit 4 — the engine's ladder bound).
  /// Returns nullopt when a scheme is missing, recursion bottoms out, or a
  /// model is unfitted — cases the engine reports as an error status.
  std::optional<std::vector<double>> Forecast(const OracleAddress& address,
                                              std::size_t horizon) const;

  /// True when forecasting `address` walks only sources with live models
  /// (no derived fallback needed anywhere) — the full-fidelity predicate
  /// the engine should report as DegradationLevel::kNone.
  bool FullFidelity(const OracleAddress& address) const;

  // ------------------------------------- configuration evaluation

  /// Naive SMAPE in [0, 1] (Section II-D), both-zero terms skipped.
  static double Smape(const std::vector<double>& actual,
                      const std::vector<double>& forecast);

  /// Derivation weight over a train prefix only (the evaluator's Eq. 3).
  double WeightOverPrefix(const std::vector<OracleAddress>& sources,
                          const OracleAddress& target,
                          std::size_t prefix) const;

  /// The historical-error indicator (Section III-B) recomputed naively:
  /// treat the source's train actuals as a perfect forecast, derive the
  /// target's train history, return the SMAPE.
  double HistoricalError(const OracleAddress& source,
                         const OracleAddress& target,
                         std::size_t train_length) const;

 private:
  /// Ancestor of level-0 value `v` at `level` in dimension `d`.
  std::size_t AncestorValue(std::size_t d, std::size_t v,
                            std::size_t level) const;

  std::optional<std::vector<double>> ForecastDepth(
      const OracleAddress& address, std::size_t horizon,
      std::size_t depth) const;

  bool FullFidelityDepth(const OracleAddress& address,
                         std::size_t depth) const;

  /// Applies every complete buffered period at the frontier.
  void AdvanceWhileComplete();

  std::vector<OracleDimension> dims_;
  /// Base histories, indexed by cell.
  std::vector<std::vector<double>> base_series_;
  /// Buffered inserts: time -> per-cell pending value.
  std::map<std::int64_t, std::vector<std::optional<double>>> pending_;
  std::map<std::string, std::vector<OracleAddress>> schemes_;
  struct ModelSlot {
    OracleAddress address;
    std::unique_ptr<ForecastModel> model;
  };
  std::map<std::string, ModelSlot> models_;
  std::size_t advances_ = 0;
};

}  // namespace f2db::testing

#endif  // F2DB_TESTING_ORACLE_H_
