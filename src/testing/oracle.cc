#include "testing/oracle.h"

#include <cassert>
#include <cmath>

#include "ts/time_series.h"

namespace f2db::testing {

namespace {

/// The engine's derived-fallback recursion bound, mirrored.
constexpr std::size_t kMaxDerivationDepth = 4;

}  // namespace

std::string OracleAddress::Key() const {
  std::string out;
  for (std::size_t d = 0; d < coords.size(); ++d) {
    if (d > 0) out += '|';
    out += std::to_string(coords[d].level);
    out += ':';
    out += std::to_string(coords[d].value);
  }
  return out;
}

ReferenceOracle::ReferenceOracle(std::vector<OracleDimension> dims)
    : dims_(std::move(dims)) {
  base_series_.resize(num_base_cells());
}

std::size_t ReferenceOracle::num_base_cells() const {
  std::size_t cells = 1;
  for (const OracleDimension& dim : dims_) cells *= dim.num_values(0);
  return cells;
}

std::vector<std::size_t> ReferenceOracle::CellValues(std::size_t cell) const {
  std::vector<std::size_t> values(dims_.size(), 0);
  for (std::size_t d = dims_.size(); d-- > 0;) {
    const std::size_t radix = dims_[d].num_values(0);
    values[d] = cell % radix;
    cell /= radix;
  }
  return values;
}

OracleAddress ReferenceOracle::CellAddress(std::size_t cell) const {
  const std::vector<std::size_t> values = CellValues(cell);
  OracleAddress address;
  address.coords.resize(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    address.coords[d] = {0, values[d]};
  }
  return address;
}

std::vector<OracleAddress> ReferenceOracle::AllAddresses() const {
  // Odometer over per-dimension (level, value) slots, dimension 0 most
  // significant — a full enumeration of the instance-level graph.
  std::vector<std::vector<OracleAddress::Coordinate>> slots(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    for (std::size_t level = 0; level <= dims_[d].num_levels(); ++level) {
      const std::size_t count =
          level == dims_[d].num_levels() ? 1 : dims_[d].values[level].size();
      for (std::size_t v = 0; v < count; ++v) slots[d].push_back({level, v});
    }
  }
  std::vector<OracleAddress> out;
  std::vector<std::size_t> pos(dims_.size(), 0);
  for (;;) {
    OracleAddress address;
    address.coords.resize(dims_.size());
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      address.coords[d] = slots[d][pos[d]];
    }
    out.push_back(std::move(address));
    std::size_t d = dims_.size();
    while (d-- > 0) {
      if (++pos[d] < slots[d].size()) break;
      pos[d] = 0;
      if (d == 0) return out;
    }
  }
}

bool ReferenceOracle::IsValid(const OracleAddress& address) const {
  if (address.coords.size() != dims_.size()) return false;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const auto& [level, value] = address.coords[d];
    if (level > dims_[d].num_levels()) return false;
    const std::size_t count =
        level == dims_[d].num_levels() ? 1 : dims_[d].values[level].size();
    if (value >= count) return false;
  }
  return true;
}

std::size_t ReferenceOracle::AncestorValue(std::size_t d, std::size_t v,
                                           std::size_t level) const {
  for (std::size_t l = 0; l < level; ++l) {
    v = l < dims_[d].parents.size() && v < dims_[d].parents[l].size()
            ? dims_[d].parents[l][v]
            : 0;  // topmost declared level rolls into ALL (value 0)
  }
  return v;
}

bool ReferenceOracle::Covers(const OracleAddress& address,
                             std::size_t cell) const {
  const std::vector<std::size_t> values = CellValues(cell);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const auto& [level, value] = address.coords[d];
    if (level == dims_[d].num_levels()) continue;  // ALL covers everything
    if (AncestorValue(d, values[d], level) != value) return false;
  }
  return true;
}

void ReferenceOracle::SetBaseSeries(std::size_t cell,
                                    std::vector<double> values) {
  assert(cell < base_series_.size());
  base_series_[cell] = std::move(values);
}

std::size_t ReferenceOracle::series_length() const {
  return base_series_.empty() ? 0 : base_series_[0].size();
}

std::vector<double> ReferenceOracle::SeriesOf(
    const OracleAddress& address) const {
  // Brute force: one fresh accumulator, every covered base cell summed in
  // cell order. No caching, no incremental state — this IS the oracle.
  std::vector<double> out(series_length(), 0.0);
  for (std::size_t cell = 0; cell < base_series_.size(); ++cell) {
    if (!Covers(address, cell)) continue;
    const std::vector<double>& series = base_series_[cell];
    for (std::size_t t = 0; t < out.size(); ++t) out[t] += series[t];
  }
  return out;
}

double ReferenceOracle::HistorySum(const OracleAddress& address) const {
  const std::vector<double> series = SeriesOf(address);
  double sum = 0.0;
  for (const double v : series) sum += v;
  return sum;
}

double ReferenceOracle::Weight(const std::vector<OracleAddress>& sources,
                               const OracleAddress& target) const {
  double denom = 0.0;
  for (const OracleAddress& s : sources) denom += HistorySum(s);
  if (std::abs(denom) < 1e-12) return 0.0;
  return HistorySum(target) / denom;
}

void ReferenceOracle::SetScheme(const OracleAddress& target,
                                std::vector<OracleAddress> sources) {
  schemes_[target.Key()] = std::move(sources);
}

bool ReferenceOracle::HasScheme(const OracleAddress& target) const {
  return schemes_.count(target.Key()) > 0;
}

void ReferenceOracle::SetModel(const OracleAddress& node,
                               std::unique_ptr<ForecastModel> model) {
  models_[node.Key()] = ModelSlot{node, std::move(model)};
}

bool ReferenceOracle::HasModel(const OracleAddress& node) const {
  return models_.count(node.Key()) > 0;
}

void ReferenceOracle::UpdateModel(const OracleAddress& node, double value) {
  const auto it = models_.find(node.Key());
  if (it != models_.end()) it->second.model->Update(value);
}

OracleInsert ReferenceOracle::Insert(std::size_t cell, std::int64_t time,
                                     double value) {
  if (cell >= base_series_.size()) return OracleInsert::kUnknownCell;
  if (!std::isfinite(value)) return OracleInsert::kNonFinite;
  if (time < frontier()) return OracleInsert::kBehindFrontier;
  auto& batch = pending_[time];
  if (batch.empty()) batch.resize(base_series_.size());
  if (batch[cell].has_value()) return OracleInsert::kDuplicate;
  batch[cell] = value;
  AdvanceWhileComplete();
  return OracleInsert::kAccepted;
}

std::size_t ReferenceOracle::pending_inserts() const {
  std::size_t count = 0;
  for (const auto& [time, batch] : pending_) {
    for (const auto& v : batch) {
      if (v.has_value()) ++count;
    }
  }
  return count;
}

void ReferenceOracle::AdvanceWhileComplete() {
  for (;;) {
    const auto it = pending_.find(frontier());
    if (it == pending_.end()) return;
    bool complete = true;
    for (const auto& v : it->second) complete = complete && v.has_value();
    if (!complete) return;
    for (std::size_t cell = 0; cell < base_series_.size(); ++cell) {
      base_series_[cell].push_back(*it->second[cell]);
    }
    pending_.erase(it);
    ++advances_;
    // Every model sees one new observation of its node's aggregate — the
    // aggregate recomputed naively, of course.
    for (auto& [key, slot] : models_) {
      const std::vector<double> series = SeriesOf(slot.address);
      slot.model->Update(series.back());
    }
  }
}

std::optional<std::vector<double>> ReferenceOracle::Forecast(
    const OracleAddress& address, std::size_t horizon) const {
  return ForecastDepth(address, horizon, 0);
}

std::optional<std::vector<double>> ReferenceOracle::ForecastDepth(
    const OracleAddress& address, std::size_t horizon,
    std::size_t depth) const {
  const auto scheme_it = schemes_.find(address.Key());
  if (scheme_it == schemes_.end()) return std::nullopt;
  const std::vector<OracleAddress>& sources = scheme_it->second;
  if (sources.empty()) return std::nullopt;

  std::vector<double> sum(horizon, 0.0);
  for (const OracleAddress& source : sources) {
    const auto model_it = models_.find(source.Key());
    std::vector<double> forecast;
    if (model_it != models_.end()) {
      if (!model_it->second.model->is_fitted()) return std::nullopt;
      forecast = model_it->second.model->Forecast(horizon);
    } else {
      // Model-less source: derive through its own stored scheme, exactly
      // like the engine's derived-fallback rung (self-references cannot
      // help and the depth is bounded identically).
      if (depth >= kMaxDerivationDepth) return std::nullopt;
      const auto inner = schemes_.find(source.Key());
      if (inner == schemes_.end() || inner->second.empty()) return std::nullopt;
      bool refers_self = false;
      for (const OracleAddress& s : inner->second) {
        refers_self = refers_self || s == source;
      }
      if (refers_self) return std::nullopt;
      const auto derived = ForecastDepth(source, horizon, depth + 1);
      if (!derived.has_value()) return std::nullopt;
      forecast = *derived;
    }
    for (std::size_t h = 0; h < horizon; ++h) sum[h] += forecast[h];
  }
  const double weight = Weight(sources, address);
  for (double& v : sum) v *= weight;
  return sum;
}

bool ReferenceOracle::FullFidelity(const OracleAddress& address) const {
  return FullFidelityDepth(address, 0);
}

bool ReferenceOracle::FullFidelityDepth(const OracleAddress& address,
                                        std::size_t depth) const {
  if (depth >= kMaxDerivationDepth) return false;
  const auto scheme_it = schemes_.find(address.Key());
  if (scheme_it == schemes_.end()) return false;
  for (const OracleAddress& source : scheme_it->second) {
    if (!HasModel(source)) return false;
  }
  return true;
}

double ReferenceOracle::Smape(const std::vector<double>& actual,
                              const std::vector<double>& forecast) {
  assert(actual.size() == forecast.size());
  double sum = 0.0;
  std::size_t terms = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::abs(actual[i]) + std::abs(forecast[i]);
    if (denom < 1e-12) continue;  // both zero: a perfect term, skipped
    sum += std::abs(actual[i] - forecast[i]) / denom;
    ++terms;
  }
  return terms == 0 ? 0.0 : sum / static_cast<double>(terms);
}

double ReferenceOracle::WeightOverPrefix(
    const std::vector<OracleAddress>& sources, const OracleAddress& target,
    std::size_t prefix) const {
  const auto prefix_sum = [&](const OracleAddress& address) {
    const std::vector<double> series = SeriesOf(address);
    double sum = 0.0;
    for (std::size_t t = 0; t < prefix && t < series.size(); ++t) {
      sum += series[t];
    }
    return sum;
  };
  double denom = 0.0;
  for (const OracleAddress& s : sources) denom += prefix_sum(s);
  if (std::abs(denom) < 1e-12) return 0.0;
  return prefix_sum(target) / denom;
}

double ReferenceOracle::HistoricalError(const OracleAddress& source,
                                        const OracleAddress& target,
                                        std::size_t train_length) const {
  const std::vector<double> source_series = SeriesOf(source);
  const std::vector<double> target_series = SeriesOf(target);
  const std::size_t n = std::min(train_length, target_series.size());
  const double weight = WeightOverPrefix({source}, target, n);
  std::vector<double> derived(n, 0.0);
  std::vector<double> actual(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    derived[t] = weight * source_series[t];
    actual[t] = target_series[t];
  }
  return Smape(actual, derived);
}

}  // namespace f2db::testing
