// Property-test plumbing: seeds and iteration budgets.
//
// Every property/differential test derives all randomness from one 64-bit
// seed so a reported failure replays exactly:
//
//   F2DB_PROPERTY_SEED=<seed> ctest -R Property --output-on-failure
//
// The iteration budget scales with F2DB_PROPERTY_ITERATIONS (a multiplier;
// the nightly CI job runs with 100). Both knobs default to fixed values so
// `ctest -R Property` is deterministic out of the box: same seed -> same
// workloads -> same verdict.

#ifndef F2DB_TESTING_PROPERTY_H_
#define F2DB_TESTING_PROPERTY_H_

#include <cstdint>
#include <string>

namespace f2db::testing {

/// The default seed used when F2DB_PROPERTY_SEED is unset.
inline constexpr std::uint64_t kDefaultPropertySeed = 0xF2DB2026ULL;

/// The run's base seed: F2DB_PROPERTY_SEED (decimal or 0x-hex) when set and
/// parseable, `fallback` otherwise.
std::uint64_t PropertySeed(std::uint64_t fallback = kDefaultPropertySeed);

/// True when the seed came from the environment (a replay run). Replay runs
/// may want to log more aggressively.
bool PropertySeedFromEnv();

/// The iteration-budget multiplier from F2DB_PROPERTY_ITERATIONS (>= 1);
/// 1 when unset or unparseable.
std::size_t PropertyBudgetMultiplier();

/// base * PropertyBudgetMultiplier(), saturating.
std::size_t PropertyIterations(std::size_t base);

/// One-line replay instruction embedded in every failure message, e.g.
/// "replay: F2DB_PROPERTY_SEED=123 ctest -R Property".
std::string ReplayHint(std::uint64_t seed);

/// Derives a per-test sub-seed from the base seed and a stable label, so
/// independent suites draw independent deterministic streams.
std::uint64_t SubSeed(std::uint64_t base, const std::string& label);

}  // namespace f2db::testing

#endif  // F2DB_TESTING_PROPERTY_H_
