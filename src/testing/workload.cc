#include "testing/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/rng.h"

namespace f2db::testing {

namespace {

/// "d<d>l<l>v<j>" — globally unique value names so a rendered SQL
/// statement is unambiguous in any shape.
std::vector<std::string> ValueNames(std::size_t dim, std::size_t level,
                                    std::size_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    names.push_back("d" + std::to_string(dim) + "l" + std::to_string(level) +
                    "v" + std::to_string(j));
  }
  return names;
}

OracleDimension FlatDim(std::size_t dim, std::size_t count) {
  OracleDimension out;
  out.name = "dim" + std::to_string(dim);
  out.level_names = {"d" + std::to_string(dim) + "l0"};
  out.values = {ValueNames(dim, 0, count)};
  out.parents = {};
  return out;
}

/// Two declared levels: `base` values rolling up block-wise into `groups`.
OracleDimension TwoLevelDim(std::size_t dim, std::size_t base,
                            std::size_t groups) {
  OracleDimension out;
  out.name = "dim" + std::to_string(dim);
  out.level_names = {"d" + std::to_string(dim) + "l0",
                     "d" + std::to_string(dim) + "l1"};
  out.values = {ValueNames(dim, 0, base), ValueNames(dim, 1, groups)};
  std::vector<std::size_t> parents(base);
  const std::size_t block = (base + groups - 1) / groups;
  for (std::size_t v = 0; v < base; ++v) {
    parents[v] = std::min(v / block, groups - 1);
  }
  out.parents = {std::move(parents)};
  return out;
}

/// Series regimes the base histories are drawn from. `tiny` keeps values
/// in the 1e-5 range so rendered SQL inserts use exponent notation — the
/// regime that originally exposed the number-lexer divergence.
enum class Regime { kConstant, kTrend, kSeasonal, kWalk, kSpiky, kTiny };
constexpr std::size_t kNumRegimes = 6;

/// Typical magnitude of a regime, used to draw later insert values in the
/// same range as the stored history.
double RegimeMagnitude(Regime regime, Rng& rng) {
  switch (regime) {
    case Regime::kTiny:
      return rng.Uniform(2e-5, 9e-5);
    default:
      return rng.Uniform(15.0, 80.0);
  }
}

std::vector<double> GenerateSeries(Regime regime, double magnitude,
                                   std::size_t n, Rng& rng) {
  std::vector<double> out;
  out.reserve(n);
  switch (regime) {
    case Regime::kConstant: {
      for (std::size_t t = 0; t < n; ++t) {
        out.push_back(std::max(1e-3, magnitude + rng.Gaussian(0.0, 0.8)));
      }
      break;
    }
    case Regime::kTrend: {
      const double slope = rng.Uniform(0.2, 1.5);
      for (std::size_t t = 0; t < n; ++t) {
        out.push_back(magnitude + slope * static_cast<double>(t) +
                      rng.Gaussian(0.0, 0.5));
      }
      break;
    }
    case Regime::kSeasonal: {
      const double amplitude = rng.Uniform(0.1, 0.3) * magnitude;
      const double phase = rng.Uniform(0.0, 6.28318);
      for (std::size_t t = 0; t < n; ++t) {
        out.push_back(magnitude +
                      amplitude *
                          std::sin(6.28318 * static_cast<double>(t) / 4.0 +
                                   phase) +
                      rng.Gaussian(0.0, 0.5));
      }
      break;
    }
    case Regime::kWalk: {
      double level = magnitude;
      for (std::size_t t = 0; t < n; ++t) {
        level = std::max(5.0, level + rng.Gaussian(0.0, 1.5));
        out.push_back(level);
      }
      break;
    }
    case Regime::kSpiky: {
      for (std::size_t t = 0; t < n; ++t) {
        double value = magnitude + rng.Gaussian(0.0, 0.5);
        if (rng.NextBernoulli(0.1)) value += rng.Uniform(20.0, 80.0);
        out.push_back(value);
      }
      break;
    }
    case Regime::kTiny: {
      for (std::size_t t = 0; t < n; ++t) {
        out.push_back(std::max(1e-6, magnitude + rng.Gaussian(0.0, 5e-6)));
      }
      break;
    }
  }
  return out;
}

/// A fresh value for later insertion into a cell of the given magnitude.
double DrawInsertValue(double magnitude, Rng& rng) {
  return std::max(magnitude * 1e-2, magnitude * rng.Uniform(0.5, 1.5));
}

constexpr ModelType kModelPalette[] = {
    ModelType::kMean, ModelType::kDrift, ModelType::kSes, ModelType::kHolt,
    ModelType::kHoltWintersAdd,
};

/// Samples `count` distinct indices in [0, size).
std::vector<std::size_t> SampleDistinct(std::size_t size, std::size_t count,
                                        Rng& rng) {
  std::vector<std::size_t> all(size);
  for (std::size_t i = 0; i < size; ++i) all[i] = i;
  for (std::size_t i = 0; i + 1 < size && i < count; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(size - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(count, size));
  return all;
}

std::string RenderDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Builds the model placement + full scheme cover for one cube.
void GenerateConfiguration(const std::vector<OracleAddress>& addresses,
                           bool inject_refit_failures, Rng& rng,
                           WorkloadSpec* spec) {
  const std::size_t num_models = static_cast<std::size_t>(
      rng.UniformInt(1, std::min<std::int64_t>(
                            4, static_cast<std::int64_t>(addresses.size()))));
  const std::vector<std::size_t> model_indices =
      SampleDistinct(addresses.size(), num_models, rng);
  std::vector<bool> has_model(addresses.size(), false);
  for (const std::size_t i : model_indices) {
    ModelPlacement placement;
    placement.node = addresses[i];
    placement.type =
        kModelPalette[rng.UniformInt(0, std::size(kModelPalette) - 1)];
    placement.period = placement.type == ModelType::kHoltWintersAdd ? 4 : 1;
    spec->models.push_back(std::move(placement));
    has_model[i] = true;
  }

  // Every address gets an explicit scheme. Model nodes forecast directly;
  // model-less nodes derive from 1-3 model nodes (rank 1). In value mode a
  // few rank-1 nodes are then promoted to derive from OTHER rank-1 nodes
  // (rank 2), which exercises the engine's derived-fallback rung with a
  // statically bounded recursion depth.
  std::vector<std::size_t> rank1;
  std::vector<std::size_t> promoted;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (has_model[i]) continue;
    if (!inject_refit_failures && rng.NextBernoulli(0.2)) {
      promoted.push_back(i);
    } else {
      rank1.push_back(i);
    }
  }
  if (rank1.empty()) {
    rank1 = std::move(promoted);
    promoted.clear();
  }

  const auto sample_sources = [&](const std::vector<std::size_t>& pool,
                                  std::size_t max_count) {
    const std::size_t count = static_cast<std::size_t>(rng.UniformInt(
        1, static_cast<std::int64_t>(std::min(max_count, pool.size()))));
    std::vector<OracleAddress> sources;
    for (const std::size_t j : SampleDistinct(pool.size(), count, rng)) {
      sources.push_back(addresses[pool[j]]);
    }
    return sources;
  };

  std::vector<std::size_t> model_pool;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (has_model[i]) model_pool.push_back(i);
  }
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    SchemeChoice choice;
    choice.target = addresses[i];
    if (has_model[i]) {
      choice.sources = {addresses[i]};
    } else if (std::find(promoted.begin(), promoted.end(), i) !=
               promoted.end()) {
      choice.sources = sample_sources(rank1, 2);
    } else {
      choice.sources = sample_sources(model_pool, 3);
    }
    spec->schemes.push_back(std::move(choice));
  }
}

void GenerateHistories(std::size_t num_cells, std::size_t n, Rng& rng,
                       WorkloadSpec* spec,
                       std::vector<double>* cell_magnitude) {
  spec->base_history.resize(num_cells);
  cell_magnitude->resize(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    const auto regime = static_cast<Regime>(
        rng.UniformInt(0, static_cast<std::int64_t>(kNumRegimes) - 1));
    const double magnitude = RegimeMagnitude(regime, rng);
    (*cell_magnitude)[cell] = magnitude;
    spec->base_history[cell] = GenerateSeries(regime, magnitude, n, rng);
  }
}

void GenerateOps(std::size_t num_addresses, std::size_t num_cells,
                 const std::vector<double>& cell_magnitude, std::size_t count,
                 Rng& rng, WorkloadSpec* spec) {
  const auto random_cell = [&] {
    return static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(num_cells) - 1));
  };
  for (std::size_t i = 0; i < count; ++i) {
    WorkloadOp op;
    const double roll = rng.NextDouble();
    if (roll < 0.55) {
      op.kind = OpKind::kQuery;
      op.address_index = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(num_addresses) - 1));
      op.horizon = static_cast<std::size_t>(rng.UniformInt(1, 6));
    } else if (roll < 0.80) {
      op.kind = OpKind::kInsertRound;
      op.round_values.resize(num_cells);
      op.insert_order.resize(num_cells);
      for (std::size_t cell = 0; cell < num_cells; ++cell) {
        op.round_values[cell] = DrawInsertValue(cell_magnitude[cell], rng);
        op.insert_order[cell] = cell;
      }
      for (std::size_t a = num_cells; a-- > 1;) {
        const std::size_t b = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(a)));
        std::swap(op.insert_order[a], op.insert_order[b]);
      }
    } else if (roll < 0.88) {
      op.kind = OpKind::kInsertPartial;
      op.cell = random_cell();
      op.value = DrawInsertValue(cell_magnitude[op.cell], rng);
    } else if (roll < 0.93) {
      op.kind = OpKind::kInsertBehind;
      op.cell = random_cell();
      op.value = DrawInsertValue(cell_magnitude[op.cell], rng);
    } else if (roll < 0.97) {
      op.kind = OpKind::kInsertNonFinite;
      op.cell = random_cell();
      op.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      op.kind = OpKind::kInsertInjectedFault;
      op.cell = random_cell();
      op.value = DrawInsertValue(cell_magnitude[op.cell], rng);
    }
    spec->ops.push_back(std::move(op));
  }
}

WorkloadSpec GenerateOnShape(std::uint64_t seed, std::size_t shape_index,
                             bool inject_refit_failures, Rng rng) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.shape_index = shape_index % NumWorkloadShapes();
  spec.dims = WorkloadShape(spec.shape_index, &spec.shape_name);
  spec.inject_refit_failures = inject_refit_failures;
  if (inject_refit_failures) {
    spec.reestimate_after_updates =
        static_cast<std::size_t>(rng.UniformInt(1, 3));
  }
  spec.history_length = static_cast<std::size_t>(rng.UniformInt(24, 36));

  const ReferenceOracle shape_probe(spec.dims);
  const std::size_t num_cells = shape_probe.num_base_cells();
  const std::vector<OracleAddress> addresses = shape_probe.AllAddresses();

  std::vector<double> cell_magnitude;
  GenerateHistories(num_cells, spec.history_length, rng, &spec,
                    &cell_magnitude);
  GenerateConfiguration(addresses, inject_refit_failures, rng, &spec);
  const std::size_t op_count =
      static_cast<std::size_t>(rng.UniformInt(12, 24));
  GenerateOps(addresses.size(), num_cells, cell_magnitude, op_count, rng,
              &spec);
  return spec;
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kQuery:
      return "QUERY";
    case OpKind::kInsertRound:
      return "INSERT_ROUND";
    case OpKind::kInsertPartial:
      return "INSERT_PARTIAL";
    case OpKind::kInsertBehind:
      return "INSERT_BEHIND";
    case OpKind::kInsertNonFinite:
      return "INSERT_NON_FINITE";
    case OpKind::kInsertInjectedFault:
      return "INSERT_INJECTED_FAULT";
  }
  return "UNKNOWN";
}

std::size_t NumWorkloadShapes() { return 6; }

std::vector<OracleDimension> WorkloadShape(std::size_t index,
                                           std::string* name) {
  std::vector<OracleDimension> dims;
  std::string shape_name;
  switch (index % NumWorkloadShapes()) {
    case 0:
      shape_name = "flat4";
      dims = {FlatDim(0, 4)};
      break;
    case 1:
      shape_name = "chain6to2";
      dims = {TwoLevelDim(0, 6, 2)};
      break;
    case 2:
      shape_name = "grid2x3";
      dims = {FlatDim(0, 2), FlatDim(1, 3)};
      break;
    case 3:
      shape_name = "region4x2-product2";
      dims = {TwoLevelDim(0, 4, 2), FlatDim(1, 2)};
      break;
    case 4:
      shape_name = "cube2x2x2";
      dims = {FlatDim(0, 2), FlatDim(1, 2), FlatDim(2, 2)};
      break;
    default:
      shape_name = "asym6to2x3";
      dims = {TwoLevelDim(0, 6, 2), FlatDim(1, 3)};
      break;
  }
  if (name != nullptr) *name = shape_name;
  return dims;
}

WorkloadSpec GenerateWorkload(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t shape_index = static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(NumWorkloadShapes()) - 1));
  const bool inject = rng.NextBernoulli(0.25);
  return GenerateOnShape(seed, shape_index, inject, std::move(rng));
}

WorkloadSpec GenerateWorkload(std::uint64_t seed, std::size_t shape_index,
                              bool inject_refit_failures) {
  Rng rng(seed);
  return GenerateOnShape(seed, shape_index, inject_refit_failures,
                         std::move(rng));
}

WorkloadSpec GenerateScatterGatherWorkload(std::uint64_t seed,
                                           std::size_t shape_index,
                                           bool inject_refit_failures) {
  Rng rng(seed);
  WorkloadSpec spec;
  spec.seed = seed;
  spec.shape_index = shape_index % NumWorkloadShapes();
  spec.dims = WorkloadShape(spec.shape_index, &spec.shape_name);
  spec.shape_name += "-scatter";
  spec.inject_refit_failures = inject_refit_failures;
  if (inject_refit_failures) {
    spec.reestimate_after_updates =
        static_cast<std::size_t>(rng.UniformInt(1, 3));
  }
  spec.history_length = static_cast<std::size_t>(rng.UniformInt(24, 36));

  const ReferenceOracle shape_probe(spec.dims);
  const std::size_t num_cells = shape_probe.num_base_cells();
  const std::vector<OracleAddress> addresses = shape_probe.AllAddresses();

  std::vector<double> cell_magnitude;
  GenerateHistories(num_cells, spec.history_length, rng, &spec,
                    &cell_magnitude);

  // One model per base cell: any partitioning of the base cells leaves
  // every shard with its own models.
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    ModelPlacement placement;
    placement.node = shape_probe.CellAddress(cell);
    placement.type =
        kModelPalette[rng.UniformInt(0, std::size(kModelPalette) - 1)];
    placement.period = placement.type == ModelType::kHoltWintersAdd ? 4 : 1;
    spec.models.push_back(std::move(placement));
  }

  // Covering schemes: every address derives from ALL base cells it rolls
  // up, so the derivation weight is exactly 1 and the scheme restricts to
  // any shard without changing the summed answer.
  for (const OracleAddress& address : addresses) {
    SchemeChoice choice;
    choice.target = address;
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      if (shape_probe.Covers(address, cell)) {
        choice.sources.push_back(shape_probe.CellAddress(cell));
      }
    }
    spec.schemes.push_back(std::move(choice));
  }

  // Frontier-aligned op mix: queries dominate (that is what scatter-gather
  // exercises); inserts are complete rounds or always-rejected probes.
  const std::size_t op_count =
      static_cast<std::size_t>(rng.UniformInt(14, 26));
  const auto random_cell = [&] {
    return static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(num_cells) - 1));
  };
  for (std::size_t i = 0; i < op_count; ++i) {
    WorkloadOp op;
    const double roll = rng.NextDouble();
    if (roll < 0.60) {
      op.kind = OpKind::kQuery;
      op.address_index = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(addresses.size()) - 1));
      op.horizon = static_cast<std::size_t>(rng.UniformInt(1, 6));
    } else if (roll < 0.85) {
      op.kind = OpKind::kInsertRound;
      op.round_values.resize(num_cells);
      op.insert_order.resize(num_cells);
      for (std::size_t cell = 0; cell < num_cells; ++cell) {
        op.round_values[cell] = DrawInsertValue(cell_magnitude[cell], rng);
        op.insert_order[cell] = cell;
      }
      for (std::size_t a = num_cells; a-- > 1;) {
        const std::size_t b = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(a)));
        std::swap(op.insert_order[a], op.insert_order[b]);
      }
    } else if (roll < 0.93) {
      op.kind = OpKind::kInsertBehind;
      op.cell = random_cell();
      op.value = DrawInsertValue(cell_magnitude[op.cell], rng);
    } else {
      op.kind = OpKind::kInsertNonFinite;
      op.cell = random_cell();
      op.value = std::numeric_limits<double>::quiet_NaN();
    }
    spec.ops.push_back(std::move(op));
  }
  return spec;
}

WorkloadSpec GenerateQueryStorm(std::uint64_t seed, std::size_t shape_index,
                                std::size_t num_queries) {
  Rng rng(seed);
  WorkloadSpec spec = GenerateOnShape(seed, shape_index,
                                      /*inject_refit_failures=*/false, rng);
  spec.ops.clear();
  const ReferenceOracle shape_probe(spec.dims);
  const std::size_t num_cells = shape_probe.num_base_cells();
  const std::size_t num_addresses = shape_probe.AllAddresses().size();
  std::vector<double> cell_magnitude(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    cell_magnitude[cell] = spec.base_history[cell].back();
  }
  std::size_t queries = 0;
  while (queries < num_queries) {
    if (queries > 0 && queries % 1000 == 0) {
      // Interleave an occasional complete round so weights and model
      // states keep moving under the query volume.
      WorkloadOp round;
      round.kind = OpKind::kInsertRound;
      round.round_values.resize(num_cells);
      round.insert_order.resize(num_cells);
      for (std::size_t cell = 0; cell < num_cells; ++cell) {
        round.round_values[cell] = DrawInsertValue(cell_magnitude[cell], rng);
        round.insert_order[cell] = cell;
      }
      spec.ops.push_back(std::move(round));
    }
    WorkloadOp op;
    op.kind = OpKind::kQuery;
    op.address_index = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(num_addresses) - 1));
    op.horizon = static_cast<std::size_t>(rng.UniformInt(1, 6));
    spec.ops.push_back(std::move(op));
    ++queries;
  }
  return spec;
}

std::string DescribeOp(const WorkloadOp& op) {
  std::string out = OpKindName(op.kind);
  switch (op.kind) {
    case OpKind::kQuery:
      out += " addr=" + std::to_string(op.address_index) +
             " h=" + std::to_string(op.horizon);
      break;
    case OpKind::kInsertRound: {
      out += " values=[";
      for (std::size_t i = 0; i < op.round_values.size(); ++i) {
        if (i > 0) out += ",";
        out += RenderDouble(op.round_values[i]);
      }
      out += "] order=[";
      for (std::size_t i = 0; i < op.insert_order.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(op.insert_order[i]);
      }
      out += "]";
      break;
    }
    default:
      out += " cell=" + std::to_string(op.cell) +
             " value=" + RenderDouble(op.value);
      break;
  }
  return out;
}

std::string DescribeWorkload(const WorkloadSpec& spec) {
  std::ostringstream out;
  out << "workload seed=" << spec.seed << " shape=" << spec.shape_name
      << " n=" << spec.history_length
      << " cells=" << spec.base_history.size()
      << " faults=" << (spec.inject_refit_failures ? 1 : 0)
      << " reestimate_after=" << spec.reestimate_after_updates << "\n";
  for (const ModelPlacement& placement : spec.models) {
    out << "model " << placement.node.Key() << " "
        << ModelTypeName(placement.type) << " period=" << placement.period
        << "\n";
  }
  for (const SchemeChoice& choice : spec.schemes) {
    out << "scheme " << choice.target.Key() << " <-";
    for (const OracleAddress& source : choice.sources) {
      out << " " << source.Key();
    }
    out << "\n";
  }
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    out << "history cell=" << cell << " [";
    for (std::size_t t = 0; t < spec.base_history[cell].size(); ++t) {
      if (t > 0) out << ",";
      out << RenderDouble(spec.base_history[cell][t]);
    }
    out << "]\n";
  }
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    out << "op[" << i << "] " << DescribeOp(spec.ops[i]) << "\n";
  }
  return out.str();
}

}  // namespace f2db::testing
