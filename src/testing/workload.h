// Seeded workload generation for the differential correctness harness.
//
// A WorkloadSpec is a fully deterministic function of a 64-bit seed: the
// cube shape, the base histories (drawn from a palette of series regimes),
// the model placement and derivation schemes, and an interleaved op list of
// forecast queries and maintenance inserts (complete rounds, partial
// batches, rejected inserts, fault-injected inserts). The same seed always
// generates the same spec, so any differential failure replays with
//
//   F2DB_PROPERTY_SEED=<seed> ctest -R Property --output-on-failure
//
// Spec values are generated once and stored; only execution-time facts
// (insert time stamps, which track the cube frontier) are recomputed while
// the workload runs, so dropping ops during shrinking keeps the remaining
// ops meaningful.

#ifndef F2DB_TESTING_WORKLOAD_H_
#define F2DB_TESTING_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/oracle.h"
#include "ts/model.h"

namespace f2db::testing {

/// One step of a generated workload.
enum class OpKind {
  /// Forecast query on one address with a generated horizon.
  kQuery,
  /// One new value per base cell at the current frontier, inserted in a
  /// generated permutation; completes a period and advances the cube.
  kInsertRound,
  /// A single buffered value for one cell at the current frontier (leaves
  /// the batch incomplete on multi-cell cubes).
  kInsertPartial,
  /// An insert behind the stored frontier — must be rejected identically
  /// by every executor.
  kInsertBehind,
  /// An insert with a NaN measure value — must be rejected identically.
  kInsertNonFinite,
  /// An insert issued while the engine.insert failpoint is armed — both
  /// engines must fail it with kUnavailable; the oracle never sees it.
  kInsertInjectedFault,
};

/// Stable display name ("QUERY", "INSERT_ROUND", ...).
const char* OpKindName(OpKind kind);

struct WorkloadOp {
  OpKind kind = OpKind::kQuery;
  /// kQuery: index into ReferenceOracle::AllAddresses().
  std::size_t address_index = 0;
  /// kQuery: forecast horizon.
  std::size_t horizon = 1;
  /// kInsertRound: one value per base cell (cell order).
  std::vector<double> round_values;
  /// kInsertRound: the order the cells are inserted in (a permutation).
  std::vector<std::size_t> insert_order;
  /// Single-cell insert ops: the target cell and value.
  std::size_t cell = 0;
  double value = 0.0;
};

/// A model placed at one address, from the deterministic-update families
/// only (kMean, kDrift, kSes, kHolt, kHoltWintersAdd) — ARIMA/Auto are
/// exercised by the math property suite, not the differential driver.
struct ModelPlacement {
  OracleAddress node;
  ModelType type = ModelType::kMean;
  std::size_t period = 1;
};

/// The derivation scheme of one address. Every address of the cube gets
/// an explicit scheme so the engine's nearest-model fallback fill never
/// kicks in (the oracle mirrors the explicit schemes only).
struct SchemeChoice {
  OracleAddress target;
  std::vector<OracleAddress> sources;
};

/// A fully generated, self-contained workload.
struct WorkloadSpec {
  std::uint64_t seed = 0;
  std::size_t shape_index = 0;
  std::string shape_name;
  std::vector<OracleDimension> dims;
  /// Stored history length n at workload start.
  std::size_t history_length = 0;
  /// Per-cell base histories, each of length history_length.
  std::vector<std::vector<double>> base_history;
  std::vector<ModelPlacement> models;
  std::vector<SchemeChoice> schemes;
  /// Fault mode: engine.refit is armed (Policy::Always) for the whole run
  /// and models invalidate after `reestimate_after_updates` advances, so
  /// every query past that point must be annotated kStaleModel (values
  /// still agree with the never-refit oracle).
  bool inject_refit_failures = false;
  std::size_t reestimate_after_updates = 0;
  std::vector<WorkloadOp> ops;
};

/// Number of cube shapes in the palette (>= 5, from a flat 1-dimensional
/// cube to a 3-dimensional one and a two-level asymmetric grid).
std::size_t NumWorkloadShapes();

/// The dimensions of shape `index` (modulo the palette size). Level names
/// are globally unique ("d0l1", ...) as FindLevelAnywhere requires.
std::vector<OracleDimension> WorkloadShape(std::size_t index,
                                           std::string* name = nullptr);

/// Generates the workload of `seed`; shape, fault mode, and op mix are all
/// derived from the seed.
WorkloadSpec GenerateWorkload(std::uint64_t seed);

/// Generates a workload with the shape and fault mode pinned (the seed
/// still drives everything else).
WorkloadSpec GenerateWorkload(std::uint64_t seed, std::size_t shape_index,
                              bool inject_refit_failures);

/// Generates a query-heavy workload: `num_queries` forecast queries over
/// shape `shape_index` with an occasional insert round interleaved. Used
/// by the bulk-agreement test (>= 10k queries across the shape palette).
WorkloadSpec GenerateQueryStorm(std::uint64_t seed, std::size_t shape_index,
                                std::size_t num_queries);

/// Generates a SHARD-SAFE workload for the scatter-gather differential
/// suite: one model at EVERY base cell (so each shard of any partitioning
/// owns at least one model) and a covering derivation scheme at every
/// address (sources = all covered base cells, derivation weight exactly
/// 1), which a ShardedEngine can split loss-free across shards. The op
/// mix uses only frontier-aligned inserts — complete rounds plus
/// always-rejected behind/non-finite probes — so cross-shard aggregate
/// queries never race a partially advanced frontier; partial and
/// failpoint inserts are excluded by construction.
WorkloadSpec GenerateScatterGatherWorkload(std::uint64_t seed,
                                           std::size_t shape_index,
                                           bool inject_refit_failures);

/// One-line rendering of an op ("QUERY addr=7 h=3", ...) for failure
/// messages and determinism checks.
std::string DescribeOp(const WorkloadOp& op);

/// Multi-line rendering of a whole spec (shape, models, schemes, ops).
/// Two specs generated from the same seed render identically — the
/// determinism contract checked by the harness self-test.
std::string DescribeWorkload(const WorkloadSpec& spec);

}  // namespace f2db::testing

#endif  // F2DB_TESTING_WORKLOAD_H_
