#include "testing/crash.h"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/configuration.h"
#include "core/evaluator.h"
#include "cube/graph.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "engine/wal.h"
#include "storage/fsio.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace f2db::testing {
namespace {

constexpr std::size_t kForecastHorizon = 3;
constexpr double kRelTol = 1e-6;
constexpr double kAbsTol = 1e-8;

/// One insert the child will attempt, flattened out of the spec's op list.
/// Queries and fault-injected inserts are dropped: the crash fuzzer only
/// cares about the durable maintenance stream, and a SIGKILL can land
/// anywhere in it.
struct InsertAttempt {
  std::size_t cell = 0;
  double value = 0.0;
  /// kInsertBehind semantics: stamp frontier - 1 (must be rejected).
  bool behind = false;
};

std::vector<InsertAttempt> FlattenAttempts(const WorkloadSpec& spec) {
  std::vector<InsertAttempt> attempts;
  for (const WorkloadOp& op : spec.ops) {
    switch (op.kind) {
      case OpKind::kInsertRound:
        for (const std::size_t cell : op.insert_order) {
          attempts.push_back({cell, op.round_values[cell], false});
        }
        break;
      case OpKind::kInsertPartial:
      case OpKind::kInsertNonFinite:
        attempts.push_back({op.cell, op.value, false});
        break;
      case OpKind::kInsertBehind:
        attempts.push_back({op.cell, op.value, true});
        break;
      case OpKind::kQuery:
      case OpKind::kInsertInjectedFault:
        break;
    }
  }
  return attempts;
}

NodeAddress ToNodeAddress(const OracleAddress& address) {
  NodeAddress out;
  out.coords.resize(address.coords.size());
  for (std::size_t d = 0; d < address.coords.size(); ++d) {
    out.coords[d] = {static_cast<LevelIndex>(address.coords[d].level),
                     static_cast<ValueIndex>(address.coords[d].value)};
  }
  return out;
}

StatusCode ExpectedInsertCode(OracleInsert verdict) {
  switch (verdict) {
    case OracleInsert::kAccepted:
      return StatusCode::kOk;
    case OracleInsert::kBehindFrontier:
      return StatusCode::kOutOfRange;
    case OracleInsert::kDuplicate:
      return StatusCode::kAlreadyExists;
    case OracleInsert::kNonFinite:
    case OracleInsert::kUnknownCell:
      return StatusCode::kInvalidArgument;
  }
  return StatusCode::kInternal;
}

bool ValuesClose(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::abs(a - b) <= kAbsTol + kRelTol * std::max(std::abs(a), std::abs(b));
}

/// The base-cell -> NodeId map of one graph (odometer cell order).
Result<std::vector<NodeId>> CellNodeMap(const WorkloadSpec& spec,
                                        const TimeSeriesGraph& graph) {
  const ReferenceOracle probe(spec.dims);
  std::vector<NodeId> nodes(probe.num_base_cells());
  for (std::size_t cell = 0; cell < nodes.size(); ++cell) {
    F2DB_ASSIGN_OR_RETURN(nodes[cell],
                          graph.NodeFor(ToNodeAddress(probe.CellAddress(cell))));
  }
  return nodes;
}

/// Level-0 value names of one base cell, decoded in the oracle's odometer
/// order (dimension 0 most significant) — the InsertFact address form of
/// the sharded facade, whose names[0] also picks the owning partition.
std::vector<std::string> CellBaseValues(const WorkloadSpec& spec,
                                        std::size_t cell) {
  std::vector<std::string> names(spec.dims.size());
  std::size_t rest = cell;
  for (std::size_t d = spec.dims.size(); d-- > 0;) {
    const std::size_t radix = spec.dims[d].num_values(0);
    names[d] = spec.dims[d].values[0][rest % radix];
    rest /= radix;
  }
  return names;
}

std::string ChildErrorPath(const std::string& data_dir) {
  return data_dir + "/child_error.txt";
}

/// The compaction kill point, child-process global: the storage layer
/// fires named hooks at each stage of the compaction protocol (segment
/// durable, around the manifest rename, before WAL deletion), and the
/// child dies the instant the planned one fires — mid-protocol, exactly
/// like a power cut between two renames. Empty = let compaction finish.
const char* g_storage_kill_point = "";

void StorageKillHook(const char* point) {
  if (g_storage_kill_point[0] != '\0' &&
      std::strcmp(point, g_storage_kill_point) == 0) {
    ::kill(::getpid(), SIGKILL);
  }
}

/// The child's escape hatch: it cannot use the report (different process),
/// so failures before the planned SIGKILL land in a file the parent reads.
[[noreturn]] void ChildAbort(const std::string& data_dir,
                             const std::string& what) {
  std::ofstream out(ChildErrorPath(data_dir), std::ios::trunc);
  out << what << "\n";
  out.close();
  ::_exit(1);
}

/// The crashing process: open durable, load config, run the attempt
/// prefix (checkpointing mid-way when planned), then die without warning.
[[noreturn]] void RunChild(const WorkloadSpec& spec,
                           const std::vector<InsertAttempt>& attempts,
                           std::size_t kill_after, bool do_checkpoint,
                           std::size_t checkpoint_after, bool do_compact,
                           std::size_t compact_after,
                           const char* compact_crash_point,
                           const std::string& data_dir) {
  g_storage_kill_point = compact_crash_point;
  storage::SetStorageCrashHook(&StorageKillHook);
  EngineOptions engine_options;
  engine_options.maintenance_threads = 1;
  engine_options.reestimate_after_updates = 0;  // pure kCatalog+kInsert WAL
  engine_options.data_dir = data_dir;
  engine_options.fsync_policy = FsyncPolicy::kAlways;

  auto graph = BuildWorkloadGraph(spec);
  if (!graph.ok()) ChildAbort(data_dir, "child graph: " + graph.status().ToString());
  auto engine = F2dbEngine::Open(std::move(graph.value()), engine_options);
  if (!engine.ok()) ChildAbort(data_dir, "child open: " + engine.status().ToString());

  auto config = BuildWorkloadConfiguration(spec, engine.value()->graph());
  if (!config.ok()) ChildAbort(data_dir, "child config: " + config.status().ToString());
  const ConfigurationEvaluator evaluator(engine.value()->graph(), 1.0);
  const Status loaded =
      engine.value()->LoadConfiguration(config.value(), evaluator);
  if (!loaded.ok()) ChildAbort(data_dir, "child load: " + loaded.ToString());

  auto cells = CellNodeMap(spec, engine.value()->graph());
  if (!cells.ok()) ChildAbort(data_dir, "child cells: " + cells.status().ToString());

  // A bare oracle (no models) tracks the frontier and the expected insert
  // verdicts; the parent recomputes the same sequence after the crash.
  ReferenceOracle oracle(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    oracle.SetBaseSeries(cell, spec.base_history[cell]);
  }

  for (std::size_t i = 0; i < kill_after; ++i) {
    const InsertAttempt& attempt = attempts[i];
    std::int64_t time = oracle.frontier();
    if (attempt.behind) time -= 1;
    const OracleInsert verdict = oracle.Insert(attempt.cell, time, attempt.value);
    const Status inserted =
        engine.value()->InsertFact(cells.value()[attempt.cell], time, attempt.value);
    const StatusCode want = ExpectedInsertCode(verdict);
    const StatusCode got = inserted.code();
    if (got != want) {
      ChildAbort(data_dir, "child attempt " + std::to_string(i) +
                               ": verdict mismatch, engine=" +
                               inserted.ToString());
    }
    if (do_checkpoint && i == checkpoint_after) {
      const Status checkpointed = engine.value()->CheckpointNow();
      if (!checkpointed.ok()) {
        ChildAbort(data_dir, "child checkpoint: " + checkpointed.ToString());
      }
    }
    if (do_compact && i == compact_after) {
      // With a kill point armed the process dies INSIDE this call; without
      // one the compaction must complete cleanly.
      const Status compacted = engine.value()->CompactNow();
      if (!compacted.ok()) {
        ChildAbort(data_dir, "child compaction: " + compacted.ToString());
      }
    }
  }

  // The crash itself: no destructors, no WAL close, no flushes.
  ::kill(::getpid(), SIGKILL);
  ::_exit(99);  // unreachable
}

/// The sharded crashing process: open a durable ShardedEngine (per-shard
/// WALs under data_dir/shard-<k>), run the attempt prefix through the
/// name-routed insert path, then die without warning. No configuration is
/// loaded, so every shard's WAL holds ONLY kInsert records and recovery is
/// exactly reproducible from the accepted prefix.
[[noreturn]] void RunShardedChild(const WorkloadSpec& spec,
                                  const std::vector<InsertAttempt>& attempts,
                                  std::size_t kill_after, bool do_checkpoint,
                                  std::size_t checkpoint_after,
                                  bool do_compact, std::size_t compact_after,
                                  const char* compact_crash_point,
                                  std::size_t num_shards,
                                  const std::string& data_dir) {
  g_storage_kill_point = compact_crash_point;
  storage::SetStorageCrashHook(&StorageKillHook);
  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = num_shards;
  sharded_options.engine.maintenance_threads = 1;
  sharded_options.engine.reestimate_after_updates = 0;
  sharded_options.engine.data_dir = data_dir;
  sharded_options.engine.fsync_policy = FsyncPolicy::kAlways;

  auto graph = BuildWorkloadGraph(spec);
  if (!graph.ok()) {
    ChildAbort(data_dir, "child graph: " + graph.status().ToString());
  }
  auto engine = ShardedEngine::Open(graph.value(), sharded_options);
  if (!engine.ok()) {
    ChildAbort(data_dir, "child sharded open: " + engine.status().ToString());
  }

  // A bare global oracle tracks the frontier and the expected verdicts. A
  // scatter-gather spec keeps shard frontiers reconcilable with it: every
  // single-cell attempt sits between complete rounds, where every shard's
  // frontier equals the global one.
  ReferenceOracle oracle(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    oracle.SetBaseSeries(cell, spec.base_history[cell]);
  }

  for (std::size_t i = 0; i < kill_after; ++i) {
    const InsertAttempt& attempt = attempts[i];
    std::int64_t time = oracle.frontier();
    if (attempt.behind) time -= 1;
    const OracleInsert verdict =
        oracle.Insert(attempt.cell, time, attempt.value);
    const Status inserted = engine.value()->InsertFact(
        CellBaseValues(spec, attempt.cell), time, attempt.value);
    if (inserted.code() != ExpectedInsertCode(verdict)) {
      ChildAbort(data_dir, "child sharded attempt " + std::to_string(i) +
                               ": verdict mismatch, engine=" +
                               inserted.ToString());
    }
    if (do_checkpoint && i == checkpoint_after) {
      const Status checkpointed = engine.value()->CheckpointNow();
      if (!checkpointed.ok()) {
        ChildAbort(data_dir, "child checkpoint: " + checkpointed.ToString());
      }
    }
    if (do_compact && i == compact_after) {
      // The fan-out compacts shard by shard; an armed kill point fires in
      // whichever shard reaches that protocol stage first, leaving the
      // siblings at arbitrary earlier stages — recovery must reconcile a
      // mixed fleet.
      const Status compacted = engine.value()->CompactNow();
      if (!compacted.ok()) {
        ChildAbort(data_dir, "child compaction: " + compacted.ToString());
      }
    }
  }

  ::kill(::getpid(), SIGKILL);
  ::_exit(99);  // unreachable
}

struct AcceptedInsert {
  std::size_t cell = 0;
  std::int64_t time = 0;
  double value = 0.0;
};

/// Replays attempts[0..count) against a fresh bare oracle and returns the
/// accepted subsequence — the exact stream the child's WAL recorded.
std::vector<AcceptedInsert> AcceptedPrefix(
    const WorkloadSpec& spec, const std::vector<InsertAttempt>& attempts,
    std::size_t count) {
  ReferenceOracle oracle(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    oracle.SetBaseSeries(cell, spec.base_history[cell]);
  }
  std::vector<AcceptedInsert> accepted;
  for (std::size_t i = 0; i < count; ++i) {
    const InsertAttempt& attempt = attempts[i];
    std::int64_t time = oracle.frontier();
    if (attempt.behind) time -= 1;
    if (oracle.Insert(attempt.cell, time, attempt.value) ==
        OracleInsert::kAccepted) {
      accepted.push_back({attempt.cell, time, attempt.value});
    }
  }
  return accepted;
}

}  // namespace

void RemoveDirectoryTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string path = dir + "/" + name;
      struct stat st;
      if (::lstat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveDirectoryTree(path);  // shard-<k> subdirectories
      } else {
        ::unlink(path.c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

CrashFuzzReport RunCrashFuzz(const CrashFuzzOptions& options) {
  CrashFuzzReport report;
  const std::size_t num_shards = std::max<std::size_t>(1, options.num_shards);
  const bool sharded = num_shards > 1;
  // The sharded child runs complete rounds only (scatter-gather op mix):
  // partial inserts would let one shard's frontier run ahead of the global
  // oracle's and make the verdict stream ambiguous.
  const std::size_t shape =
      static_cast<std::size_t>(options.seed % NumWorkloadShapes());
  const WorkloadSpec spec =
      sharded ? GenerateScatterGatherWorkload(options.seed, shape,
                                              /*inject_refit_failures=*/false)
              : GenerateWorkload(options.seed, shape,
                                 /*inject_refit_failures=*/false);
  const auto fail = [&](const std::string& what) {
    report.ok = false;
    report.failure = "crash seed=" + std::to_string(options.seed) +
                     " shape=" + spec.shape_name +
                     " shards=" + std::to_string(num_shards) + ": " + what;
    if (!options.keep_dir_on_failure) RemoveDirectoryTree(options.data_dir);
    return report;
  };

  if (options.data_dir.empty()) return fail("data_dir must be set");

  const std::vector<InsertAttempt> attempts = FlattenAttempts(spec);
  report.attempts_total = attempts.size();

  // The crash plan, all seed-derived (independent stream from the
  // workload's so changing the plan never changes the workload).
  Rng rng(options.seed ^ 0xC4A5F2DBULL);
  const std::size_t kill_after =
      attempts.empty() ? 0
                       : static_cast<std::size_t>(rng.UniformInt(
                             1, static_cast<std::int64_t>(attempts.size())));
  const bool do_checkpoint = kill_after > 0 && rng.NextBernoulli(0.5);
  const std::size_t checkpoint_after =
      do_checkpoint ? static_cast<std::size_t>(rng.UniformInt(
                          0, static_cast<std::int64_t>(kill_after) - 1))
                    : 0;
  // The compaction leg: maybe call CompactNow mid-workload, and maybe die
  // INSIDE it at a seed-chosen protocol stage ("" lets it complete). Every
  // workload carries base history (>= 24 observations per series), so the
  // first compaction always seals a segment and every listed hook fires.
  static constexpr const char* kCompactKillPoints[] = {
      "", "segment_written", "before_manifest_rename",
      "after_manifest_rename", "before_wal_delete"};
  const bool do_compact = kill_after > 0 && rng.NextBernoulli(0.5);
  const char* compact_crash_point =
      kCompactKillPoints[do_compact ? rng.UniformInt(0, 4) : 0];
  const std::size_t compact_after =
      do_compact ? static_cast<std::size_t>(rng.UniformInt(
                       0, static_cast<std::int64_t>(kill_after) - 1))
                 : 0;
  // A compaction rewrites the WAL tail, so "truncate the last record" no
  // longer maps cleanly onto "drop the last accepted insert" — skip the
  // torn-tail leg on compacting iterations.
  const bool want_torn_tail = rng.NextBernoulli(0.4) && !do_compact;
  // With a kill point armed the child dies inside CompactNow, i.e. right
  // after executing attempt `compact_after` — the surviving prefix is
  // shorter than the planned one.
  const std::size_t effective_kill =
      (do_compact && compact_crash_point[0] != '\0') ? compact_after + 1
                                                     : kill_after;
  report.attempts_executed = effective_kill;
  report.checkpoint_taken = do_checkpoint && checkpoint_after < effective_kill;
  report.compaction_attempted = do_compact && compact_after < effective_kill;
  report.compaction_crash_point = compact_crash_point;

  RemoveDirectoryTree(options.data_dir);  // stale state from a prior run

  // ---- phase 1: the crashing child --------------------------------------
  const pid_t pid = ::fork();
  if (pid < 0) return fail(std::string("fork(): ") + ::strerror(errno));
  if (pid == 0) {
    if (sharded) {
      RunShardedChild(spec, attempts, kill_after, do_checkpoint,
                      checkpoint_after, do_compact, compact_after,
                      compact_crash_point, num_shards, options.data_dir);
    }
    RunChild(spec, attempts, kill_after, do_checkpoint, checkpoint_after,
             do_compact, compact_after, compact_crash_point,
             options.data_dir);
  }
  int wait_status = 0;
  if (::waitpid(pid, &wait_status, 0) != pid) {
    return fail(std::string("waitpid(): ") + ::strerror(errno));
  }
  report.killed_by_sigkill =
      WIFSIGNALED(wait_status) && WTERMSIG(wait_status) == SIGKILL;
  if (!report.killed_by_sigkill) {
    std::string child_error = "child exited without the planned SIGKILL";
    std::ifstream in(ChildErrorPath(options.data_dir));
    if (in.good()) {
      std::ostringstream text;
      text << in.rdbuf();
      child_error += ": " + text.str();
    }
    return fail(child_error);
  }

  // ---- phase 2: the expected surviving state ----------------------------
  std::vector<AcceptedInsert> accepted =
      AcceptedPrefix(spec, attempts, effective_kill);
  report.inserts_accepted = accepted.size();

  // ---- phase 3: optional torn tail --------------------------------------
  // Truncate mid-record only when the final record is an insert, so the
  // expected state is simply the accepted prefix minus its last element.
  // Sharded: tear the WAL of the shard OWNING the last accepted insert —
  // that insert is the last record of that shard's WAL, so popping it from
  // the accepted prefix stays exact while sibling shards replay intact.
  bool torn_injected = false;
  if (want_torn_tail && !accepted.empty()) {
    std::string wal_dir = options.data_dir;
    if (sharded) {
      const std::size_t torn_partition = ShardedEngine::PartitionOf(
          CellBaseValues(spec, accepted.back().cell)[0], num_shards);
      wal_dir += "/shard-" + std::to_string(torn_partition);
    }
    auto epochs = ListWalEpochs(wal_dir);
    if (!epochs.ok()) return fail("list epochs: " + epochs.status().ToString());
    if (!epochs.value().empty()) {
      const std::string last_path = WalPath(wal_dir, epochs.value().back());
      auto segment = ReadWalSegment(last_path);
      if (!segment.ok()) {
        return fail("read last segment: " + segment.status().ToString());
      }
      if (segment.value().torn_tail) {
        return fail("fsync=always child left a torn tail on its own");
      }
      if (!segment.value().records.empty() &&
          segment.value().records.back().kind == WalRecord::Kind::kInsert) {
        const std::uint64_t frame_bytes =
            EncodeWalRecord(segment.value().records.back()).size();
        const std::uint64_t cut = static_cast<std::uint64_t>(
            rng.UniformInt(1, static_cast<std::int64_t>(frame_bytes) - 1));
        if (::truncate(last_path.c_str(),
                       static_cast<off_t>(segment.value().valid_bytes - cut)) !=
            0) {
          return fail(std::string("truncate(): ") + ::strerror(errno));
        }
        torn_injected = true;
        accepted.pop_back();
      }
    }
  }
  report.torn_tail_injected = torn_injected;

  if (sharded) {
    // ---- phase 4 (sharded): recover every shard and compare -------------
    // No models were loaded, so the reference is the accepted stream
    // itself, reconciled per shard: shard p applies its j-th round once
    // every one of ITS cells has a j-th accepted value (independent of the
    // global round boundary); later values stay buffered.
    const ReferenceOracle probe(spec.dims);
    const std::size_t num_cells = probe.num_base_cells();
    std::vector<std::vector<double>> accepted_values(num_cells);
    for (const AcceptedInsert& insert : accepted) {
      accepted_values[insert.cell].push_back(insert.value);
    }
    std::vector<std::vector<std::size_t>> cells_of_partition(num_shards);
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      cells_of_partition[ShardedEngine::PartitionOf(
                             CellBaseValues(spec, cell)[0], num_shards)]
          .push_back(cell);
    }

    auto recover_graph = BuildWorkloadGraph(spec);
    if (!recover_graph.ok()) {
      return fail("recovery graph: " + recover_graph.status().ToString());
    }
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = num_shards;
    sharded_options.engine.maintenance_threads = 1;
    sharded_options.engine.reestimate_after_updates = 0;
    sharded_options.engine.data_dir = options.data_dir;
    sharded_options.engine.fsync_policy = FsyncPolicy::kAlways;
    auto engine = ShardedEngine::Open(recover_graph.value(), sharded_options);
    if (!engine.ok()) {
      return fail("sharded recovery open: " + engine.status().ToString());
    }
    const ShardedEngine& recovered = *engine.value();

    const EngineStats total = recovered.stats();
    report.records_replayed = total.wal_records_replayed;
    if ((total.torn_tail_detected != 0) != torn_injected) {
      return fail("torn_tail_detected=" +
                  std::to_string(total.torn_tail_detected) +
                  " but injected=" + std::to_string(torn_injected));
    }
    if (total.inserts != accepted.size()) {
      return fail("recovered inserts=" + std::to_string(total.inserts) +
                  " want " + std::to_string(accepted.size()));
    }

    for (const std::size_t partition : recovered.active_partitions()) {
      const std::vector<std::size_t>& cells = cells_of_partition[partition];
      std::size_t applied_rounds = accepted.size() + 1;
      std::size_t shard_inserts = 0;
      for (const std::size_t cell : cells) {
        applied_rounds =
            std::min(applied_rounds, accepted_values[cell].size());
        shard_inserts += accepted_values[cell].size();
      }
      const std::size_t shard_pending =
          shard_inserts - applied_rounds * cells.size();
      const F2dbEngine* shard = recovered.shard(partition);
      const EngineStats stats = shard->stats();
      const std::string tag = "shard " + std::to_string(partition);
      if (stats.inserts != shard_inserts) {
        return fail(tag + ": recovered inserts=" +
                    std::to_string(stats.inserts) + " want " +
                    std::to_string(shard_inserts));
      }
      if (stats.time_advances != applied_rounds) {
        return fail(tag + ": recovered time_advances=" +
                    std::to_string(stats.time_advances) + " want " +
                    std::to_string(applied_rounds));
      }
      if (shard->pending_inserts() != shard_pending) {
        return fail(tag + ": recovered pending=" +
                    std::to_string(shard->pending_inserts()) + " want " +
                    std::to_string(shard_pending));
      }

      // The recovered base series, value for value: the stored history
      // plus this shard's applied rounds.
      for (const std::size_t cell : cells) {
        const std::vector<std::string> names = CellBaseValues(spec, cell);
        std::vector<DimensionFilter> filters;
        for (std::size_t d = 0; d < spec.dims.size(); ++d) {
          filters.push_back({spec.dims[d].level_names[0], names[d]});
        }
        auto node = shard->ResolveNode(filters);
        if (!node.ok()) {
          return fail(tag + ": resolve cell " + std::to_string(cell) + ": " +
                      node.status().ToString());
        }
        const TimeSeries& series = shard->graph().series(node.value());
        if (series.size() != spec.history_length + applied_rounds) {
          return fail(tag + ": cell " + std::to_string(cell) +
                      " series length=" + std::to_string(series.size()) +
                      " want " +
                      std::to_string(spec.history_length + applied_rounds));
        }
        for (std::size_t j = 0; j < spec.history_length; ++j) {
          if (!ValuesClose(series[j], spec.base_history[cell][j])) {
            return fail(tag + ": cell " + std::to_string(cell) +
                        " history value diverged at t=" + std::to_string(j));
          }
        }
        for (std::size_t j = 0; j < applied_rounds; ++j) {
          if (!ValuesClose(series[spec.history_length + j],
                           accepted_values[cell][j])) {
            return fail(tag + ": cell " + std::to_string(cell) +
                        " applied value diverged at round " +
                        std::to_string(j));
          }
        }
      }
    }
    report.ok = true;
    RemoveDirectoryTree(options.data_dir);
    return report;
  }

  // The reference state the recovered engine must match: a configured
  // oracle fed exactly the surviving accepted inserts.
  auto oracle_graph = BuildWorkloadGraph(spec);
  if (!oracle_graph.ok()) {
    return fail("oracle graph: " + oracle_graph.status().ToString());
  }
  auto config = BuildWorkloadConfiguration(spec, oracle_graph.value());
  if (!config.ok()) return fail("config: " + config.status().ToString());
  ReferenceOracle oracle(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    oracle.SetBaseSeries(cell, spec.base_history[cell]);
  }
  InstallOracleConfiguration(spec, config.value(), oracle_graph.value(), oracle);
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (oracle.Insert(accepted[i].cell, accepted[i].time, accepted[i].value) !=
        OracleInsert::kAccepted) {
      return fail("accepted prefix replay rejected insert " +
                  std::to_string(i));
    }
  }

  // ---- phase 4: recover and compare -------------------------------------
  EngineOptions engine_options;
  engine_options.maintenance_threads = 1;
  engine_options.reestimate_after_updates = 0;
  engine_options.data_dir = options.data_dir;
  engine_options.fsync_policy = FsyncPolicy::kAlways;
  auto recover_graph = BuildWorkloadGraph(spec);
  if (!recover_graph.ok()) {
    return fail("recovery graph: " + recover_graph.status().ToString());
  }
  auto engine = F2dbEngine::Open(std::move(recover_graph.value()), engine_options);
  if (!engine.ok()) return fail("recovery open: " + engine.status().ToString());

  const EngineStats stats = engine.value()->stats();
  report.records_replayed = stats.wal_records_replayed;
  if ((stats.torn_tail_detected != 0) != torn_injected) {
    return fail("torn_tail_detected=" +
                std::to_string(stats.torn_tail_detected) + " but injected=" +
                std::to_string(torn_injected));
  }
  if (stats.inserts != accepted.size()) {
    return fail("recovered inserts=" + std::to_string(stats.inserts) +
                " want " + std::to_string(accepted.size()));
  }
  if (stats.time_advances != oracle.advances()) {
    return fail("recovered time_advances=" +
                std::to_string(stats.time_advances) + " want " +
                std::to_string(oracle.advances()));
  }
  if (engine.value()->pending_inserts() != oracle.pending_inserts()) {
    return fail("recovered pending=" +
                std::to_string(engine.value()->pending_inserts()) + " want " +
                std::to_string(oracle.pending_inserts()));
  }

  for (const OracleAddress& address : oracle.AllAddresses()) {
    const auto want = oracle.Forecast(address, kForecastHorizon);
    if (!want.has_value()) continue;  // engine reports the same error status
    auto node = engine.value()->graph().NodeFor(ToNodeAddress(address));
    if (!node.ok()) return fail("node of " + address.Key());
    const auto got = engine.value()->ForecastNode(node.value(), kForecastHorizon);
    if (!got.ok()) {
      return fail("forecast " + address.Key() + ": " + got.status().ToString());
    }
    if (got.value().size() != want->size()) {
      return fail("forecast " + address.Key() + ": row count mismatch");
    }
    for (std::size_t h = 0; h < want->size(); ++h) {
      if (!ValuesClose(got.value()[h], (*want)[h])) {
        return fail("forecast " + address.Key() + " h=" + std::to_string(h) +
                    ": engine=" + std::to_string(got.value()[h]) +
                    " oracle=" + std::to_string((*want)[h]));
      }
    }
  }

  report.ok = true;
  RemoveDirectoryTree(options.data_dir);
  return report;
}

}  // namespace f2db::testing
