#include "testing/differential.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/configuration.h"
#include "core/evaluator.h"
#include "cube/cube_schema.h"
#include "cube/hierarchy.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "ts/model_factory.h"

namespace f2db::testing {

namespace {

std::string RenderDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool ValuesClose(double a, double b, double rel, double abs) {
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::abs(a - b) <= abs + rel * std::max(std::abs(a), std::abs(b));
}

NodeAddress ToNodeAddress(const OracleAddress& address) {
  NodeAddress out;
  out.coords.resize(address.coords.size());
  for (std::size_t d = 0; d < address.coords.size(); ++d) {
    out.coords[d] = {static_cast<LevelIndex>(address.coords[d].level),
                     static_cast<ValueIndex>(address.coords[d].value)};
  }
  return out;
}

/// Maps the ReferenceOracle insert verdict to the StatusCode the engines
/// must report. kNonFinite maps to kInvalidArgument on BOTH paths: the
/// typed path rejects the non-finite value, the SQL path rejects the
/// unparseable "nan" literal — same code, different message.
StatusCode ExpectedInsertCode(OracleInsert verdict) {
  switch (verdict) {
    case OracleInsert::kAccepted:
      return StatusCode::kOk;
    case OracleInsert::kBehindFrontier:
      return StatusCode::kOutOfRange;
    case OracleInsert::kDuplicate:
      return StatusCode::kAlreadyExists;
    case OracleInsert::kNonFinite:
    case OracleInsert::kUnknownCell:
      return StatusCode::kInvalidArgument;
  }
  return StatusCode::kInternal;
}

/// The degradation annotation every executor must report for a query on
/// `address`, derived from the oracle's state alone:
///   - a scheme source without a model forces the derived-fallback rung;
///   - in fault mode every model invalidates after `reestimate_after`
///     advances and the armed engine.refit failpoint turns the lazy refit
///     into the stale-model rung.
DegradationLevel ExpectedDegradation(const WorkloadSpec& spec,
                                     const ReferenceOracle& oracle,
                                     const OracleAddress& address) {
  if (!oracle.FullFidelity(address)) return DegradationLevel::kDerivedFallback;
  if (spec.inject_refit_failures && spec.reestimate_after_updates > 0 &&
      oracle.advances() >= spec.reestimate_after_updates) {
    return DegradationLevel::kStaleModel;
  }
  return DegradationLevel::kNone;
}

/// Rows parsed back from a wire QUERY response body.
struct WireRows {
  std::vector<std::pair<std::int64_t, double>> rows;
  bool degraded_marker = false;
  bool parse_ok = true;
  std::string parse_error;
};

WireRows ParseWireBody(const std::string& body) {
  WireRows out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("--", 0) == 0) {
      if (line.rfind("-- degraded:", 0) == 0) out.degraded_marker = true;
      continue;
    }
    const std::size_t bar = line.find('|');
    if (bar == std::string::npos) {
      out.parse_ok = false;
      out.parse_error = "row without '|': " + line;
      return out;
    }
    char* end = nullptr;
    const long long time = std::strtoll(line.c_str(), &end, 10);
    const double value = std::strtod(line.c_str() + bar + 1, nullptr);
    out.rows.push_back({static_cast<std::int64_t>(time), value});
  }
  return out;
}

}  // namespace

Result<ModelConfiguration> BuildWorkloadConfiguration(
    const WorkloadSpec& spec, const TimeSeriesGraph& graph) {
  ModelConfiguration config(graph.num_nodes());
  const std::size_t train = graph.series_length() - 1;
  for (const ModelPlacement& placement : spec.models) {
    F2DB_ASSIGN_OR_RETURN(NodeId node,
                          graph.NodeFor(ToNodeAddress(placement.node)));
    const TimeSeries history = graph.series(node).Head(train);
    ModelSpec model_spec;
    model_spec.type = placement.type;
    model_spec.period = placement.period;
    ModelFactory factory(model_spec);
    auto fitted = factory.CreateAndFit(history);
    if (!fitted.ok()) {
      // Deterministic fallback: a Mean fit succeeds on any non-empty
      // history, and every executor takes the same branch.
      ModelSpec mean_spec;
      mean_spec.type = ModelType::kMean;
      mean_spec.period = 1;
      fitted = ModelFactory(mean_spec).CreateAndFit(history);
      if (!fitted.ok()) return fitted.status();
    }
    ModelEntry entry;
    entry.model = std::move(fitted.value());
    config.AddModel(node, std::move(entry));
  }
  for (const SchemeChoice& choice : spec.schemes) {
    F2DB_ASSIGN_OR_RETURN(NodeId target,
                          graph.NodeFor(ToNodeAddress(choice.target)));
    std::vector<NodeId> sources;
    for (const OracleAddress& source : choice.sources) {
      F2DB_ASSIGN_OR_RETURN(NodeId id,
                            graph.NodeFor(ToNodeAddress(source)));
      sources.push_back(id);
    }
    NodeAssignment assignment;
    assignment.error = 0.5;
    assignment.scheme = DerivationScheme::Multi(std::move(sources));
    config.set_assignment(target, std::move(assignment));
  }
  return config;
}

/// Mirrors LoadConfiguration into the oracle: bit-identical clones of the
/// fitted models, each caught up by the one observation the engine's
/// catch-up step replays (the oracle uses its own naive aggregate).
void InstallOracleConfiguration(const WorkloadSpec& spec,
                                const ModelConfiguration& config,
                                const TimeSeriesGraph& graph,
                                ReferenceOracle& oracle) {
  for (const ModelPlacement& placement : spec.models) {
    const auto node = graph.NodeFor(ToNodeAddress(placement.node));
    const ForecastModel* fitted = config.model(node.value());
    oracle.SetModel(placement.node, fitted->Clone());
    oracle.UpdateModel(placement.node, oracle.SeriesOf(placement.node).back());
  }
  for (const SchemeChoice& choice : spec.schemes) {
    oracle.SetScheme(choice.target, choice.sources);
  }
}

namespace {

/// Disarms the failpoints the driver arms, whatever the exit path.
class ScopedFailpoints {
 public:
  ~ScopedFailpoints() {
    failpoint::Disable(kFailpointEngineRefit);
    failpoint::Disable(kFailpointEngineInsert);
  }
};

struct InsertOutcome {
  StatusCode code = StatusCode::kOk;
  std::string message;
};

}  // namespace

Result<TimeSeriesGraph> BuildWorkloadGraph(const WorkloadSpec& spec) {
  CubeSchema schema;
  for (std::size_t d = 0; d < spec.dims.size(); ++d) {
    const OracleDimension& dim = spec.dims[d];
    Hierarchy hierarchy(dim.name);
    for (std::size_t l = 0; l < dim.num_levels(); ++l) {
      F2DB_RETURN_IF_ERROR(
          hierarchy.AddLevel(dim.level_names[l], dim.values[l]));
    }
    for (std::size_t l = 0; l + 1 < dim.num_levels(); ++l) {
      for (std::size_t v = 0; v < dim.values[l].size(); ++v) {
        F2DB_RETURN_IF_ERROR(hierarchy.SetParent(
            static_cast<LevelIndex>(l), static_cast<ValueIndex>(v),
            static_cast<ValueIndex>(dim.parents[l][v])));
      }
    }
    F2DB_RETURN_IF_ERROR(hierarchy.Finalize());
    F2DB_RETURN_IF_ERROR(schema.AddHierarchy(std::move(hierarchy)));
  }
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph,
                        TimeSeriesGraph::Create(std::move(schema)));

  const ReferenceOracle probe(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    F2DB_ASSIGN_OR_RETURN(
        NodeId node, graph.NodeFor(ToNodeAddress(probe.CellAddress(cell))));
    F2DB_RETURN_IF_ERROR(
        graph.SetBaseSeries(node, TimeSeries(spec.base_history[cell])));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return graph;
}

std::string BuildQuerySql(const WorkloadSpec& spec,
                          const OracleAddress& address, std::size_t horizon) {
  std::string sql = "SELECT time, SUM(m) FROM facts";
  bool first = true;
  for (std::size_t d = 0; d < spec.dims.size(); ++d) {
    const OracleDimension& dim = spec.dims[d];
    const auto& [level, value] = address.coords[d];
    if (level >= dim.num_levels()) continue;  // ALL: no predicate
    sql += first ? " WHERE " : " AND ";
    first = false;
    sql += dim.level_names[level] + " = '" + dim.values[level][value] + "'";
  }
  sql += " GROUP BY time AS OF now() + '" + std::to_string(horizon) + "'";
  return sql;
}

std::string BuildInsertSql(const WorkloadSpec& spec, std::size_t cell,
                           std::int64_t time, double value) {
  // Decode the cell in the oracle's odometer order (dimension 0 most
  // significant) into level-0 value names.
  std::vector<std::size_t> values(spec.dims.size(), 0);
  std::size_t rest = cell;
  for (std::size_t d = spec.dims.size(); d-- > 0;) {
    const std::size_t radix = spec.dims[d].num_values(0);
    values[d] = rest % radix;
    rest /= radix;
  }
  std::string sql = "INSERT INTO facts VALUES (";
  for (std::size_t d = 0; d < spec.dims.size(); ++d) {
    sql += "'" + spec.dims[d].values[0][values[d]] + "', ";
  }
  sql += std::to_string(time) + ", " + RenderDouble(value) + ")";
  return sql;
}

DifferentialReport RunDifferential(const WorkloadSpec& spec,
                                   const DifferentialOptions& options) {
  DifferentialReport report;
  const auto fail = [&](std::size_t op_index, const std::string& what) {
    report.ok = false;
    report.failure = "seed=" + std::to_string(spec.seed) + " shape=" +
                     spec.shape_name + " op[" + std::to_string(op_index) +
                     "]: " + what;
    return report;
  };
  constexpr std::size_t kSetupOp = static_cast<std::size_t>(-1);

  // ---- setup: oracle, embedded engine, server engine -------------------
  ReferenceOracle oracle(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    oracle.SetBaseSeries(cell, spec.base_history[cell]);
  }

  EngineOptions engine_options;
  engine_options.reestimate_after_updates = spec.reestimate_after_updates;
  engine_options.maintenance_threads = 1;

  auto graph = BuildWorkloadGraph(spec);
  if (!graph.ok()) return fail(kSetupOp, graph.status().ToString());
  F2dbEngine embedded(std::move(graph.value()), engine_options);

  auto config = BuildWorkloadConfiguration(spec, embedded.graph());
  if (!config.ok()) return fail(kSetupOp, config.status().ToString());
  const ConfigurationEvaluator evaluator(embedded.graph(), 1.0);
  {
    const Status loaded = embedded.LoadConfiguration(config.value(), evaluator);
    if (!loaded.ok()) return fail(kSetupOp, loaded.ToString());
  }
  InstallOracleConfiguration(spec, config.value(), embedded.graph(), oracle);

  std::unique_ptr<F2dbEngine> server_engine;
  std::unique_ptr<F2dbServer> server;
  F2dbClient client;
  if (options.run_server) {
    auto server_graph = BuildWorkloadGraph(spec);
    if (!server_graph.ok()) {
      return fail(kSetupOp, server_graph.status().ToString());
    }
    server_engine = std::make_unique<F2dbEngine>(
        std::move(server_graph.value()), engine_options);
    const ConfigurationEvaluator server_evaluator(server_engine->graph(), 1.0);
    const Status loaded =
        server_engine->LoadConfiguration(config.value(), server_evaluator);
    if (!loaded.ok()) return fail(kSetupOp, loaded.ToString());
    ServerOptions server_options;
    server_options.worker_threads = 2;
    server = std::make_unique<F2dbServer>(*server_engine, server_options);
    const Status started = server->Start();
    if (!started.ok()) return fail(kSetupOp, started.ToString());
    auto connected = F2dbClient::Connect("127.0.0.1", server->port());
    if (!connected.ok()) return fail(kSetupOp, connected.status().ToString());
    client = std::move(connected.value());
  }

  ScopedFailpoints failpoint_guard;
  if (spec.inject_refit_failures) {
    failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());
  }

  // One insert through every executor; the wire leg is skipped when the
  // server is off.
  const auto run_insert = [&](std::size_t cell, std::int64_t time,
                              double value, bool injected)
      -> std::pair<InsertOutcome, InsertOutcome> {
    const std::string sql = BuildInsertSql(spec, cell, time, value);
    InsertOutcome embedded_outcome;
    {
      auto result = embedded.ExecuteStatementText(sql);
      embedded_outcome.code =
          result.ok() ? StatusCode::kOk : result.status().code();
      if (!result.ok()) embedded_outcome.message = result.status().ToString();
    }
    InsertOutcome wire_outcome;
    wire_outcome.code = embedded_outcome.code;  // mirrors when server off
    if (options.run_server) {
      auto response = client.Insert(sql);
      if (!response.ok()) {
        wire_outcome.code = StatusCode::kInternal;
        wire_outcome.message =
            "transport failure: " + response.status().ToString();
      } else {
        wire_outcome.code = response.value().status;
        wire_outcome.message = response.value().body;
      }
    }
    (void)injected;
    return {embedded_outcome, wire_outcome};
  };

  // ---- the op loop -----------------------------------------------------
  const std::vector<OracleAddress> addresses = oracle.AllAddresses();
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const WorkloadOp& op = spec.ops[i];
    switch (op.kind) {
      case OpKind::kQuery: {
        const OracleAddress& address =
            addresses[op.address_index % addresses.size()];
        const std::string sql = BuildQuerySql(spec, address, op.horizon);
        const std::int64_t now = oracle.frontier();
        const auto oracle_forecast = oracle.Forecast(address, op.horizon);
        const auto embedded_result = embedded.ExecuteSql(sql);

        if (embedded_result.ok() != oracle_forecast.has_value()) {
          return fail(i, "availability mismatch for \"" + sql +
                             "\": embedded=" +
                             (embedded_result.ok()
                                  ? "ok"
                                  : embedded_result.status().ToString()) +
                             " oracle=" +
                             (oracle_forecast ? "ok" : "unavailable"));
        }
        ++report.queries;
        if (embedded_result.ok()) {
          const QueryResult& result = embedded_result.value();
          const std::vector<double>& expected = *oracle_forecast;
          if (result.rows.size() != expected.size()) {
            return fail(i, "row count mismatch for \"" + sql + "\": embedded=" +
                               std::to_string(result.rows.size()) +
                               " oracle=" + std::to_string(expected.size()));
          }
          const DegradationLevel expected_level =
              ExpectedDegradation(spec, oracle, address);
          if (result.degradation != expected_level) {
            return fail(
                i, "degradation mismatch for \"" + sql + "\": embedded=" +
                       DegradationLevelName(result.degradation) +
                       " expected=" + DegradationLevelName(expected_level) +
                       " (" + result.degradation_reason + ")");
          }
          if (expected_level != DegradationLevel::kNone) {
            report.degraded_rows += result.rows.size();
          }
          for (std::size_t h = 0; h < expected.size(); ++h) {
            const ForecastRow& row = result.rows[h];
            if (row.time != now + static_cast<std::int64_t>(h)) {
              return fail(i, "row time mismatch for \"" + sql + "\": got " +
                                 std::to_string(row.time) + " expected " +
                                 std::to_string(now + static_cast<int64_t>(h)));
            }
            if (!ValuesClose(row.value, expected[h], options.rel_tol,
                             options.abs_tol)) {
              return fail(i, "value mismatch for \"" + sql + "\" at h=" +
                                 std::to_string(h) + ": embedded=" +
                                 RenderDouble(row.value) + " oracle=" +
                                 RenderDouble(expected[h]));
            }
            ++report.rows_compared;
          }
        }

        if (options.run_server) {
          auto response = client.Query(sql);
          if (!response.ok()) {
            return fail(i, "wire transport failure for \"" + sql +
                               "\": " + response.status().ToString());
          }
          const WireResponse& wire = response.value();
          if ((wire.status == StatusCode::kOk) != embedded_result.ok()) {
            return fail(i, "wire status mismatch for \"" + sql +
                               "\": wire=" + std::to_string(static_cast<int>(
                                                 wire.status)) +
                               " embedded ok=" +
                               (embedded_result.ok() ? "1" : "0"));
          }
          if (embedded_result.ok()) {
            const QueryResult& result = embedded_result.value();
            if (wire.degradation != result.degradation) {
              return fail(i, "wire degradation annotation mismatch for \"" +
                                 sql + "\": wire=" +
                                 DegradationLevelName(wire.degradation) +
                                 " embedded=" +
                                 DegradationLevelName(result.degradation));
            }
            const WireRows parsed = ParseWireBody(wire.body);
            if (!parsed.parse_ok) {
              return fail(i, "unparseable wire body for \"" + sql +
                                 "\": " + parsed.parse_error);
            }
            if (parsed.degraded_marker !=
                (result.degradation != DegradationLevel::kNone)) {
              return fail(i, "wire '-- degraded:' marker mismatch for \"" +
                                 sql + "\" (silently degraded answer)");
            }
            if (parsed.rows.size() != result.rows.size()) {
              return fail(i, "wire row count mismatch for \"" + sql + "\"");
            }
            for (std::size_t h = 0; h < parsed.rows.size(); ++h) {
              if (parsed.rows[h].first != result.rows[h].time) {
                return fail(i, "wire row time mismatch for \"" + sql + "\"");
              }
              if (!ValuesClose(parsed.rows[h].second, result.rows[h].value,
                               1e-9, options.wire_abs_tol)) {
                return fail(i, "wire value mismatch for \"" + sql +
                                   "\" at h=" + std::to_string(h) +
                                   ": wire=" +
                                   RenderDouble(parsed.rows[h].second) +
                                   " embedded=" +
                                   RenderDouble(result.rows[h].value));
              }
            }
          }
        }
        break;
      }
      case OpKind::kInsertRound: {
        const std::int64_t time = oracle.frontier();
        for (const std::size_t cell : op.insert_order) {
          const double value = op.round_values[cell];
          const OracleInsert verdict = oracle.Insert(cell, time, value);
          const auto [embedded_outcome, wire_outcome] =
              run_insert(cell, time, value, false);
          const StatusCode expected = ExpectedInsertCode(verdict);
          if (embedded_outcome.code != expected ||
              wire_outcome.code != expected) {
            return fail(i, "insert verdict mismatch cell=" +
                               std::to_string(cell) + " t=" +
                               std::to_string(time) + ": oracle expects " +
                               StatusCodeName(expected) + ", embedded=" +
                               StatusCodeName(embedded_outcome.code) + " (" +
                               embedded_outcome.message + "), wire=" +
                               StatusCodeName(wire_outcome.code));
          }
          verdict == OracleInsert::kAccepted ? ++report.inserts_accepted
                                             : ++report.inserts_rejected;
        }
        break;
      }
      case OpKind::kInsertPartial:
      case OpKind::kInsertBehind:
      case OpKind::kInsertNonFinite: {
        std::int64_t time = oracle.frontier();
        if (op.kind == OpKind::kInsertBehind) time -= 1;
        const OracleInsert verdict = oracle.Insert(op.cell, time, op.value);
        const auto [embedded_outcome, wire_outcome] =
            run_insert(op.cell, time, op.value, false);
        const StatusCode expected = ExpectedInsertCode(verdict);
        if (embedded_outcome.code != expected ||
            wire_outcome.code != expected) {
          return fail(i, std::string(OpKindName(op.kind)) +
                             " verdict mismatch cell=" +
                             std::to_string(op.cell) + " t=" +
                             std::to_string(time) + ": oracle expects " +
                             StatusCodeName(expected) + ", embedded=" +
                             StatusCodeName(embedded_outcome.code) + " (" +
                             embedded_outcome.message + "), wire=" +
                             StatusCodeName(wire_outcome.code));
        }
        verdict == OracleInsert::kAccepted ? ++report.inserts_accepted
                                           : ++report.inserts_rejected;
        break;
      }
      case OpKind::kInsertInjectedFault: {
        // Armed only across this one insert; the oracle never sees it and
        // both engines must shed it with the injected kUnavailable.
        const std::int64_t time = oracle.frontier();
        failpoint::Enable(kFailpointEngineInsert,
                          failpoint::Policy::Always());
        const auto [embedded_outcome, wire_outcome] =
            run_insert(op.cell, time, op.value, true);
        failpoint::Disable(kFailpointEngineInsert);
        if (embedded_outcome.code != StatusCode::kUnavailable ||
            wire_outcome.code != StatusCode::kUnavailable) {
          return fail(i, "injected insert fault not surfaced: embedded=" +
                             std::string(StatusCodeName(
                                 embedded_outcome.code)) +
                             " wire=" + StatusCodeName(wire_outcome.code));
        }
        ++report.inserts_rejected;
        break;
      }
    }
  }

  // ---- end-of-run maintenance invariants -------------------------------
  if (embedded.pending_inserts() != oracle.pending_inserts()) {
    return fail(spec.ops.size(),
                "pending-insert mismatch: embedded=" +
                    std::to_string(embedded.pending_inserts()) + " oracle=" +
                    std::to_string(oracle.pending_inserts()));
  }
  if (embedded.stats().time_advances != oracle.advances()) {
    return fail(spec.ops.size(),
                "advance-count mismatch: embedded=" +
                    std::to_string(embedded.stats().time_advances) +
                    " oracle=" + std::to_string(oracle.advances()));
  }
  if (options.run_server) {
    if (server_engine->pending_inserts() != oracle.pending_inserts() ||
        server_engine->stats().time_advances != oracle.advances()) {
      return fail(spec.ops.size(), "server maintenance state diverged");
    }
    client.Close();
    server->Shutdown();
  }
  return report;
}

namespace {

/// The typed ForecastQuery of one oracle address. The sharded facade has
/// no SQL entry point; EngineInterface::Execute takes the parsed form,
/// and level/value names resolve identically against the global schema.
ForecastQuery BuildShardedQuery(const WorkloadSpec& spec,
                                const OracleAddress& address,
                                std::size_t horizon) {
  ForecastQuery query;
  query.measure = "m";
  query.aggregate = true;
  query.horizon = horizon;
  for (std::size_t d = 0; d < spec.dims.size(); ++d) {
    const OracleDimension& dim = spec.dims[d];
    const auto& [level, value] = address.coords[d];
    if (level >= dim.num_levels()) continue;  // ALL: no predicate
    query.filters.push_back(
        {dim.level_names[level], dim.values[level][value]});
  }
  return query;
}

/// Level-0 value names of one base cell, decoded in the oracle's odometer
/// order (dimension 0 most significant) — the InsertFact address form.
std::vector<std::string> CellBaseValues(const WorkloadSpec& spec,
                                        std::size_t cell) {
  std::vector<std::string> names(spec.dims.size());
  std::size_t rest = cell;
  for (std::size_t d = spec.dims.size(); d-- > 0;) {
    const std::size_t radix = spec.dims[d].num_values(0);
    names[d] = spec.dims[d].values[0][rest % radix];
    rest /= radix;
  }
  return names;
}

}  // namespace

DifferentialReport RunShardedDifferential(
    const WorkloadSpec& spec, const ShardedDifferentialOptions& options) {
  DifferentialReport report;
  const std::size_t num_shards = std::max<std::size_t>(1, options.num_shards);
  const auto fail = [&](std::size_t op_index, const std::string& what) {
    report.ok = false;
    report.failure = "seed=" + std::to_string(spec.seed) + " shape=" +
                     spec.shape_name + " shards=" +
                     std::to_string(num_shards) + " op[" +
                     std::to_string(op_index) + "]: " + what;
    return report;
  };
  constexpr std::size_t kSetupOp = static_cast<std::size_t>(-1);

  // ---- setup: oracle and sharded engine --------------------------------
  ReferenceOracle oracle(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    oracle.SetBaseSeries(cell, spec.base_history[cell]);
  }

  auto graph = BuildWorkloadGraph(spec);
  if (!graph.ok()) return fail(kSetupOp, graph.status().ToString());

  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = num_shards;
  sharded_options.engine.reestimate_after_updates =
      spec.reestimate_after_updates;
  sharded_options.engine.maintenance_threads = 1;
  auto opened = ShardedEngine::Open(graph.value(), sharded_options);
  if (!opened.ok()) return fail(kSetupOp, opened.status().ToString());
  ShardedEngine& sharded = *opened.value();

  auto config = BuildWorkloadConfiguration(spec, graph.value());
  if (!config.ok()) return fail(kSetupOp, config.status().ToString());
  {
    const Status loaded = sharded.LoadConfiguration(config.value(), 1.0);
    if (!loaded.ok()) return fail(kSetupOp, loaded.ToString());
  }
  InstallOracleConfiguration(spec, config.value(), graph.value(), oracle);

  ScopedFailpoints failpoint_guard;
  if (spec.inject_refit_failures) {
    failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());
  }

  const auto run_insert = [&](std::size_t op_index, std::size_t cell,
                              std::int64_t time, double value,
                              StatusCode expected,
                              bool* diverged) -> DifferentialReport {
    const Status status =
        sharded.InsertFact(CellBaseValues(spec, cell), time, value);
    const StatusCode got = status.ok() ? StatusCode::kOk : status.code();
    if (got != expected) {
      *diverged = true;
      return fail(op_index,
                  "insert verdict mismatch cell=" + std::to_string(cell) +
                      " t=" + std::to_string(time) + ": oracle expects " +
                      StatusCodeName(expected) + ", sharded=" +
                      StatusCodeName(got) + " (" + status.ToString() + ")");
    }
    expected == StatusCode::kOk ? ++report.inserts_accepted
                                : ++report.inserts_rejected;
    *diverged = false;
    return report;
  };

  // ---- the op loop -----------------------------------------------------
  const std::vector<OracleAddress> addresses = oracle.AllAddresses();
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const WorkloadOp& op = spec.ops[i];
    switch (op.kind) {
      case OpKind::kQuery: {
        const OracleAddress& address =
            addresses[op.address_index % addresses.size()];
        const ForecastQuery query =
            BuildShardedQuery(spec, address, op.horizon);
        const std::string sql = query.ToString();
        const std::int64_t now = oracle.frontier();
        const auto oracle_forecast = oracle.Forecast(address, op.horizon);
        const auto result = sharded.Execute(query);

        if (result.ok() != oracle_forecast.has_value()) {
          return fail(i, "availability mismatch for \"" + sql +
                             "\": sharded=" +
                             (result.ok() ? "ok" : result.status().ToString()) +
                             " oracle=" +
                             (oracle_forecast ? "ok" : "unavailable"));
        }
        ++report.queries;
        if (result.ok()) {
          const QueryResult& answer = result.value();
          const std::vector<double>& expected = *oracle_forecast;
          if (answer.rows.size() != expected.size()) {
            return fail(i, "row count mismatch for \"" + sql + "\": sharded=" +
                               std::to_string(answer.rows.size()) +
                               " oracle=" + std::to_string(expected.size()));
          }
          const DegradationLevel expected_level =
              ExpectedDegradation(spec, oracle, address);
          if (answer.degradation != expected_level) {
            return fail(
                i, "merged degradation mismatch for \"" + sql +
                       "\": sharded=" + DegradationLevelName(answer.degradation) +
                       " expected=" + DegradationLevelName(expected_level) +
                       " (" + answer.degradation_reason + ")");
          }
          if (expected_level != DegradationLevel::kNone) {
            report.degraded_rows += answer.rows.size();
          }
          for (std::size_t h = 0; h < expected.size(); ++h) {
            const ForecastRow& row = answer.rows[h];
            if (row.time != now + static_cast<std::int64_t>(h)) {
              return fail(i, "row time mismatch for \"" + sql + "\": got " +
                                 std::to_string(row.time) + " expected " +
                                 std::to_string(now + static_cast<int64_t>(h)));
            }
            if (!ValuesClose(row.value, expected[h], options.rel_tol,
                             options.abs_tol)) {
              return fail(i, "value mismatch for \"" + sql + "\" at h=" +
                                 std::to_string(h) + ": sharded=" +
                                 RenderDouble(row.value) + " oracle=" +
                                 RenderDouble(expected[h]));
            }
            ++report.rows_compared;
          }
        }
        break;
      }
      case OpKind::kInsertRound: {
        const std::int64_t time = oracle.frontier();
        for (const std::size_t cell : op.insert_order) {
          const double value = op.round_values[cell];
          const OracleInsert verdict = oracle.Insert(cell, time, value);
          bool diverged = false;
          run_insert(i, cell, time, value, ExpectedInsertCode(verdict),
                     &diverged);
          if (diverged) return report;
        }
        break;
      }
      case OpKind::kInsertPartial:
      case OpKind::kInsertBehind:
      case OpKind::kInsertNonFinite: {
        std::int64_t time = oracle.frontier();
        if (op.kind == OpKind::kInsertBehind) time -= 1;
        const OracleInsert verdict = oracle.Insert(op.cell, time, op.value);
        bool diverged = false;
        run_insert(i, op.cell, time, op.value, ExpectedInsertCode(verdict),
                   &diverged);
        if (diverged) return report;
        break;
      }
      case OpKind::kInsertInjectedFault: {
        // The oracle never sees it; the owning shard must shed it with the
        // injected kUnavailable.
        const std::int64_t time = oracle.frontier();
        failpoint::Enable(kFailpointEngineInsert,
                          failpoint::Policy::Always());
        bool diverged = false;
        run_insert(i, op.cell, time, op.value, StatusCode::kUnavailable,
                   &diverged);
        failpoint::Disable(kFailpointEngineInsert);
        if (diverged) return report;
        break;
      }
    }
  }

  // ---- end-of-run maintenance invariants -------------------------------
  if (sharded.pending_inserts() != oracle.pending_inserts()) {
    return fail(spec.ops.size(),
                "pending-insert mismatch: sharded=" +
                    std::to_string(sharded.pending_inserts()) + " oracle=" +
                    std::to_string(oracle.pending_inserts()));
  }
  for (const std::size_t partition : sharded.active_partitions()) {
    const F2dbEngine* shard = sharded.shard(partition);
    if (shard->stats().time_advances != oracle.advances()) {
      return fail(spec.ops.size(),
                  "advance-count mismatch on shard " +
                      std::to_string(partition) + ": shard=" +
                      std::to_string(shard->stats().time_advances) +
                      " oracle=" + std::to_string(oracle.advances()));
    }
  }
  return report;
}

OverloadDifferentialReport RunOverloadDifferential(
    const WorkloadSpec& spec, const OverloadDifferentialOptions& options) {
  OverloadDifferentialReport report;
  const auto fail = [&](const std::string& what) {
    report.ok = false;
    report.failure = "seed=" + std::to_string(spec.seed) + " shape=" +
                     spec.shape_name + ": " + what;
    return report;
  };

  // ---- setup: oracle, engine, loopback server --------------------------
  ReferenceOracle oracle(spec.dims);
  for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
    oracle.SetBaseSeries(cell, spec.base_history[cell]);
  }

  EngineOptions engine_options;
  engine_options.reestimate_after_updates = spec.reestimate_after_updates;
  engine_options.maintenance_threads = 1;
  auto graph = BuildWorkloadGraph(spec);
  if (!graph.ok()) return fail(graph.status().ToString());
  F2dbEngine engine(std::move(graph.value()), engine_options);

  auto config = BuildWorkloadConfiguration(spec, engine.graph());
  if (!config.ok()) return fail(config.status().ToString());
  const ConfigurationEvaluator evaluator(engine.graph(), 1.0);
  {
    const Status loaded = engine.LoadConfiguration(config.value(), evaluator);
    if (!loaded.ok()) return fail(loaded.ToString());
  }
  InstallOracleConfiguration(spec, config.value(), engine.graph(), oracle);

  ScopedFailpoints failpoint_guard;
  if (spec.inject_refit_failures) {
    failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());
  }

  ServerOptions server_options;
  server_options.worker_threads = options.worker_threads;
  server_options.admission_queue_limit = options.admission_queue_limit;
  server_options.brownout_watermark = options.brownout_watermark;
  F2dbServer server(engine, server_options);
  {
    const Status started = server.Start();
    if (!started.ok()) return fail(started.ToString());
  }
  auto connected = F2dbClient::Connect("127.0.0.1", server.port());
  if (!connected.ok()) return fail(connected.status().ToString());
  F2dbClient setup_client = std::move(connected.value());

  // ---- phase 1 (calm): advance the frontier through the wire -----------
  // Enough complete insert rounds to cross the invalidation threshold, so
  // a fault-mode spec serves the stale rung during the flood.
  const std::size_t rounds =
      spec.reestimate_after_updates > 0 ? spec.reestimate_after_updates : 1;
  const std::size_t num_cells = spec.base_history.size();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::int64_t time = oracle.frontier();
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      const double value =
          10.0 + static_cast<double>(r) + 0.5 * static_cast<double>(cell);
      const OracleInsert verdict = oracle.Insert(cell, time, value);
      const StatusCode expected = ExpectedInsertCode(verdict);
      auto response =
          setup_client.Insert(BuildInsertSql(spec, cell, time, value));
      if (!response.ok()) {
        return fail("insert transport failure: " +
                    response.status().ToString());
      }
      if (response.value().status != expected) {
        return fail("insert verdict mismatch cell=" + std::to_string(cell) +
                    " t=" + std::to_string(time) + ": oracle expects " +
                    StatusCodeName(expected) + ", wire=" +
                    StatusCodeName(response.value().status));
      }
    }
  }

  // ---- precompute the oracle's expected answer per target --------------
  struct ExpectedAnswer {
    std::string sql;
    std::vector<double> values;
    DegradationLevel level = DegradationLevel::kNone;
    std::int64_t now = 0;
  };
  std::vector<ExpectedAnswer> targets;
  for (const OracleAddress& address : oracle.AllAddresses()) {
    for (const std::size_t horizon : {1, 3}) {
      const auto forecast = oracle.Forecast(address, horizon);
      if (!forecast.has_value()) continue;
      ExpectedAnswer target;
      target.sql = BuildQuerySql(spec, address, horizon);
      target.values = *forecast;
      target.level = ExpectedDegradation(spec, oracle, address);
      target.now = oracle.frontier();
      targets.push_back(std::move(target));
    }
  }
  if (targets.empty()) return fail("no forecastable addresses in the spec");

  // ---- phase 2: concurrent flood ---------------------------------------
  std::atomic<std::size_t> sent{0}, full_fidelity{0}, degraded{0}, shed{0},
      expired{0};
  std::mutex failure_mutex;
  std::string first_failure;
  const auto record_failure = [&](const std::string& what) {
    std::lock_guard<std::mutex> lock(failure_mutex);
    if (first_failure.empty()) first_failure = what;
  };

  std::vector<std::thread> clients;
  clients.reserve(options.num_clients);
  for (std::size_t c = 0; c < options.num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto flood_connected = F2dbClient::Connect("127.0.0.1", server.port());
      if (!flood_connected.ok()) {
        record_failure("flood client connect: " +
                       flood_connected.status().ToString());
        return;
      }
      F2dbClient client = std::move(flood_connected.value());
      for (std::size_t i = 0; i < options.queries_per_client; ++i) {
        const ExpectedAnswer& target =
            targets[(c + i * 7) % targets.size()];
        // Every other query carries a generous wire deadline so the v2
        // extended header is exercised under concurrency too.
        auto response =
            (i % 2 == 0)
                ? client.Query(target.sql)
                : client.CallWithDeadline(FrameType::kQuery, target.sql,
                                          60'000);
        sent.fetch_add(1, std::memory_order_relaxed);
        if (!response.ok()) {
          record_failure("flood transport failure: " +
                         response.status().ToString());
          return;
        }
        const WireResponse& wire = response.value();
        switch (wire.status) {
          case StatusCode::kOk: {
            const WireRows parsed = ParseWireBody(wire.body);
            if (!parsed.parse_ok) {
              record_failure("unparseable body for \"" + target.sql +
                             "\": " + parsed.parse_error);
              return;
            }
            // Degraded-never-wrong, half 1: any degraded answer must say
            // so in the body — a missing marker is a silent degradation.
            if (parsed.degraded_marker !=
                (wire.degradation != DegradationLevel::kNone)) {
              record_failure("degradation annotation mismatch for \"" +
                             target.sql + "\": header=" +
                             DegradationLevelName(wire.degradation) +
                             " marker=" +
                             (parsed.degraded_marker ? "yes" : "no"));
              return;
            }
            if (wire.degradation != target.level) {
              record_failure(
                  "unexpected degradation for \"" + target.sql + "\": got " +
                  DegradationLevelName(wire.degradation) + " expected " +
                  DegradationLevelName(target.level));
              return;
            }
            // Half 2: degraded or not, the values must be the oracle's —
            // the ladder may lower fidelity labels, never correctness.
            if (parsed.rows.size() != target.values.size()) {
              record_failure("row count mismatch for \"" + target.sql +
                             "\"");
              return;
            }
            for (std::size_t h = 0; h < parsed.rows.size(); ++h) {
              if (parsed.rows[h].first !=
                  target.now + static_cast<std::int64_t>(h)) {
                record_failure("row time mismatch for \"" + target.sql +
                               "\"");
                return;
              }
              if (!ValuesClose(parsed.rows[h].second, target.values[h], 1e-9,
                               options.wire_abs_tol)) {
                record_failure(
                    "value mismatch for \"" + target.sql + "\" at h=" +
                    std::to_string(h) + ": wire=" +
                    RenderDouble(parsed.rows[h].second) + " oracle=" +
                    RenderDouble(target.values[h]));
                return;
              }
            }
            (wire.degradation != DegradationLevel::kNone ? degraded
                                                         : full_fidelity)
                .fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case StatusCode::kUnavailable:
            shed.fetch_add(1, std::memory_order_relaxed);
            break;
          case StatusCode::kDeadlineExceeded:
            expired.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            record_failure("unexpected status " +
                           std::string(StatusCodeName(wire.status)) +
                           " for \"" + target.sql + "\": " + wire.body);
            return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  report.queries_sent = sent.load();
  report.ok_full_fidelity = full_fidelity.load();
  report.ok_degraded = degraded.load();
  report.shed = shed.load();
  report.deadline_expired = expired.load();
  report.brownout_queries = server.stats().brownout_queries;

  setup_client.Close();
  server.Shutdown();
  if (!first_failure.empty()) return fail(first_failure);
  return report;
}

WorkloadSpec ShrinkWorkload(WorkloadSpec spec,
                            const WorkloadPredicate& still_fails) {
  if (!still_fails(spec)) return spec;
  std::size_t chunk = std::max<std::size_t>(1, spec.ops.size() / 2);
  for (;;) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < spec.ops.size()) {
      WorkloadSpec candidate = spec;
      const std::size_t end = std::min(start + chunk, candidate.ops.size());
      candidate.ops.erase(candidate.ops.begin() + start,
                          candidate.ops.begin() + end);
      if (still_fails(candidate)) {
        spec = std::move(candidate);
        removed_any = true;
        // Re-test the same offset: the next chunk slid into place.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return spec;
}

}  // namespace f2db::testing
