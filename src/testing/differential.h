// The differential driver: one generated workload, three executors.
//
// RunDifferential() replays a WorkloadSpec through
//   1. the ReferenceOracle (the naive ground truth),
//   2. an embedded F2dbEngine (SQL in, typed QueryResult out),
//   3. a second F2dbEngine behind a loopback F2dbServer, driven with the
//      same SQL text through F2dbClient (the full wire path),
// and checks after every op that the three agree: forecast values within
// tolerance, insert verdicts by status code, row time stamps, degradation
// annotations (a degraded answer must be annotated, and a full-fidelity
// answer must match the oracle — never silently wrong), and the
// maintenance invariants (pending inserts, advance counts) at the end.
//
// Tolerance policy (see DESIGN.md §9): the engine aggregates
// hierarchically while the oracle sums base cells flat, so bitwise
// equality is impossible — embedded-vs-oracle uses rel 1e-6 / abs 1e-8.
// The wire path renders values with "%.4f", so wire-vs-embedded uses an
// absolute tolerance just above the rendering quantum.

#ifndef F2DB_TESTING_DIFFERENTIAL_H_
#define F2DB_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "core/configuration.h"
#include "cube/graph.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace f2db::testing {

struct DifferentialOptions {
  /// Also run the workload through the TCP server (third executor). Off
  /// for the shrinking inner loop when the failure reproduces embedded.
  bool run_server = true;
  /// Embedded-engine-vs-oracle comparison: |a-b| <= abs + rel*max(|a|,|b|).
  double rel_tol = 1e-6;
  double abs_tol = 1e-8;
  /// Wire-vs-embedded comparison; the wire body renders values "%.4f".
  double wire_abs_tol = 2e-4;
};

struct DifferentialReport {
  bool ok = true;
  /// First divergence, with the op index and a replay-friendly cause.
  std::string failure;
  std::size_t queries = 0;
  std::size_t rows_compared = 0;
  std::size_t inserts_accepted = 0;
  std::size_t inserts_rejected = 0;
  /// Rows served with an expected non-kNone annotation.
  std::size_t degraded_rows = 0;
};

/// Builds the TimeSeriesGraph of a spec with the full base histories
/// installed and aggregates built.
Result<TimeSeriesGraph> BuildWorkloadGraph(const WorkloadSpec& spec);

/// Fits the spec's model placements on the train prefix (all but the last
/// observation — the engine's catch-up step replays that one) and installs
/// the explicit schemes. One configuration can be loaded into any number
/// of engines; each clones the models internally.
Result<ModelConfiguration> BuildWorkloadConfiguration(
    const WorkloadSpec& spec, const TimeSeriesGraph& graph);

/// Mirrors an engine LoadConfiguration into the oracle: clones of the
/// fitted models caught up by the one replayed observation, plus the
/// explicit schemes.
void InstallOracleConfiguration(const WorkloadSpec& spec,
                                const ModelConfiguration& config,
                                const TimeSeriesGraph& graph,
                                ReferenceOracle& oracle);

/// The forecast-query SQL of one address ("SELECT time, SUM(m) ... AS OF
/// now() + 'h'"); ALL dimensions are left unfiltered.
std::string BuildQuerySql(const WorkloadSpec& spec,
                          const OracleAddress& address, std::size_t horizon);

/// The INSERT SQL of one base cell ("INSERT INTO facts VALUES (...)");
/// the measure is rendered "%.17g" so the value round-trips exactly.
std::string BuildInsertSql(const WorkloadSpec& spec, std::size_t cell,
                           std::int64_t time, double value);

/// Runs the spec through all executors; the report carries the first
/// divergence (ok == false) or the agreement counters.
DifferentialReport RunDifferential(const WorkloadSpec& spec,
                                   const DifferentialOptions& options = {});

struct ShardedDifferentialOptions {
  /// Shard count M of the ShardedEngine under test (>= 1; 1 exercises the
  /// same partition-restriction machinery with every value in one shard).
  std::size_t num_shards = 2;
  /// Sharded-engine-vs-oracle tolerance. A scatter-gather merge sums
  /// per-shard partial aggregates, so summation order differs from the
  /// oracle's flat sum — same policy as embedded-vs-oracle.
  double rel_tol = 1e-6;
  double abs_tol = 1e-8;
};

/// Replays a spec through the ReferenceOracle and a ShardedEngine with
/// `num_shards` partitions (typed queries and inserts — the facade has no
/// SQL surface), checking after every op: availability, row counts and
/// times (cross-shard queries must see aligned frontiers), values within
/// tolerance, the MERGED degradation annotation (worst contributing
/// shard), and insert verdicts by status code. At the end: summed pending
/// inserts match the oracle and every active shard's advance count equals
/// the oracle's. Feed it GenerateScatterGatherWorkload specs — generic
/// workloads place models at cross-shard aggregates, which the facade
/// rejects by design.
DifferentialReport RunShardedDifferential(
    const WorkloadSpec& spec, const ShardedDifferentialOptions& options = {});

struct OverloadDifferentialOptions {
  /// Concurrent client threads flooding the server with queries.
  std::size_t num_clients = 4;
  /// Queries each client issues during the flood.
  std::size_t queries_per_client = 40;
  std::size_t worker_threads = 2;
  /// Kept small so the flood actually reaches the admission watermark.
  std::size_t admission_queue_limit = 4;
  /// Brownout engages at depth >= 1 so concurrent clients force the
  /// degradation ladder deterministically.
  std::size_t brownout_watermark = 1;
  /// Oracle-vs-wire tolerance (the wire body renders "%.4f").
  double wire_abs_tol = 2e-4;
};

struct OverloadDifferentialReport {
  bool ok = true;
  std::string failure;
  std::size_t queries_sent = 0;
  /// kOk answers at full fidelity (values checked against the oracle).
  std::size_t ok_full_fidelity = 0;
  /// kOk answers on a degradation rung — every one verified ANNOTATED
  /// (the "-- degraded:" marker) and value-correct against the oracle.
  std::size_t ok_degraded = 0;
  /// kUnavailable answers (admission or shutdown shedding).
  std::size_t shed = 0;
  /// kDeadlineExceeded answers.
  std::size_t deadline_expired = 0;
  /// Queries the server executed in brownout mode (server counter).
  std::size_t brownout_queries = 0;
};

/// Overload fuzz: replays the spec's insert rounds calmly (advancing the
/// frontier past the invalidation threshold with the engine.refit
/// failpoint armed when the spec is in fault mode), then floods the
/// loopback server with `num_clients` concurrent query streams against a
/// brownout-configured F2dbServer. Every response must be one of: a
/// full-fidelity answer matching the oracle, a DEGRADED answer that is
/// both annotated and value-correct (degraded-never-wrong), or an honest
/// overload rejection (kUnavailable / kDeadlineExceeded). Anything else —
/// a silently degraded body, a wrong value, an unexpected status — fails
/// the report.
OverloadDifferentialReport RunOverloadDifferential(
    const WorkloadSpec& spec, const OverloadDifferentialOptions& options = {});

/// true = the candidate spec still reproduces the failure under test.
using WorkloadPredicate = std::function<bool(const WorkloadSpec&)>;

/// Greedy delta-debugging over the op list: repeatedly removes chunks
/// (halving the chunk size down to single ops) while the predicate keeps
/// failing. Returns the smallest still-failing spec found.
WorkloadSpec ShrinkWorkload(WorkloadSpec spec,
                            const WorkloadPredicate& still_fails);

}  // namespace f2db::testing

#endif  // F2DB_TESTING_DIFFERENTIAL_H_
