#include "common/string_util.h"

#include <cctype>
#include <cstdlib>

namespace f2db {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

Result<double> ParseDouble(std::string_view input) {
  const std::string text(TrimWhitespace(input));
  if (text.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  return value;
}

Result<std::int64_t> ParseInt(std::string_view input) {
  const std::string text(TrimWhitespace(input));
  if (text.empty()) return Status::InvalidArgument("empty integer");
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace f2db
