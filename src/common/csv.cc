#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace f2db {
namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// trailing newline. Returns false at end of input.
bool ParseRecord(const std::string& text, std::size_t& pos,
                 std::vector<std::string>& fields, Status& status) {
  fields.clear();
  if (pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  for (;;) {
    if (pos >= text.size()) {
      if (in_quotes) {
        status = Status::InvalidArgument("unterminated quoted CSV field");
        return false;
      }
      fields.push_back(std::move(field));
      return true;
    }
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field.push_back(c);
        ++pos;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        ++pos;
        break;
      case ',':
        fields.push_back(std::move(field));
        field.clear();
        ++pos;
        break;
      case '\r':
        ++pos;
        break;
      case '\n':
        ++pos;
        fields.push_back(std::move(field));
        return true;
      default:
        field.push_back(c);
        ++pos;
        break;
    }
  }
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(std::string& out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    out += field;
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

Result<CsvDocument> ParseCsv(const std::string& text, bool has_header) {
  CsvDocument doc;
  std::size_t pos = 0;
  Status status;
  std::vector<std::string> fields;
  std::size_t expected_width = 0;
  bool first = true;
  while (ParseRecord(text, pos, fields, status)) {
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (first) {
      expected_width = fields.size();
      first = false;
      if (has_header) {
        doc.header = std::move(fields);
        continue;
      }
    } else if (fields.size() != expected_width) {
      return Status::InvalidArgument("ragged CSV row: expected " +
                                     std::to_string(expected_width) +
                                     " fields, got " +
                                     std::to_string(fields.size()));
    }
    doc.rows.push_back(std::move(fields));
  }
  if (!status.ok()) return status;
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), has_header);
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(out, row[i]);
    }
    out.push_back('\n');
  };
  if (!doc.header.empty()) write_row(doc.header);
  for (const auto& row : doc.rows) write_row(row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open file for write: " + path);
  const std::string text = WriteCsv(doc);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace f2db
