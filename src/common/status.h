// Status and Result<T>: exception-free error handling for the f2db library.
//
// Library code never throws. Fallible operations return a Status (when there
// is no value to produce) or a Result<T> (a value or a Status). Both types
// are cheap to move and carry a code plus a human-readable message.

#ifndef F2DB_COMMON_STATUS_H_
#define F2DB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace f2db {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// A transient, retryable condition: the operation could not be served at
  /// full fidelity right now (injected fault, degraded fallback exhausted,
  /// quarantined model). Distinct from kInternal, which means a programmer
  /// error / broken invariant.
  kUnavailable,
  /// The request's deadline expired before (or while) it could be served;
  /// the work was not executed. Appended after kUnavailable so existing
  /// wire status bytes keep their values.
  kDeadlineExceeded,
  /// A quota was exhausted (per-tenant rate limit). Retryable after the
  /// wait the response's retry-after hint suggests.
  kResourceExhausted,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation without a return value.
///
/// A Status is either OK or carries an error code and message. Statuses are
/// value types: copyable, movable, and comparable against OK via ok().
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers for the common error categories.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True when the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// The error message (empty when ok()).
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>"; for logs and test diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Outcome of a fallible operation that produces a T on success.
///
/// Holds either a value or a non-OK Status. Access to value() on an error
/// Result is a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: intentional
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT: intentional
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True when a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// The held value; only valid when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace f2db

/// Propagates a non-OK Status from the current function.
#define F2DB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::f2db::Status _f2db_status = (expr);     \
    if (!_f2db_status.ok()) return _f2db_status; \
  } while (false)

#define F2DB_MACRO_CONCAT_IMPL(a, b) a##b
#define F2DB_MACRO_CONCAT(a, b) F2DB_MACRO_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression, assigns its value to `lhs` on success,
/// and propagates the error Status otherwise.
#define F2DB_ASSIGN_OR_RETURN(lhs, rexpr) \
  F2DB_ASSIGN_OR_RETURN_IMPL(F2DB_MACRO_CONCAT(_f2db_result_, __LINE__), lhs, \
                             rexpr)

#define F2DB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // F2DB_COMMON_STATUS_H_
