// Small lock-free counter primitives for hot-path bookkeeping.
//
// The engine's query layer runs concurrently and lock-free; its statistics
// must not reintroduce a shared mutex. These counters use relaxed atomics:
// individual increments are never lost, but a reader observes each counter
// independently (no cross-counter consistency) — exactly the guarantee
// monitoring counters need and nothing more.

#ifndef F2DB_COMMON_CONCURRENT_H_
#define F2DB_COMMON_CONCURRENT_H_

#include <atomic>
#include <cstddef>

namespace f2db {

/// Monotone event counter with relaxed memory ordering.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  void Add(std::size_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::size_t Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> value_{0};
};

/// Accumulating double with relaxed memory ordering (CAS loop — portable
/// even where std::atomic<double>::fetch_add is unavailable).
class RelaxedAccumulator {
 public:
  RelaxedAccumulator() = default;
  RelaxedAccumulator(const RelaxedAccumulator&) = delete;
  RelaxedAccumulator& operator=(const RelaxedAccumulator&) = delete;

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

}  // namespace f2db

#endif  // F2DB_COMMON_CONCURRENT_H_
