// Token-bucket rate limiting for the serving layer's per-tenant quotas.
//
// TokenBucket is a GCRA-style limiter ("virtual scheduling" formulation):
// the whole bucket state is ONE atomic u64 — the theoretical arrival time
// (TAT) of the next conforming request, in nanoseconds on a caller-supplied
// monotonic clock. TryAcquire is a CAS loop over that word: no locks, no
// allocation, wait-free against readers — exactly what a reactor thread
// can afford to run on every request frame.
//
// Semantics match the classic token bucket: a bucket of capacity `burst`
// tokens refills at `tokens_per_second`; each conforming request consumes
// one token. A denied request reports how long until one token will be
// available (the retry-after hint the wire protocol forwards to clients).
//
// TenantRateLimiters is the registry mapping tenant ids to buckets. Bucket
// creation takes a mutex, but it only happens on the connection handshake
// (HELLO frames) — the per-request hot path dereferences a cached raw
// pointer. Buckets are never removed, so cached pointers stay valid for
// the registry's lifetime.

#ifndef F2DB_COMMON_RATE_LIMITER_H_
#define F2DB_COMMON_RATE_LIMITER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace f2db {

class TokenBucket {
 public:
  /// A bucket refilling at `tokens_per_second` with capacity `burst`
  /// tokens. Rates are clamped to a small positive minimum so a
  /// misconfigured zero/negative rate degrades to "almost never" instead
  /// of dividing by zero; bursts below one token are clamped to one (a
  /// bucket that can never conform is useless).
  TokenBucket(double tokens_per_second, double burst);

  /// Attempts to take one token at time `now_ns` (nanoseconds on any
  /// monotonic clock; callers must use the same clock for a bucket's whole
  /// lifetime). Returns true on success. On denial, `*retry_after_ns` (when
  /// non-null) is set to how long after `now_ns` one token will be
  /// available.
  bool TryAcquire(std::uint64_t now_ns, std::uint64_t* retry_after_ns);

  /// TryAcquire against std::chrono::steady_clock.
  bool TryAcquire(std::uint64_t* retry_after_ns = nullptr);

  /// Tokens available at `now_ns` (diagnostic; racy by nature).
  double AvailableTokens(std::uint64_t now_ns) const;

  double tokens_per_second() const;
  double burst() const;

 private:
  /// Nanoseconds between conforming requests at the sustained rate.
  std::uint64_t emission_interval_ns_;
  /// Burst tolerance: a request conforms while TAT <= now + tolerance.
  std::uint64_t burst_tolerance_ns_;
  /// Theoretical arrival time of the next conforming request.
  std::atomic<std::uint64_t> tat_ns_{0};
};

/// Registry of per-tenant TokenBuckets sharing one rate/burst policy.
/// Thread-safe; bucket pointers stay valid until the registry dies.
class TenantRateLimiters {
 public:
  /// `burst` <= 0 defaults to one second's worth of tokens.
  TenantRateLimiters(double tokens_per_second, double burst);

  /// The bucket for `tenant_id`, created on first sight. The empty string
  /// is a valid tenant (connections that never sent a HELLO share it).
  TokenBucket* BucketFor(const std::string& tenant_id);

  /// Distinct tenants seen so far.
  std::size_t num_tenants() const;

 private:
  const double tokens_per_second_;
  const double burst_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<TokenBucket>> buckets_;
};

}  // namespace f2db

#endif  // F2DB_COMMON_RATE_LIMITER_H_
