// Wall-clock stopwatch used for model-cost accounting and the advisor's
// control phase (which balances candidate-selection time against
// evaluation time, Section IV-C1 of the paper).

#ifndef F2DB_COMMON_STOPWATCH_H_
#define F2DB_COMMON_STOPWATCH_H_

#include <chrono>

namespace f2db {

/// Measures elapsed wall-clock time with sub-microsecond resolution.
class StopWatch {
 public:
  /// Starts the watch at construction.
  StopWatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace f2db

#endif  // F2DB_COMMON_STOPWATCH_H_
