// CRC32C (Castagnoli): the checksum framing the durability files.
//
// Every write-ahead-log record and the checkpoint trailer carry a CRC32C
// over their payload so recovery can tell a torn or corrupted write from a
// valid record (see DESIGN.md §10, "Durability and recovery"). The
// Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78) is the storage
// and networking standard (iSCSI, ext4, LevelDB/RocksDB logs); this is the
// portable table-driven software implementation — no SSE4.2 dependency.

#ifndef F2DB_COMMON_CRC32C_H_
#define F2DB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace f2db {

/// CRC32C of `data`, starting from `init` (pass a previous Crc32c result to
/// checksum data arriving in chunks). The returned value is the final CRC
/// (pre- and post-inversion are handled internally).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t init = 0);

inline std::uint32_t Crc32c(std::string_view data, std::uint32_t init = 0) {
  return Crc32c(data.data(), data.size(), init);
}

}  // namespace f2db

#endif  // F2DB_COMMON_CRC32C_H_
