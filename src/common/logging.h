// Minimal leveled logger used across the library.
//
// Logging is stderr-only, synchronized, and off by default above kWarning so
// that benchmarks and tests stay quiet. The advisor raises verbosity when
// AdvisorOptions::verbose is set.

#ifndef F2DB_COMMON_LOGGING_H_
#define F2DB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace f2db {

/// Severity of a log record; higher is more severe.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum severity that is emitted. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Builds one log record and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for disabled levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace f2db

#define F2DB_LOG(level)                                             \
  if (::f2db::LogLevel::level < ::f2db::GetLogLevel())              \
    ;                                                               \
  else                                                              \
    ::f2db::internal_logging::LogMessage(::f2db::LogLevel::level,   \
                                         __FILE__, __LINE__)        \
        .stream()

#endif  // F2DB_COMMON_LOGGING_H_
