// Fixed-size worker pool used by the advisor's evaluation phase.
//
// The paper (Section IV-B1) creates models for the top-n ranked candidates
// in parallel, where n equals the number of available processors; this pool
// provides that parallelism. Tasks are arbitrary std::function<void()>;
// completion is observed through the returned std::future.

#ifndef F2DB_COMMON_THREAD_POOL_H_
#define F2DB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace f2db {

/// A fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the future resolves when the task has run.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until done.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Number of worker threads.
  std::size_t size() const { return threads_.size(); }

  /// A sensible default pool width for this machine.
  static std::size_t DefaultConcurrency();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace f2db

#endif  // F2DB_COMMON_THREAD_POOL_H_
