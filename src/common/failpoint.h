// Failpoints: named fault-injection sites threaded through the hot paths.
//
// A failpoint is a named site in library code (model fitting, optimizer
// convergence, insert ingestion, catalog decoding, lazy re-estimation) that
// tests and benches can arm with a trigger policy — always, every-Nth
// evaluation, or a probability drawn from a seeded deterministic Rng. An
// armed site that triggers makes the surrounding operation fail with
// StatusCode::kUnavailable exactly as a real transient failure would, which
// is how the engine's graceful-degradation ladder is exercised end to end
// (see DESIGN.md, "Failure semantics and the degradation ladder").
//
// Cost model: when no failpoint is armed anywhere, Triggered() is a single
// relaxed atomic load — safe to leave in production hot paths. While any
// site is armed, evaluations serialize on one registry mutex (fault
// injection is a test/bench mode, not a production mode).
//
// Sites self-register at static-initialization time via F2DB_DEFINE_FAILPOINT
// so tests can enumerate every site linked into the binary
// (failpoint::RegisteredSites) and fire each one.

#ifndef F2DB_COMMON_FAILPOINT_H_
#define F2DB_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace f2db {
namespace failpoint {

/// Per-site trigger policy.
struct Policy {
  enum class Mode {
    kOff,          ///< Never triggers.
    kAlways,       ///< Triggers on every evaluation.
    kEveryNth,     ///< Triggers on every n-th evaluation (n, 2n, 3n, ...).
    kProbability,  ///< Triggers with probability p per evaluation (seeded).
  };

  Mode mode = Mode::kOff;
  std::size_t every_n = 0;      ///< kEveryNth period (>= 1).
  double probability = 0.0;     ///< kProbability trigger chance in [0, 1].
  std::uint64_t seed = 42;      ///< Seeds the site's deterministic Rng.
  /// Stop triggering after this many triggers; 0 = unlimited. The site
  /// stays armed (counters keep advancing) but no longer fires.
  std::size_t max_triggers = 0;

  static Policy Off() { return {}; }
  static Policy Always(std::size_t max_triggers = 0) {
    Policy p;
    p.mode = Mode::kAlways;
    p.max_triggers = max_triggers;
    return p;
  }
  static Policy EveryNth(std::size_t n, std::size_t max_triggers = 0) {
    Policy p;
    p.mode = Mode::kEveryNth;
    p.every_n = n;
    p.max_triggers = max_triggers;
    return p;
  }
  static Policy WithProbability(double probability, std::uint64_t seed = 42,
                                std::size_t max_triggers = 0) {
    Policy p;
    p.mode = Mode::kProbability;
    p.probability = probability;
    p.seed = seed;
    p.max_triggers = max_triggers;
    return p;
  }
};

/// Registers a site name (idempotent). Normally invoked through
/// F2DB_DEFINE_FAILPOINT at static-initialization time.
void Register(const std::string& site);

/// Names of all registered sites, sorted (sites linked into the binary via
/// F2DB_DEFINE_FAILPOINT plus any site ever armed or evaluated).
std::vector<std::string> RegisteredSites();

/// Arms `site` with `policy` (registering it if unknown) and resets the
/// site's counters and Rng stream.
void Enable(const std::string& site, const Policy& policy);

/// Disarms one site (counters are kept for post-mortem assertions).
void Disable(const std::string& site);

/// Disarms every site and clears all counters.
void DisableAll();

/// True while at least one site is armed.
bool AnyEnabled();

/// Evaluations of `site` since it was last armed.
std::size_t Evaluations(const std::string& site);

/// Triggers fired by `site` since it was last armed.
std::size_t Triggers(const std::string& site);

/// Decides whether `site` fails now. The fast path (no site armed
/// anywhere) is one relaxed atomic load.
bool Triggered(const char* site);

/// Arms sites from a spec string:
///   "engine.refit=always;engine.insert=nth:3;ts.arima_fit=prob:0.1:7"
/// Entry grammar (';'-separated, whitespace ignored):
///   <site>=off | always[:max] | nth:<n>[:max] | prob:<p>[:seed]
/// Unknown sites are registered. Malformed entries abort with
/// InvalidArgument before any site is armed.
Status EnableFromSpec(const std::string& spec);

/// Applies the F2DB_FAILPOINTS environment variable via EnableFromSpec
/// (no-op when unset). Returns the applied spec, empty when none. A
/// malformed spec is reported on stderr and ignored — unless
/// F2DB_FAILPOINTS_STRICT=1 is also set, in which case the process aborts
/// so a test run can never silently proceed with fault injection disabled.
std::string InitFromEnv();

/// Builds the Status an armed site injects: kUnavailable with the site name
/// in the message, so callers can tell injected/transient faults from
/// programmer errors.
Status InjectedFailure(const char* site);

/// RAII guard for tests: disarms every failpoint on destruction.
class ScopedDisableAll {
 public:
  ScopedDisableAll() = default;
  ScopedDisableAll(const ScopedDisableAll&) = delete;
  ScopedDisableAll& operator=(const ScopedDisableAll&) = delete;
  ~ScopedDisableAll() { DisableAll(); }
};

/// Static registrar behind F2DB_DEFINE_FAILPOINT.
class Registrar {
 public:
  explicit Registrar(const char* site) { Register(site); }
};

}  // namespace failpoint
}  // namespace f2db

/// Defines a failpoint site: a constant with the site name plus a static
/// registrar so the site shows up in failpoint::RegisteredSites() even
/// before its first evaluation. Use at namespace scope in the .cc (or
/// header) owning the site.
#define F2DB_DEFINE_FAILPOINT(identifier, site_name)                        \
  inline constexpr char identifier[] = site_name;                           \
  namespace f2db_failpoint_registrars {                                     \
  inline const ::f2db::failpoint::Registrar identifier##_registrar{         \
      site_name};                                                           \
  }

/// Injects a failure from a Status/Result-returning function when `site`
/// triggers.
#define F2DB_INJECT_FAILPOINT(site)                           \
  do {                                                        \
    if (::f2db::failpoint::Triggered(site)) {                 \
      return ::f2db::failpoint::InjectedFailure(site);        \
    }                                                         \
  } while (false)

#endif  // F2DB_COMMON_FAILPOINT_H_
