// Deterministic pseudo-random number generation (xoshiro256++).
//
// All stochastic components (synthetic data generation, simulated annealing,
// the multi-source scheme sampler) draw from an explicitly seeded Rng so that
// every experiment in the repository is reproducible bit-for-bit.

#ifndef F2DB_COMMON_RNG_H_
#define F2DB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace f2db {

/// xoshiro256++ generator with convenience distributions.
///
/// Not thread-safe; use one Rng per thread (Split() derives independent
/// streams deterministically).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box–Muller with caching).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Weights must be non-negative and not all zero.
  std::size_t SampleDiscrete(const std::vector<double>& weights);

  /// Derives an independent deterministic child generator.
  Rng Split();

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace f2db

#endif  // F2DB_COMMON_RNG_H_
