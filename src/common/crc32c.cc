#include "common/crc32c.h"

#include <array>

namespace f2db {
namespace {

/// Table for the reflected Castagnoli polynomial 0x82F63B78, built once at
/// static-initialization time (256 entries, byte-at-a-time).
constexpr std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = BuildTable();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t init) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~init;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace f2db
