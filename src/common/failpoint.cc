#include "common/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/rng.h"
#include "common/string_util.h"

namespace f2db {
namespace failpoint {
namespace {

/// One registered site. Counters reset whenever the site is (re-)armed.
struct Site {
  Policy policy;
  std::size_t evaluations = 0;
  std::size_t triggers = 0;
  std::unique_ptr<Rng> rng;  ///< Seeded stream for kProbability sites.
};

/// Registry state. `any_enabled` is the hot-path guard: Triggered() reads
/// it with one relaxed load and bails before touching the mutex when no
/// site is armed anywhere.
std::atomic<bool> g_any_enabled{false};

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Site>& Registry() {
  static auto* registry = new std::map<std::string, Site>();
  return *registry;
}

/// Recomputes the fast-path guard. Caller holds RegistryMutex().
void RefreshAnyEnabledLocked() {
  bool any = false;
  for (const auto& [name, site] : Registry()) {
    if (site.policy.mode != Policy::Mode::kOff) {
      any = true;
      break;
    }
  }
  g_any_enabled.store(any, std::memory_order_relaxed);
}

/// Evaluates an armed site's policy. Caller holds RegistryMutex().
bool EvaluateLocked(Site& site) {
  const Policy& policy = site.policy;
  if (policy.mode == Policy::Mode::kOff) return false;
  ++site.evaluations;
  if (policy.max_triggers > 0 && site.triggers >= policy.max_triggers) {
    return false;
  }
  bool fire = false;
  switch (policy.mode) {
    case Policy::Mode::kOff:
      break;
    case Policy::Mode::kAlways:
      fire = true;
      break;
    case Policy::Mode::kEveryNth:
      fire = policy.every_n >= 1 && site.evaluations % policy.every_n == 0;
      break;
    case Policy::Mode::kProbability:
      if (site.rng == nullptr) site.rng = std::make_unique<Rng>(policy.seed);
      fire = site.rng->NextDouble() < policy.probability;
      break;
  }
  if (fire) ++site.triggers;
  return fire;
}

/// Parses one "<site>=<policy>" entry. Returns the armed (site, policy).
Result<std::pair<std::string, Policy>> ParseEntry(std::string_view entry) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("failpoint spec entry missing '=': " +
                                   std::string(entry));
  }
  const std::string site{TrimWhitespace(entry.substr(0, eq))};
  if (site.empty()) {
    return Status::InvalidArgument("failpoint spec entry has empty site: " +
                                   std::string(entry));
  }
  const std::vector<std::string> parts =
      SplitString(TrimWhitespace(entry.substr(eq + 1)), ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("failpoint spec entry has empty policy: " +
                                   std::string(entry));
  }
  const std::string& kind = parts[0];
  Policy policy;
  if (kind == "off" && parts.size() == 1) {
    policy = Policy::Off();
  } else if (kind == "always" && parts.size() <= 2) {
    std::size_t max_triggers = 0;
    if (parts.size() == 2) {
      F2DB_ASSIGN_OR_RETURN(const std::int64_t max, ParseInt(parts[1]));
      max_triggers = static_cast<std::size_t>(max);
    }
    policy = Policy::Always(max_triggers);
  } else if (kind == "nth" && (parts.size() == 2 || parts.size() == 3)) {
    F2DB_ASSIGN_OR_RETURN(const std::int64_t n, ParseInt(parts[1]));
    if (n < 1) {
      return Status::InvalidArgument("failpoint nth period must be >= 1: " +
                                     std::string(entry));
    }
    std::size_t max_triggers = 0;
    if (parts.size() == 3) {
      F2DB_ASSIGN_OR_RETURN(const std::int64_t max, ParseInt(parts[2]));
      max_triggers = static_cast<std::size_t>(max);
    }
    policy = Policy::EveryNth(static_cast<std::size_t>(n), max_triggers);
  } else if (kind == "prob" && (parts.size() == 2 || parts.size() == 3)) {
    F2DB_ASSIGN_OR_RETURN(const double p, ParseDouble(parts[1]));
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "failpoint probability must be in [0, 1]: " + std::string(entry));
    }
    std::uint64_t seed = 42;
    if (parts.size() == 3) {
      F2DB_ASSIGN_OR_RETURN(const std::int64_t s, ParseInt(parts[2]));
      seed = static_cast<std::uint64_t>(s);
    }
    policy = Policy::WithProbability(p, seed);
  } else {
    return Status::InvalidArgument("unknown failpoint policy: " +
                                   std::string(entry));
  }
  return std::make_pair(site, policy);
}

}  // namespace

void Register(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().try_emplace(site);
}

std::vector<std::string> RegisteredSites() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> out;
  out.reserve(Registry().size());
  for (const auto& [name, site] : Registry()) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

void Enable(const std::string& site, const Policy& policy) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Site& entry = Registry()[site];
  entry.policy = policy;
  entry.evaluations = 0;
  entry.triggers = 0;
  entry.rng.reset();
  RefreshAnyEnabledLocked();
}

void Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = Registry().find(site);
  if (it != Registry().end()) {
    it->second.policy = Policy::Off();
    it->second.rng.reset();
  }
  RefreshAnyEnabledLocked();
}

void DisableAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [name, site] : Registry()) {
    site.policy = Policy::Off();
    site.evaluations = 0;
    site.triggers = 0;
    site.rng.reset();
  }
  g_any_enabled.store(false, std::memory_order_relaxed);
}

bool AnyEnabled() { return g_any_enabled.load(std::memory_order_relaxed); }

std::size_t Evaluations(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.evaluations;
}

std::size_t Triggers(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.triggers;
}

bool Triggered(const char* site) {
  if (!g_any_enabled.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Site& entry = Registry()[site];
  return EvaluateLocked(entry);
}

Status EnableFromSpec(const std::string& spec) {
  // Validate the whole spec before arming anything, so a malformed entry
  // cannot leave the registry half-configured.
  std::vector<std::pair<std::string, Policy>> parsed;
  for (const std::string& raw : SplitString(spec, ';')) {
    const std::string_view entry = TrimWhitespace(raw);
    if (entry.empty()) continue;
    F2DB_ASSIGN_OR_RETURN(auto armed, ParseEntry(entry));
    parsed.push_back(std::move(armed));
  }
  for (const auto& [site, policy] : parsed) Enable(site, policy);
  return Status::OK();
}

std::string InitFromEnv() {
  const char* spec = std::getenv("F2DB_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return "";
  const Status status = EnableFromSpec(spec);
  if (!status.ok()) {
    // A silently ignored spec means a fault-injection test run that tests
    // nothing. Under F2DB_FAILPOINTS_STRICT=1 that is fatal; otherwise the
    // legacy behavior (warn and run un-injected) is kept for benches.
    const char* strict = std::getenv("F2DB_FAILPOINTS_STRICT");
    if (strict != nullptr && strict[0] == '1') {
      std::fprintf(stderr,
                   "F2DB_FAILPOINTS malformed (strict mode, aborting): %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    std::fprintf(stderr, "F2DB_FAILPOINTS ignored: %s\n",
                 status.ToString().c_str());
    return "";
  }
  return spec;
}

Status InjectedFailure(const char* site) {
  return Status::Unavailable(std::string("failpoint '") + site +
                             "' injected failure");
}

}  // namespace failpoint
}  // namespace f2db
