#include "common/rate_limiter.h"

#include <algorithm>
#include <chrono>

namespace f2db {
namespace {

constexpr double kMinRate = 1e-6;          // one token per ~11.6 days
constexpr double kMaxIntervalNs = 9e18;    // keep the math inside u64

std::uint64_t IntervalNsForRate(double tokens_per_second) {
  const double rate = std::max(tokens_per_second, kMinRate);
  const double interval = 1e9 / rate;
  return static_cast<std::uint64_t>(std::min(interval, kMaxIntervalNs));
}

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TokenBucket::TokenBucket(double tokens_per_second, double burst)
    : emission_interval_ns_(IntervalNsForRate(tokens_per_second)) {
  // Tolerance of (burst - 1) intervals: a full bucket admits `burst`
  // back-to-back requests before the (burst+1)-th is non-conforming.
  const double tokens = std::max(burst, 1.0);
  const double tolerance =
      (tokens - 1.0) * static_cast<double>(emission_interval_ns_);
  burst_tolerance_ns_ =
      static_cast<std::uint64_t>(std::min(tolerance, kMaxIntervalNs));
}

bool TokenBucket::TryAcquire(std::uint64_t now_ns,
                             std::uint64_t* retry_after_ns) {
  std::uint64_t tat = tat_ns_.load(std::memory_order_relaxed);
  for (;;) {
    // An idle bucket's TAT may be far in the past; a conforming request
    // advances it from max(tat, now) so idle time never accumulates more
    // than the burst tolerance of credit.
    const std::uint64_t base = std::max(tat, now_ns);
    if (base > now_ns + burst_tolerance_ns_) {
      if (retry_after_ns != nullptr) {
        *retry_after_ns = base - (now_ns + burst_tolerance_ns_);
      }
      return false;
    }
    if (tat_ns_.compare_exchange_weak(tat, base + emission_interval_ns_,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
      return true;
    }
    // `tat` was reloaded by the failed CAS; retry with the fresh value.
  }
}

bool TokenBucket::TryAcquire(std::uint64_t* retry_after_ns) {
  return TryAcquire(SteadyNowNs(), retry_after_ns);
}

double TokenBucket::AvailableTokens(std::uint64_t now_ns) const {
  const std::uint64_t tat = tat_ns_.load(std::memory_order_relaxed);
  const double interval = static_cast<double>(emission_interval_ns_);
  const double full = burst();
  if (tat <= now_ns) return full;
  const double debt = static_cast<double>(tat - now_ns) / interval;
  return std::max(0.0, full - debt);
}

double TokenBucket::tokens_per_second() const {
  return 1e9 / static_cast<double>(emission_interval_ns_);
}

double TokenBucket::burst() const {
  return 1.0 + static_cast<double>(burst_tolerance_ns_) /
                   static_cast<double>(emission_interval_ns_);
}

TenantRateLimiters::TenantRateLimiters(double tokens_per_second, double burst)
    : tokens_per_second_(tokens_per_second),
      burst_(burst > 0.0 ? burst : tokens_per_second) {}

TokenBucket* TenantRateLimiters::BucketFor(const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(tenant_id);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(tenant_id,
                      std::make_unique<TokenBucket>(tokens_per_second_, burst_))
             .first;
  }
  return it->second.get();
}

std::size_t TenantRateLimiters::num_tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

}  // namespace f2db
