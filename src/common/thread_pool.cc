#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace f2db {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.wait();
}

std::size_t ThreadPool::DefaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace f2db
