// A minimal CSV reader/writer for cube data sets.
//
// Supports comma-separated files with an optional header row. Quoting is
// supported for fields containing commas or quotes ("" escapes a quote).

#ifndef F2DB_COMMON_CSV_H_
#define F2DB_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace f2db {

/// One parsed CSV document: a header (possibly empty) and data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. When `has_header` is true the first record becomes
/// `header`. Rejects rows whose field count differs from the first row.
Result<CsvDocument> ParseCsv(const std::string& text, bool has_header);

/// Reads and parses a CSV file from disk.
Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header);

/// Serializes rows (and an optional header) to CSV text.
std::string WriteCsv(const CsvDocument& doc);

/// Writes CSV text to a file, replacing existing contents.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace f2db

#endif  // F2DB_COMMON_CSV_H_
