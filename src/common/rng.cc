#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace f2db {
namespace {

// SplitMix64: expands one 64-bit seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller transform.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

std::size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace f2db
