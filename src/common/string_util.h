// Small string helpers shared by the CSV reader and the query parser.

#ifndef F2DB_COMMON_STRING_UTIL_H_
#define F2DB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace f2db {

/// Splits `input` on `delim`; keeps empty fields.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view input);

/// Lower-cases ASCII characters.
std::string ToLowerAscii(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view input);

/// Parses a non-negative integer; rejects trailing garbage.
Result<std::int64_t> ParseInt(std::string_view input);

}  // namespace f2db

#endif  // F2DB_COMMON_STRING_UTIL_H_
