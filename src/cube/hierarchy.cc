#include "cube/hierarchy.h"

#include <cassert>

namespace f2db {
namespace {

const std::string kAllLevelName = "ALL";
const std::string kAllValueName = "*";

}  // namespace

Status Hierarchy::AddLevel(std::string level_name,
                           std::vector<std::string> value_names) {
  if (finalized_) return Status::FailedPrecondition("hierarchy is finalized");
  if (value_names.empty()) {
    return Status::InvalidArgument("level needs at least one value");
  }
  Level level;
  level.name = std::move(level_name);
  level.parents.assign(value_names.size(), 0);
  level.value_names = std::move(value_names);
  levels_.push_back(std::move(level));
  return Status::OK();
}

Status Hierarchy::SetParent(LevelIndex level, ValueIndex child_value,
                            ValueIndex parent_value) {
  if (finalized_) return Status::FailedPrecondition("hierarchy is finalized");
  if (level + 1 >= levels_.size()) {
    return Status::InvalidArgument(
        "SetParent: level must have a declared parent level");
  }
  if (child_value >= levels_[level].value_names.size()) {
    return Status::OutOfRange("SetParent: child value out of range");
  }
  if (parent_value >= levels_[level + 1].value_names.size()) {
    return Status::OutOfRange("SetParent: parent value out of range");
  }
  levels_[level].parents[child_value] = parent_value;
  levels_[level].parents_set = true;
  return Status::OK();
}

Status Hierarchy::Finalize() {
  if (finalized_) return Status::OK();
  if (levels_.empty()) {
    return Status::FailedPrecondition("hierarchy has no levels");
  }
  // The topmost declared level rolls up into ALL (value 0).
  for (auto& value : levels_.back().parents) value = 0;

  // Build child lists for levels 1..num_levels (ALL).
  children_.assign(levels_.size() + 1, {});
  for (std::size_t level = 1; level <= levels_.size(); ++level) {
    const std::size_t parent_count =
        level == levels_.size() ? 1 : levels_[level].value_names.size();
    children_[level].assign(parent_count, {});
    const Level& child_level = levels_[level - 1];
    for (ValueIndex v = 0; v < child_level.value_names.size(); ++v) {
      const ValueIndex parent = child_level.parents[v];
      if (parent >= parent_count) {
        return Status::Internal("parent index out of range after SetParent");
      }
      children_[level][parent].push_back(v);
    }
    // Every parent value must have at least one child, otherwise its time
    // series would be undefined.
    for (std::size_t p = 0; p < parent_count; ++p) {
      if (children_[level][p].empty()) {
        return Status::InvalidArgument(
            "hierarchy '" + name_ + "': value '" +
            (level == levels_.size() ? kAllValueName
                                     : levels_[level].value_names[p]) +
            "' has no children");
      }
    }
  }
  finalized_ = true;
  return Status::OK();
}

std::size_t Hierarchy::num_values(LevelIndex level) const {
  if (level >= levels_.size()) return 1;  // ALL
  return levels_[level].value_names.size();
}

const std::string& Hierarchy::level_name(LevelIndex level) const {
  if (level >= levels_.size()) return kAllLevelName;
  return levels_[level].name;
}

const std::string& Hierarchy::value_name(LevelIndex level,
                                         ValueIndex value) const {
  if (level >= levels_.size()) return kAllValueName;
  assert(value < levels_[level].value_names.size());
  return levels_[level].value_names[value];
}

ValueIndex Hierarchy::parent_value(LevelIndex level, ValueIndex value) const {
  assert(level < levels_.size());
  assert(value < levels_[level].parents.size());
  return levels_[level].parents[value];
}

const std::vector<ValueIndex>& Hierarchy::child_values(
    LevelIndex level, ValueIndex value) const {
  assert(finalized_);
  assert(level >= 1 && level <= levels_.size());
  assert(value < children_[level].size());
  return children_[level][value];
}

Result<LevelIndex> Hierarchy::FindLevel(std::string_view level_name) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].name == level_name) return static_cast<LevelIndex>(i);
  }
  if (level_name == kAllLevelName) {
    return static_cast<LevelIndex>(levels_.size());
  }
  return Status::NotFound("no level '" + std::string(level_name) +
                          "' in hierarchy '" + name_ + "'");
}

Result<ValueIndex> Hierarchy::FindValue(LevelIndex level,
                                        std::string_view value_name) const {
  if (level >= levels_.size()) {
    if (value_name == kAllValueName) return ValueIndex{0};
    return Status::NotFound("ALL level has only '*'");
  }
  const auto& names = levels_[level].value_names;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == value_name) return static_cast<ValueIndex>(i);
  }
  return Status::NotFound("no value '" + std::string(value_name) +
                          "' at level '" + levels_[level].name + "'");
}

Hierarchy Hierarchy::Flat(std::string name, std::vector<std::string> values) {
  Hierarchy h(std::move(name));
  const Status add = h.AddLevel(h.name_, std::move(values));
  assert(add.ok());
  (void)add;
  const Status fin = h.Finalize();
  assert(fin.ok());
  (void)fin;
  return h;
}

}  // namespace f2db
