// CubeSchema: the categorical dimensions of a multi-dimensional data set.
//
// Together with the time dimension and the measure, the schema defines the
// paper's data model (Section II-A). Each categorical dimension is a
// Hierarchy; a combination of one value per dimension at the finest levels
// identifies a base time series.

#ifndef F2DB_CUBE_CUBE_SCHEMA_H_
#define F2DB_CUBE_CUBE_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "cube/hierarchy.h"

namespace f2db {

/// An ordered collection of finalized dimension hierarchies.
class CubeSchema {
 public:
  CubeSchema() = default;

  /// Adds a finalized hierarchy; fails when it is not finalized or its
  /// name collides with an existing dimension.
  Status AddHierarchy(Hierarchy hierarchy);

  std::size_t num_dimensions() const { return hierarchies_.size(); }

  const Hierarchy& hierarchy(std::size_t dim) const {
    return hierarchies_[dim];
  }

  /// Finds a dimension by hierarchy name.
  Result<std::size_t> FindDimension(std::string_view name) const;

  /// Finds the dimension owning a level with the given name (e.g. "city"
  /// resolves to the location dimension). Level names must be unique
  /// across dimensions for this lookup; duplicated names fail.
  Result<std::pair<std::size_t, LevelIndex>> FindLevelAnywhere(
      std::string_view level_name) const;

  /// Total number of base cells = product of level-0 cardinalities.
  std::size_t NumBaseCells() const;

 private:
  std::vector<Hierarchy> hierarchies_;
};

}  // namespace f2db

#endif  // F2DB_CUBE_CUBE_SCHEMA_H_
