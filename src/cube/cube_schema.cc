#include "cube/cube_schema.h"

namespace f2db {

Status CubeSchema::AddHierarchy(Hierarchy hierarchy) {
  if (!hierarchy.finalized()) {
    return Status::FailedPrecondition("hierarchy '" + hierarchy.name() +
                                      "' must be finalized first");
  }
  for (const Hierarchy& existing : hierarchies_) {
    if (existing.name() == hierarchy.name()) {
      return Status::AlreadyExists("dimension '" + hierarchy.name() +
                                   "' already present");
    }
  }
  hierarchies_.push_back(std::move(hierarchy));
  return Status::OK();
}

Result<std::size_t> CubeSchema::FindDimension(std::string_view name) const {
  for (std::size_t i = 0; i < hierarchies_.size(); ++i) {
    if (hierarchies_[i].name() == name) return i;
  }
  return Status::NotFound("no dimension '" + std::string(name) + "'");
}

Result<std::pair<std::size_t, LevelIndex>> CubeSchema::FindLevelAnywhere(
    std::string_view level_name) const {
  bool found = false;
  std::pair<std::size_t, LevelIndex> hit{0, 0};
  for (std::size_t dim = 0; dim < hierarchies_.size(); ++dim) {
    const auto level = hierarchies_[dim].FindLevel(level_name);
    if (level.ok()) {
      if (found) {
        return Status::InvalidArgument("level name '" +
                                       std::string(level_name) +
                                       "' is ambiguous across dimensions");
      }
      found = true;
      hit = {dim, level.value()};
    }
  }
  if (!found) {
    return Status::NotFound("no level '" + std::string(level_name) +
                            "' in any dimension");
  }
  return hit;
}

std::size_t CubeSchema::NumBaseCells() const {
  std::size_t product = 1;
  for (const Hierarchy& h : hierarchies_) product *= h.num_values(0);
  return product;
}

}  // namespace f2db
