// The time series hyper graph (Section II-A, Figure 2).
//
// Nodes represent time series at the instance level of the data cube: one
// node per combination of (level, value) across all dimension hierarchies.
// Level-0-everywhere nodes are base time series; every other node is an
// aggregated series obtained by SUM. The graph is complete (every
// aggregation possibility according to the categorical values exists),
// a series can contribute to several aggregated series, and functional
// dependencies are encoded by the hierarchies (C1*P2 does not exist when
// city determines region).

#ifndef F2DB_CUBE_GRAPH_H_
#define F2DB_CUBE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/cube_schema.h"
#include "ts/time_series.h"

namespace f2db {

/// Dense node identifier in [0, num_nodes()).
using NodeId = std::uint32_t;

/// Coordinate of a node: one (level, value) pair per dimension.
struct NodeAddress {
  struct Coordinate {
    LevelIndex level = 0;
    ValueIndex value = 0;
    bool operator==(const Coordinate&) const = default;
  };
  std::vector<Coordinate> coords;
  bool operator==(const NodeAddress&) const = default;
};

/// The complete instance-level aggregation graph with per-node series data.
class TimeSeriesGraph {
 public:
  /// Builds the (empty-data) graph for a schema. Fails when the node count
  /// would overflow NodeId.
  static Result<TimeSeriesGraph> Create(CubeSchema schema);

  const CubeSchema& schema() const { return schema_; }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_base_nodes() const { return base_nodes_.size(); }

  /// All base nodes (level 0 in every dimension) in deterministic order.
  const std::vector<NodeId>& base_nodes() const { return base_nodes_; }

  /// The single node aggregated over everything (ALL in every dimension).
  NodeId top_node() const { return top_node_; }

  /// True when every coordinate is at level 0.
  bool IsBaseNode(NodeId node) const;

  /// Decodes a node id into its address.
  NodeAddress AddressOf(NodeId node) const;

  /// Encodes an address into its node id; validates ranges.
  Result<NodeId> NodeFor(const NodeAddress& address) const;

  /// Human-readable name, e.g. "C1.R1*.P2" -> "city=C1,product=P2".
  std::string NodeName(NodeId node) const;

  /// Sum of levels across dimensions; 0 for base nodes. Nodes can be
  /// aggregated strictly bottom-up in increasing level-sum order.
  std::size_t LevelSum(NodeId node) const;

  /// Children of `node` along dimension `dim` (one aggregation step down).
  /// Empty when the node is at level 0 in that dimension.
  std::vector<NodeId> Children(NodeId node, std::size_t dim) const;

  /// All children across all dimensions (each set disjoint by dimension).
  std::vector<std::pair<std::size_t, std::vector<NodeId>>> ChildSets(
      NodeId node) const;

  /// Parent of `node` along dimension `dim` (one aggregation step up).
  /// Fails when the node is already at ALL in that dimension.
  Result<NodeId> Parent(NodeId node, std::size_t dim) const;

  /// Symmetric graph distance: the number of single-level roll-up /
  /// drill-down steps to get from `a` to `b` (summed over dimensions,
  /// through the lowest common ancestor per dimension).
  std::size_t Distance(NodeId a, NodeId b) const;

  /// Up to `k` nearest other nodes by breadth-first search over
  /// parent/child edges; deterministic order (distance, then id).
  std::vector<NodeId> NearestNodes(NodeId node, std::size_t k) const;

  // ------------------------------------------------------------------ data

  /// Installs the history of a base series. All base series must share
  /// start time and length.
  Status SetBaseSeries(NodeId node, TimeSeries series);

  /// Computes every aggregated series bottom-up. Requires all base series
  /// to be set and aligned.
  Status BuildAggregates();

  /// Series of a node (base or aggregated). Aggregates are valid only
  /// after BuildAggregates / AdvanceTime.
  const TimeSeries& series(NodeId node) const { return series_[node]; }

  /// Appends one new observation per base node (ordered as base_nodes())
  /// and incrementally updates every aggregate — the engine's batched
  /// time-advance (Section V, Maintenance Processor).
  Status AdvanceTime(const std::vector<double>& base_values);

  /// Length of the (aligned) series; 0 before data is loaded.
  std::size_t series_length() const;

  /// Drops every observation strictly before time `t` from every node's
  /// series (base and aggregate alike) — the in-memory half of retention.
  /// Requires aggregates to be built; series starting at or after `t` are
  /// untouched.
  Status DropHistoryBefore(std::int64_t t);

  /// Aggregates one scalar per base node (ordered as base_nodes()) up the
  /// graph with the same child-sum structure BuildAggregates uses,
  /// returning one scalar per node. Used to roll per-base retention sum
  /// offsets up to every aggregate exactly.
  Result<std::vector<double>> AggregateBaseScalars(
      const std::vector<double>& base_scalars) const;

 private:
  TimeSeriesGraph() = default;

  /// Per-dimension mixed-radix slot of a coordinate.
  std::size_t SlotOf(std::size_t dim, LevelIndex level, ValueIndex value) const;

  CubeSchema schema_;
  std::size_t num_nodes_ = 0;
  /// slots_per_dim_[d] = number of (level, value) combinations in dim d.
  std::vector<std::size_t> slots_per_dim_;
  /// level_offsets_[d][l] = first slot of level l in dimension d.
  std::vector<std::vector<std::size_t>> level_offsets_;
  std::vector<NodeId> base_nodes_;
  NodeId top_node_ = 0;
  std::vector<TimeSeries> series_;
  bool aggregates_built_ = false;
  /// Non-base nodes ordered by increasing level sum (aggregation order).
  std::vector<NodeId> aggregation_order_;
};

}  // namespace f2db

#endif  // F2DB_CUBE_GRAPH_H_
