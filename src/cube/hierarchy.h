// Dimension hierarchies with functional dependencies.
//
// A categorical dimension of the data cube (Section II-A) is modeled as a
// Hierarchy: an ordered list of levels from finest (level 0, e.g. city) to
// coarsest (e.g. region), with a parent mapping between adjacent levels
// encoding the functional dependency (city -> region). An implicit ALL
// level with a single value '*' sits above the coarsest declared level, so
// every hierarchy supports full aggregation.

#ifndef F2DB_CUBE_HIERARCHY_H_
#define F2DB_CUBE_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace f2db {

/// Index of a level inside a hierarchy; num_levels() denotes ALL.
using LevelIndex = std::uint32_t;
/// Index of a member value inside one level.
using ValueIndex = std::uint32_t;

/// One categorical dimension with (possibly multiple) aggregation levels.
///
/// Usage: construct, AddLevel from finest to coarsest, SetParent for every
/// value of every non-topmost level, then Finalize(). Values of the topmost
/// declared level implicitly aggregate into ALL.
class Hierarchy {
 public:
  explicit Hierarchy(std::string name) : name_(std::move(name)) {}

  /// Appends the next-coarser level with its member value names.
  /// The first call defines level 0 (the base granularity).
  Status AddLevel(std::string level_name, std::vector<std::string> value_names);

  /// Declares that `child_value` of `level` rolls up into `parent_value`
  /// of `level`+1. Required for every value of every level except the
  /// topmost declared level.
  Status SetParent(LevelIndex level, ValueIndex child_value,
                   ValueIndex parent_value);

  /// Validates parent mappings and builds child lists. Must be called once
  /// before the hierarchy is used in a graph.
  Status Finalize();

  const std::string& name() const { return name_; }
  bool finalized() const { return finalized_; }

  /// Number of declared levels (excluding ALL).
  std::size_t num_levels() const { return levels_.size(); }

  /// Number of values at `level`; the ALL level has exactly one.
  std::size_t num_values(LevelIndex level) const;

  /// Level name; "ALL" for the implicit top level.
  const std::string& level_name(LevelIndex level) const;

  /// Value name; "*" for the ALL value.
  const std::string& value_name(LevelIndex level, ValueIndex value) const;

  /// Parent value at `level`+1 of `value` at `level`. For the topmost
  /// declared level this is the ALL value (0).
  ValueIndex parent_value(LevelIndex level, ValueIndex value) const;

  /// Child values at `level`-1 that roll up into `value` at `level`.
  /// Requires 1 <= level <= num_levels() and a finalized hierarchy.
  const std::vector<ValueIndex>& child_values(LevelIndex level,
                                              ValueIndex value) const;

  /// Looks up a level by name (including "ALL").
  Result<LevelIndex> FindLevel(std::string_view level_name) const;

  /// Looks up a value by name within a level.
  Result<ValueIndex> FindValue(LevelIndex level,
                               std::string_view value_name) const;

  /// Builds a flat hierarchy with a single level (no intermediate
  /// aggregation below ALL); finalized and ready to use.
  static Hierarchy Flat(std::string name, std::vector<std::string> values);

 private:
  struct Level {
    std::string name;
    std::vector<std::string> value_names;
    /// parents[v] = parent value index at the next level; filled by
    /// SetParent, defaulted to 0 for the topmost level at Finalize.
    std::vector<ValueIndex> parents;
    bool parents_set = false;
  };

  std::string name_;
  std::vector<Level> levels_;
  /// children_[level][value] = child values at level-1 (level >= 1;
  /// index num_levels() is the ALL level).
  std::vector<std::vector<std::vector<ValueIndex>>> children_;
  bool finalized_ = false;
};

}  // namespace f2db

#endif  // F2DB_CUBE_HIERARCHY_H_
