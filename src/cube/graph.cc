#include "cube/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <numeric>

namespace f2db {

Result<TimeSeriesGraph> TimeSeriesGraph::Create(CubeSchema schema) {
  TimeSeriesGraph graph;
  graph.schema_ = std::move(schema);
  const std::size_t dims = graph.schema_.num_dimensions();
  if (dims == 0) {
    return Status::InvalidArgument("graph needs at least one dimension");
  }

  graph.slots_per_dim_.resize(dims);
  graph.level_offsets_.resize(dims);
  std::size_t total = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    const Hierarchy& h = graph.schema_.hierarchy(d);
    std::size_t slots = 0;
    graph.level_offsets_[d].resize(h.num_levels() + 1);
    for (LevelIndex l = 0; l <= h.num_levels(); ++l) {
      graph.level_offsets_[d][l] = slots;
      slots += h.num_values(l);
    }
    graph.slots_per_dim_[d] = slots;
    if (total > std::numeric_limits<NodeId>::max() / slots) {
      return Status::OutOfRange("graph too large for 32-bit node ids");
    }
    total *= slots;
  }
  graph.num_nodes_ = total;
  graph.series_.resize(total);

  // Base nodes in node-id order (deterministic) and the top node.
  for (NodeId node = 0; node < total; ++node) {
    if (graph.IsBaseNode(node)) graph.base_nodes_.push_back(node);
  }
  {
    NodeAddress top;
    top.coords.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      top.coords[d] = {
          static_cast<LevelIndex>(graph.schema_.hierarchy(d).num_levels()), 0};
    }
    const auto id = graph.NodeFor(top);
    assert(id.ok());
    graph.top_node_ = id.value();
  }

  // Precompute the bottom-up aggregation order over non-base nodes.
  graph.aggregation_order_.reserve(total - graph.base_nodes_.size());
  for (NodeId node = 0; node < total; ++node) {
    if (!graph.IsBaseNode(node)) graph.aggregation_order_.push_back(node);
  }
  std::stable_sort(graph.aggregation_order_.begin(),
                   graph.aggregation_order_.end(),
                   [&graph](NodeId a, NodeId b) {
                     return graph.LevelSum(a) < graph.LevelSum(b);
                   });
  return graph;
}

std::size_t TimeSeriesGraph::SlotOf(std::size_t dim, LevelIndex level,
                                    ValueIndex value) const {
  return level_offsets_[dim][level] + value;
}

bool TimeSeriesGraph::IsBaseNode(NodeId node) const {
  const NodeAddress address = AddressOf(node);
  for (const auto& c : address.coords) {
    if (c.level != 0) return false;
  }
  return true;
}

NodeAddress TimeSeriesGraph::AddressOf(NodeId node) const {
  const std::size_t dims = schema_.num_dimensions();
  NodeAddress address;
  address.coords.resize(dims);
  std::size_t rest = node;
  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t slot = rest % slots_per_dim_[d];
    rest /= slots_per_dim_[d];
    // Find the level containing this slot.
    const Hierarchy& h = schema_.hierarchy(d);
    LevelIndex level = 0;
    for (LevelIndex l = h.num_levels();; --l) {
      if (slot >= level_offsets_[d][l]) {
        level = l;
        break;
      }
      if (l == 0) break;
    }
    address.coords[d] = {level, static_cast<ValueIndex>(
                                    slot - level_offsets_[d][level])};
  }
  return address;
}

Result<NodeId> TimeSeriesGraph::NodeFor(const NodeAddress& address) const {
  const std::size_t dims = schema_.num_dimensions();
  if (address.coords.size() != dims) {
    return Status::InvalidArgument("address has wrong dimensionality");
  }
  std::size_t id = 0;
  for (std::size_t d = dims; d-- > 0;) {
    const auto& c = address.coords[d];
    const Hierarchy& h = schema_.hierarchy(d);
    if (c.level > h.num_levels()) {
      return Status::OutOfRange("level out of range in dimension " +
                                std::to_string(d));
    }
    if (c.value >= h.num_values(c.level)) {
      return Status::OutOfRange("value out of range in dimension " +
                                std::to_string(d));
    }
    id = id * slots_per_dim_[d] + SlotOf(d, c.level, c.value);
  }
  return static_cast<NodeId>(id);
}

std::string TimeSeriesGraph::NodeName(NodeId node) const {
  const NodeAddress address = AddressOf(node);
  std::string out;
  for (std::size_t d = 0; d < address.coords.size(); ++d) {
    if (d > 0) out += ",";
    const Hierarchy& h = schema_.hierarchy(d);
    const auto& c = address.coords[d];
    out += h.level_name(c.level);
    out += "=";
    out += h.value_name(c.level, c.value);
  }
  return out;
}

std::size_t TimeSeriesGraph::LevelSum(NodeId node) const {
  const NodeAddress address = AddressOf(node);
  std::size_t sum = 0;
  for (const auto& c : address.coords) sum += c.level;
  return sum;
}

std::vector<NodeId> TimeSeriesGraph::Children(NodeId node,
                                              std::size_t dim) const {
  NodeAddress address = AddressOf(node);
  const auto& c = address.coords[dim];
  if (c.level == 0) return {};
  const Hierarchy& h = schema_.hierarchy(dim);
  const std::vector<ValueIndex>& child_values =
      h.child_values(c.level, c.value);
  std::vector<NodeId> out;
  out.reserve(child_values.size());
  for (ValueIndex v : child_values) {
    NodeAddress child = address;
    child.coords[dim] = {static_cast<LevelIndex>(c.level - 1), v};
    const auto id = NodeFor(child);
    assert(id.ok());
    out.push_back(id.value());
  }
  return out;
}

std::vector<std::pair<std::size_t, std::vector<NodeId>>>
TimeSeriesGraph::ChildSets(NodeId node) const {
  std::vector<std::pair<std::size_t, std::vector<NodeId>>> out;
  for (std::size_t d = 0; d < schema_.num_dimensions(); ++d) {
    std::vector<NodeId> children = Children(node, d);
    if (!children.empty()) out.emplace_back(d, std::move(children));
  }
  return out;
}

Result<NodeId> TimeSeriesGraph::Parent(NodeId node, std::size_t dim) const {
  NodeAddress address = AddressOf(node);
  const auto& c = address.coords[dim];
  const Hierarchy& h = schema_.hierarchy(dim);
  if (c.level >= h.num_levels()) {
    return Status::OutOfRange("node already at ALL in dimension " +
                              std::to_string(dim));
  }
  // parent_value returns the ALL value (0) for the topmost declared level.
  NodeAddress up = address;
  up.coords[dim] = {static_cast<LevelIndex>(c.level + 1),
                    h.parent_value(c.level, c.value)};
  return NodeFor(up);
}

std::size_t TimeSeriesGraph::Distance(NodeId a, NodeId b) const {
  const NodeAddress aa = AddressOf(a);
  const NodeAddress bb = AddressOf(b);
  std::size_t total = 0;
  for (std::size_t d = 0; d < schema_.num_dimensions(); ++d) {
    const Hierarchy& h = schema_.hierarchy(d);
    LevelIndex la = aa.coords[d].level;
    LevelIndex lb = bb.coords[d].level;
    ValueIndex va = aa.coords[d].value;
    ValueIndex vb = bb.coords[d].value;
    std::size_t steps = 0;
    auto lift = [&h](LevelIndex& level, ValueIndex& value) {
      value = h.parent_value(level, value);
      ++level;
    };
    while (la < lb) {
      lift(la, va);
      ++steps;
    }
    while (lb < la) {
      lift(lb, vb);
      ++steps;
    }
    while (va != vb) {
      // Same level; climb both to the common ancestor.
      lift(la, va);
      lift(lb, vb);
      steps += 2;
    }
    total += steps;
  }
  return total;
}

std::vector<NodeId> TimeSeriesGraph::NearestNodes(NodeId node,
                                                  std::size_t k) const {
  std::vector<NodeId> out;
  if (k == 0) return out;
  std::vector<bool> visited(num_nodes_, false);
  visited[node] = true;
  std::vector<NodeId> frontier{node};
  while (!frontier.empty() && out.size() < k) {
    std::vector<NodeId> next;
    for (NodeId cur : frontier) {
      // Neighbors: children in every dimension plus parents.
      for (std::size_t d = 0; d < schema_.num_dimensions(); ++d) {
        for (NodeId child : Children(cur, d)) {
          if (!visited[child]) {
            visited[child] = true;
            next.push_back(child);
          }
        }
        const auto parent = Parent(cur, d);
        if (parent.ok() && !visited[parent.value()]) {
          visited[parent.value()] = true;
          next.push_back(parent.value());
        }
      }
    }
    std::sort(next.begin(), next.end());
    for (NodeId id : next) {
      if (out.size() >= k) break;
      out.push_back(id);
    }
    frontier = std::move(next);
  }
  return out;
}

Status TimeSeriesGraph::SetBaseSeries(NodeId node, TimeSeries series) {
  if (node >= num_nodes_) return Status::OutOfRange("node id out of range");
  if (!IsBaseNode(node)) {
    return Status::InvalidArgument("SetBaseSeries: not a base node");
  }
  series_[node] = std::move(series);
  aggregates_built_ = false;
  return Status::OK();
}

Status TimeSeriesGraph::BuildAggregates() {
  if (base_nodes_.empty()) return Status::FailedPrecondition("no base nodes");
  const std::size_t n = series_[base_nodes_[0]].size();
  const std::int64_t t0 = series_[base_nodes_[0]].start_time();
  for (NodeId node : base_nodes_) {
    if (series_[node].size() != n || series_[node].start_time() != t0) {
      return Status::FailedPrecondition(
          "base series are not aligned; node " + NodeName(node));
    }
  }
  for (NodeId node : aggregation_order_) {
    // Aggregate along the first dimension that is above level 0; children
    // there have a strictly smaller level sum and are already computed.
    const NodeAddress address = AddressOf(node);
    std::size_t dim = 0;
    while (address.coords[dim].level == 0) ++dim;
    const std::vector<NodeId> children = Children(node, dim);
    assert(!children.empty());
    std::vector<double> sum(n, 0.0);
    for (NodeId child : children) {
      const TimeSeries& child_series = series_[child];
      assert(child_series.size() == n);
      for (std::size_t i = 0; i < n; ++i) sum[i] += child_series[i];
    }
    series_[node] = TimeSeries(std::move(sum), t0);
  }
  aggregates_built_ = true;
  return Status::OK();
}

Status TimeSeriesGraph::AdvanceTime(const std::vector<double>& base_values) {
  if (base_values.size() != base_nodes_.size()) {
    return Status::InvalidArgument(
        "AdvanceTime: need exactly one value per base node");
  }
  if (!aggregates_built_) {
    return Status::FailedPrecondition("AdvanceTime: call BuildAggregates first");
  }
  for (std::size_t i = 0; i < base_nodes_.size(); ++i) {
    series_[base_nodes_[i]].Append(base_values[i]);
  }
  for (NodeId node : aggregation_order_) {
    const NodeAddress address = AddressOf(node);
    std::size_t dim = 0;
    while (address.coords[dim].level == 0) ++dim;
    double sum = 0.0;
    for (NodeId child : Children(node, dim)) {
      const TimeSeries& child_series = series_[child];
      sum += child_series[child_series.size() - 1];
    }
    series_[node].Append(sum);
  }
  return Status::OK();
}

Status TimeSeriesGraph::DropHistoryBefore(std::int64_t t) {
  if (!aggregates_built_) {
    return Status::FailedPrecondition(
        "DropHistoryBefore: call BuildAggregates first");
  }
  for (TimeSeries& series : series_) {
    if (series.start_time() >= t) continue;
    series.DropFront(static_cast<std::size_t>(t - series.start_time()));
  }
  return Status::OK();
}

Result<std::vector<double>> TimeSeriesGraph::AggregateBaseScalars(
    const std::vector<double>& base_scalars) const {
  if (base_scalars.size() != base_nodes_.size()) {
    return Status::InvalidArgument(
        "AggregateBaseScalars: need exactly one scalar per base node");
  }
  std::vector<double> out(num_nodes_, 0.0);
  for (std::size_t i = 0; i < base_nodes_.size(); ++i) {
    out[base_nodes_[i]] = base_scalars[i];
  }
  for (NodeId node : aggregation_order_) {
    const NodeAddress address = AddressOf(node);
    std::size_t dim = 0;
    while (address.coords[dim].level == 0) ++dim;
    double sum = 0.0;
    for (NodeId child : Children(node, dim)) sum += out[child];
    out[node] = sum;
  }
  return out;
}

std::size_t TimeSeriesGraph::series_length() const {
  if (base_nodes_.empty()) return 0;
  return series_[base_nodes_[0]].size();
}

}  // namespace f2db
