#include "engine/snapshot.h"

#include <cmath>

namespace f2db {

double EngineSnapshot::Weight(const std::vector<NodeId>& sources,
                              NodeId target) const {
  double denom = 0.0;
  for (NodeId s : sources) denom += history_sums[s];
  if (std::abs(denom) < 1e-12) return 0.0;
  return history_sums[target] / denom;
}

std::shared_ptr<const LiveModel> EngineSnapshot::FindModel(NodeId node) const {
  const auto it = models.find(node);
  return it == models.end() ? nullptr : it->second;
}

std::shared_ptr<EngineSnapshot> EngineSnapshot::CopyForWrite() const {
  auto next = std::make_shared<EngineSnapshot>(*this);
  ++next->version;
  return next;
}

}  // namespace f2db
