// Prometheus text exposition for engine counters.
//
// EngineStats::ToPrometheusText() (declared on the struct in engine.h,
// implemented here) renders the engine's monitoring counters in the
// Prometheus text format, version 0.0.4: one `# HELP` / `# TYPE` pair per
// metric family, `_total` suffixes on counters, and the degradation-rung
// breakdown as one family with a `rung` label. The server's STATS frame
// returns this text so any Prometheus-compatible scraper can consume the
// serving layer without an adapter.
//
// The escape helpers implement the format's two escaping rules and are
// exposed for reuse (server-side metrics) and direct unit testing:
//   - HELP text escapes backslash and newline;
//   - label values additionally escape the double quote.

#ifndef F2DB_ENGINE_STATS_EXPORT_H_
#define F2DB_ENGINE_STATS_EXPORT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace f2db {

struct EngineStats;  // engine.h

/// Escapes `\` and newline for a `# HELP` line.
std::string PrometheusEscapeHelp(std::string_view text);

/// Escapes `\`, `"`, and newline for a quoted label value.
std::string PrometheusEscapeLabelValue(std::string_view text);

/// Appends one full counter family: HELP, TYPE, and a sample line.
void AppendPrometheusCounter(std::string* out, std::string_view name,
                             std::string_view help, double value);

/// Appends a gauge family (same layout, TYPE gauge).
void AppendPrometheusGauge(std::string* out, std::string_view name,
                           std::string_view help, double value);

/// Renders the engine families of a SHARDED engine: every family carries
/// one labeled sample per shard (e.g. f2db_inserts_total{shard="3"}) plus
/// the unlabeled aggregated total, all under a single HELP/TYPE header —
/// the Prometheus-sanctioned layout for one family with several series.
/// `shards` pairs each shard's label value (its partition index as text)
/// with its counter snapshot; `total` is the aggregate the unlabeled
/// sample reports. The degradation-rung family combines both labels
/// ({rung="stale",shard="k"}).
std::string ShardedEngineStatsPrometheusText(
    const std::vector<std::pair<std::string, EngineStats>>& shards,
    const EngineStats& total);

}  // namespace f2db

#endif  // F2DB_ENGINE_STATS_EXPORT_H_
