// Configuration storage (Section V, "Configuration Storage").
//
// The paper stores a model configuration in two relational tables inside
// PostgreSQL: one for the time series graph / configuration (node, scheme
// sources, derivation weight, model assignment) and one for the forecast
// models themselves (state and parameter values). This catalog is the
// embedded equivalent with the same two-table layout and a plain-text disk
// format, so configurations survive process restarts.

#ifndef F2DB_ENGINE_CATALOG_H_
#define F2DB_ENGINE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/graph.h"

namespace f2db {

/// One row of the scheme (graph/configuration) table.
struct SchemeRow {
  NodeId target = 0;
  std::vector<NodeId> sources;  ///< Empty = node is uncovered.
  double weight = 0.0;          ///< Derivation weight at load time.
};

/// One row of the model table.
struct ModelRow {
  NodeId node = 0;
  /// Serialized model (ModelFactory::SerializeModel format).
  std::string payload;
  double creation_seconds = 0.0;
};

/// The two configuration tables plus persistence.
class ConfigurationCatalog {
 public:
  ConfigurationCatalog() = default;

  std::vector<SchemeRow>& scheme_table() { return scheme_table_; }
  const std::vector<SchemeRow>& scheme_table() const { return scheme_table_; }
  std::vector<ModelRow>& model_table() { return model_table_; }
  const std::vector<ModelRow>& model_table() const { return model_table_; }

  void Clear();

  /// Renders both tables in the "f2db-catalog v1" text format — also the
  /// payload of a WAL kCatalog record.
  std::string SerializeToString() const;

  /// Replaces the catalog contents from SerializeToString() text.
  Status ParseFromString(const std::string& text);

  /// Writes both tables to a text file.
  Status Save(const std::string& path) const;

  /// Replaces the catalog contents from a file written by Save.
  Status Load(const std::string& path);

 private:
  std::vector<SchemeRow> scheme_table_;
  std::vector<ModelRow> model_table_;
};

}  // namespace f2db

#endif  // F2DB_ENGINE_CATALOG_H_
