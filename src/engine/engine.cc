#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "ts/model_factory.h"

namespace f2db {

F2dbEngine::F2dbEngine(TimeSeriesGraph graph, EngineOptions options)
    : graph_(std::move(graph)), options_(options) {
  schemes_.resize(graph_.num_nodes());
  history_sums_.resize(graph_.num_nodes(), 0.0);
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    history_sums_[node] = graph_.series(node).Sum();
  }
  for (std::size_t i = 0; i < graph_.base_nodes().size(); ++i) {
    base_slot_[graph_.base_nodes()[i]] = i;
  }
}

Status F2dbEngine::LoadConfiguration(const ModelConfiguration& config,
                                     const ConfigurationEvaluator& evaluator) {
  if (config.num_nodes() != graph_.num_nodes()) {
    return Status::InvalidArgument(
        "configuration and engine graph have different node counts");
  }
  models_.clear();
  const std::vector<NodeId> model_nodes = config.model_nodes();
  if (model_nodes.empty()) {
    return Status::FailedPrecondition("configuration contains no models");
  }

  // Install models: clone the advisor's fitted model (trained on the
  // training prefix) and catch it up to the full stored history through
  // incremental updates — exactly the maintenance path.
  const std::size_t train_length = evaluator.train_length();
  for (NodeId node : model_nodes) {
    const ModelEntry* entry = config.entry(node);
    LiveModel live;
    live.model = entry->model->Clone();
    live.creation_seconds = entry->creation_seconds;
    const TimeSeries& series = graph_.series(node);
    for (std::size_t t = train_length; t < series.size(); ++t) {
      live.model->Update(series[t]);
    }
    models_[node] = std::move(live);
  }

  // Install schemes; uncovered nodes fall back to their nearest model node.
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    const NodeAssignment& assignment = config.assignment(node);
    if (!assignment.scheme.IsEmpty()) {
      schemes_[node] = assignment.scheme.sources;
      continue;
    }
    NodeId best = model_nodes.front();
    std::size_t best_distance = std::numeric_limits<std::size_t>::max();
    for (NodeId m : model_nodes) {
      const std::size_t distance = graph_.Distance(node, m);
      if (distance < best_distance) {
        best_distance = distance;
        best = m;
      }
    }
    schemes_[node] = {best};
  }
  return Status::OK();
}

Status F2dbEngine::LoadCatalog(const ConfigurationCatalog& catalog) {
  models_.clear();
  for (auto& scheme : schemes_) scheme.clear();
  for (const ModelRow& row : catalog.model_table()) {
    if (row.node >= graph_.num_nodes()) {
      return Status::OutOfRange("model row references unknown node");
    }
    F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> model,
                          ModelFactory::DeserializeModel(row.payload));
    LiveModel live;
    live.model = std::move(model);
    live.creation_seconds = row.creation_seconds;
    models_[row.node] = std::move(live);
  }
  for (const SchemeRow& row : catalog.scheme_table()) {
    if (row.target >= graph_.num_nodes()) {
      return Status::OutOfRange("scheme row references unknown node");
    }
    for (NodeId s : row.sources) {
      if (models_.count(s) == 0) {
        return Status::InvalidArgument(
            "scheme source " + std::to_string(s) + " has no stored model");
      }
    }
    schemes_[row.target] = row.sources;
  }
  return Status::OK();
}

Result<ConfigurationCatalog> F2dbEngine::ExportCatalog() const {
  ConfigurationCatalog catalog;
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    if (schemes_[node].empty()) continue;
    SchemeRow row;
    row.target = node;
    row.sources = schemes_[node];
    row.weight = CurrentWeight(row.sources, node);
    catalog.scheme_table().push_back(std::move(row));
  }
  for (const auto& [node, live] : models_) {
    ModelRow row;
    row.node = node;
    row.payload = ModelFactory::SerializeModel(*live.model);
    row.creation_seconds = live.creation_seconds;
    catalog.model_table().push_back(std::move(row));
  }
  std::sort(catalog.model_table().begin(), catalog.model_table().end(),
            [](const ModelRow& a, const ModelRow& b) { return a.node < b.node; });
  return catalog;
}

Result<QueryResult> F2dbEngine::ExecuteSql(const std::string& sql) {
  F2DB_ASSIGN_OR_RETURN(ForecastQuery query, ParseForecastQuery(sql));
  return Execute(query);
}

Result<QueryResult> F2dbEngine::Execute(const ForecastQuery& query) {
  StopWatch watch;
  F2DB_ASSIGN_OR_RETURN(NodeId node, ResolveNode(query.filters));
  QueryResult result;
  result.node = node;
  const std::int64_t now = graph_.series(node).end_time();
  if (query.with_intervals) {
    F2DB_ASSIGN_OR_RETURN(
        std::vector<ForecastInterval> intervals,
        ForecastNodeWithIntervals(node, query.horizon, query.confidence));
    result.rows.reserve(intervals.size());
    for (std::size_t h = 0; h < intervals.size(); ++h) {
      ForecastRow row;
      row.time = now + static_cast<std::int64_t>(h);
      row.value = intervals[h].point;
      row.lower = intervals[h].lower;
      row.upper = intervals[h].upper;
      row.has_interval = true;
      result.rows.push_back(row);
    }
    // ForecastNodeWithIntervals already accounted for the query.
    return result;
  }
  F2DB_ASSIGN_OR_RETURN(std::vector<double> forecast,
                        ForecastNodeInternal(node, query.horizon));
  result.rows.reserve(forecast.size());
  for (std::size_t h = 0; h < forecast.size(); ++h) {
    ForecastRow row;
    row.time = now + static_cast<std::int64_t>(h);
    row.value = forecast[h];
    result.rows.push_back(row);
  }
  ++stats_.queries;
  stats_.total_query_seconds += watch.ElapsedSeconds();
  return result;
}

Result<ExplainResult> F2dbEngine::Explain(const ForecastQuery& query) const {
  F2DB_ASSIGN_OR_RETURN(NodeId node, ResolveNode(query.filters));
  ExplainResult out;
  out.node = node;
  out.node_name = graph_.NodeName(node);
  out.sources = schemes_[node];
  out.weight = CurrentWeight(out.sources, node);
  out.horizon = query.horizon;
  for (NodeId source : out.sources) {
    const auto it = models_.find(source);
    std::string description = "node " + std::to_string(source) + " (" +
                              graph_.NodeName(source) + "): ";
    if (it == models_.end()) {
      description += "<missing model>";
    } else {
      description += ModelTypeName(it->second.model->type());
      description += ", " +
                     std::to_string(it->second.model->num_parameters()) +
                     " params";
      if (it->second.invalid) description += ", INVALID (lazy re-estimate)";
    }
    out.source_models.push_back(std::move(description));
  }
  return out;
}

Result<std::string> F2dbEngine::ExecuteStatementText(const std::string& sql) {
  F2DB_ASSIGN_OR_RETURN(Statement statement, ParseStatement(sql));
  std::string out;
  char buffer[160];
  switch (statement.kind) {
    case Statement::Kind::kForecast: {
      F2DB_ASSIGN_OR_RETURN(QueryResult result, Execute(statement.forecast));
      out = "-- node: " + graph_.NodeName(result.node) + "\n";
      for (const ForecastRow& row : result.rows) {
        if (row.has_interval) {
          std::snprintf(buffer, sizeof(buffer), "%lld | %.4f  [%.4f, %.4f]\n",
                        static_cast<long long>(row.time), row.value, row.lower,
                        row.upper);
        } else {
          std::snprintf(buffer, sizeof(buffer), "%lld | %.4f\n",
                        static_cast<long long>(row.time), row.value);
        }
        out += buffer;
      }
      break;
    }
    case Statement::Kind::kInsert: {
      F2DB_RETURN_IF_ERROR(InsertFact(statement.insert.base_values,
                                      statement.insert.time,
                                      statement.insert.value));
      std::snprintf(buffer, sizeof(buffer),
                    "INSERT ok (%zu buffered, %zu advances)\n",
                    pending_inserts(), stats_.time_advances);
      out = buffer;
      break;
    }
    case Statement::Kind::kExplain: {
      F2DB_ASSIGN_OR_RETURN(ExplainResult plan, Explain(statement.forecast));
      out = "Forecast Query Plan\n";
      out += "  node:    " + plan.node_name + " (#" +
             std::to_string(plan.node) + ")\n";
      out += "  horizon: " + std::to_string(plan.horizon) + "\n";
      std::snprintf(buffer, sizeof(buffer), "  weight:  %.6f\n", plan.weight);
      out += buffer;
      out += "  scheme:  " +
             std::string(plan.sources.size() == 1 &&
                                 plan.sources[0] == plan.node
                             ? "direct"
                             : (plan.sources.size() == 1 ? "derivation"
                                                         : "multi-source")) +
             " from " + std::to_string(plan.sources.size()) + " model(s)\n";
      for (const std::string& m : plan.source_models) {
        out += "    " + m + "\n";
      }
      break;
    }
  }
  return out;
}

Result<NodeId> F2dbEngine::ResolveNode(
    const std::vector<DimensionFilter>& filters) const {
  const CubeSchema& schema = graph_.schema();
  NodeAddress address;
  address.coords.resize(schema.num_dimensions());
  for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
    address.coords[d] = {
        static_cast<LevelIndex>(schema.hierarchy(d).num_levels()), 0};  // ALL
  }
  for (const DimensionFilter& filter : filters) {
    F2DB_ASSIGN_OR_RETURN(auto hit, schema.FindLevelAnywhere(filter.level));
    const auto [dim, level] = hit;
    F2DB_ASSIGN_OR_RETURN(ValueIndex value,
                          schema.hierarchy(dim).FindValue(level, filter.value));
    address.coords[dim] = {level, value};
  }
  return graph_.NodeFor(address);
}

Result<std::vector<double>> F2dbEngine::ForecastNode(NodeId node,
                                                     std::size_t horizon) {
  StopWatch watch;
  F2DB_ASSIGN_OR_RETURN(std::vector<double> forecast,
                        ForecastNodeInternal(node, horizon));
  ++stats_.queries;
  stats_.total_query_seconds += watch.ElapsedSeconds();
  return forecast;
}

Result<std::vector<ForecastInterval>> F2dbEngine::ForecastNodeWithIntervals(
    NodeId node, std::size_t horizon, double confidence) {
  StopWatch watch;
  if (node >= graph_.num_nodes()) {
    return Status::OutOfRange("node id out of range");
  }
  const std::vector<NodeId>& sources = schemes_[node];
  if (sources.empty()) {
    return Status::FailedPrecondition(
        "no derivation scheme stored for node " + graph_.NodeName(node));
  }
  std::vector<double> points(horizon, 0.0);
  std::vector<double> variances(horizon, 0.0);
  for (NodeId source : sources) {
    const auto it = models_.find(source);
    if (it == models_.end()) {
      return Status::Internal("scheme source " + std::to_string(source) +
                              " lost its model");
    }
    F2DB_RETURN_IF_ERROR(EnsureValid(source, it->second));
    const std::vector<double> forecast = it->second.model->Forecast(horizon);
    const std::vector<double> variance =
        it->second.model->ForecastVariance(horizon);
    if (variance.size() != horizon) {
      return Status::Unimplemented(
          "model at node " + std::to_string(source) +
          " does not support interval forecasts");
    }
    for (std::size_t h = 0; h < horizon; ++h) {
      points[h] += forecast[h];
      variances[h] += variance[h];
    }
  }
  const double weight = CurrentWeight(sources, node);
  for (std::size_t h = 0; h < horizon; ++h) {
    points[h] *= weight;
    variances[h] *= weight * weight;
  }
  ++stats_.queries;
  stats_.total_query_seconds += watch.ElapsedSeconds();
  return IntervalsFromMoments(points, variances, confidence);
}

Result<std::vector<double>> F2dbEngine::ForecastNodeInternal(
    NodeId node, std::size_t horizon) {
  if (node >= graph_.num_nodes()) {
    return Status::OutOfRange("node id out of range");
  }
  const std::vector<NodeId>& sources = schemes_[node];
  if (sources.empty()) {
    return Status::FailedPrecondition(
        "no derivation scheme stored for node " + graph_.NodeName(node));
  }
  std::vector<double> combined(horizon, 0.0);
  for (NodeId source : sources) {
    const auto it = models_.find(source);
    if (it == models_.end()) {
      return Status::Internal("scheme source " + std::to_string(source) +
                              " lost its model");
    }
    F2DB_RETURN_IF_ERROR(EnsureValid(source, it->second));
    const std::vector<double> forecast = it->second.model->Forecast(horizon);
    for (std::size_t h = 0; h < horizon; ++h) combined[h] += forecast[h];
  }
  const double weight = CurrentWeight(sources, node);
  for (double& v : combined) v *= weight;
  return combined;
}

Status F2dbEngine::InsertFact(const std::vector<std::string>& base_values,
                              std::int64_t time, double value) {
  const CubeSchema& schema = graph_.schema();
  if (base_values.size() != schema.num_dimensions()) {
    return Status::InvalidArgument("need one level-0 value per dimension");
  }
  NodeAddress address;
  address.coords.resize(schema.num_dimensions());
  for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
    F2DB_ASSIGN_OR_RETURN(ValueIndex v,
                          schema.hierarchy(d).FindValue(0, base_values[d]));
    address.coords[d] = {0, v};
  }
  F2DB_ASSIGN_OR_RETURN(NodeId node, graph_.NodeFor(address));
  return InsertFact(node, time, value);
}

Status F2dbEngine::InsertFact(NodeId base_node, std::int64_t time,
                              double value) {
  StopWatch watch;
  const auto slot = base_slot_.find(base_node);
  if (slot == base_slot_.end()) {
    return Status::InvalidArgument("not a base node: " +
                                   std::to_string(base_node));
  }
  const std::int64_t frontier = graph_.series(graph_.base_nodes()[0]).end_time();
  if (time < frontier) {
    return Status::OutOfRange("insert at time " + std::to_string(time) +
                              " is behind the stored frontier " +
                              std::to_string(frontier));
  }
  auto& batch = pending_[time];
  if (batch.empty()) batch.resize(graph_.num_base_nodes());
  if (batch[slot->second].has_value()) {
    return Status::AlreadyExists("duplicate insert for node " +
                                 graph_.NodeName(base_node) + " at time " +
                                 std::to_string(time));
  }
  batch[slot->second] = value;
  ++stats_.inserts;
  const Status advanced = AdvanceWhileComplete();
  stats_.total_maintenance_seconds += watch.ElapsedSeconds();
  return advanced;
}

std::size_t F2dbEngine::pending_inserts() const {
  std::size_t count = 0;
  for (const auto& [time, batch] : pending_) {
    for (const auto& v : batch) {
      if (v.has_value()) ++count;
    }
  }
  return count;
}

Status F2dbEngine::AdvanceWhileComplete() {
  for (;;) {
    const std::int64_t frontier =
        graph_.series(graph_.base_nodes()[0]).end_time();
    const auto it = pending_.find(frontier);
    if (it == pending_.end()) return Status::OK();
    const auto& batch = it->second;
    const bool complete =
        std::all_of(batch.begin(), batch.end(),
                    [](const std::optional<double>& v) { return v.has_value(); });
    if (!complete) return Status::OK();

    // Advance the whole graph by one period (batched inserts, Section V).
    std::vector<double> values(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) values[i] = *batch[i];
    pending_.erase(it);
    F2DB_RETURN_IF_ERROR(graph_.AdvanceTime(values));
    ++stats_.time_advances;

    // Incremental maintenance: history sums and model states.
    for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
      const TimeSeries& series = graph_.series(node);
      history_sums_[node] += series[series.size() - 1];
    }
    for (auto& [node, live] : models_) {
      const TimeSeries& series = graph_.series(node);
      live.model->Update(series[series.size() - 1]);
      ++live.updates_since_estimate;
      if (options_.reestimate_after_updates > 0 &&
          live.updates_since_estimate >= options_.reestimate_after_updates) {
        live.invalid = true;  // re-estimated lazily on next query reference
      }
    }
  }
}

Status F2dbEngine::EnsureValid(NodeId node, LiveModel& live) {
  if (!live.invalid) return Status::OK();
  StopWatch watch;
  F2DB_RETURN_IF_ERROR(live.model->Fit(graph_.series(node)));
  live.invalid = false;
  live.updates_since_estimate = 0;
  ++stats_.reestimates;
  stats_.total_maintenance_seconds += watch.ElapsedSeconds();
  return Status::OK();
}

double F2dbEngine::CurrentWeight(const std::vector<NodeId>& sources,
                                 NodeId target) const {
  double denom = 0.0;
  for (NodeId s : sources) denom += history_sums_[s];
  if (std::abs(denom) < 1e-12) return 0.0;
  return history_sums_[target] / denom;
}

}  // namespace f2db
