#include "engine/engine.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/recovery.h"
#include "storage/fsio.h"
#include "ts/model_factory.h"
#include "ts/naive_models.h"

namespace f2db {

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNone:
      return "NONE";
    case DegradationLevel::kStaleModel:
      return "STALE_MODEL";
    case DegradationLevel::kDerivedFallback:
      return "DERIVED_FALLBACK";
    case DegradationLevel::kNaiveFallback:
      return "NAIVE_FALLBACK";
    case DegradationLevel::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

namespace {

/// Derived-fallback recursion bound: a source that fell back to its own
/// scheme may hit sources that are themselves degraded; beyond this depth
/// the ladder skips to the naive rung instead of walking the graph.
constexpr std::size_t kMaxDerivationDepth = 4;

/// Evaluates `model` into a DegradedForecast tagged with `level`/`reason`.
/// Fails with kUnimplemented when variances are requested but unsupported.
Result<DegradedForecast> ForecastFromModel(const ForecastModel& model,
                                           NodeId source, std::size_t horizon,
                                           bool want_variance,
                                           DegradationLevel level,
                                           std::string reason) {
  DegradedForecast out;
  out.values = model.Forecast(horizon);
  if (want_variance) {
    out.variances = model.ForecastVariance(horizon);
    if (out.variances.size() != horizon) {
      return Status::Unimplemented("model at node " + std::to_string(source) +
                                   " does not support interval forecasts");
    }
  }
  out.level = level;
  out.reason = std::move(reason);
  return out;
}

/// Resolves WHERE filters against a graph's schema (structure only; the
/// schema is identical across snapshots of one engine).
Result<NodeId> ResolveNodeIn(const TimeSeriesGraph& graph,
                             const std::vector<DimensionFilter>& filters) {
  const CubeSchema& schema = graph.schema();
  NodeAddress address;
  address.coords.resize(schema.num_dimensions());
  for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
    address.coords[d] = {
        static_cast<LevelIndex>(schema.hierarchy(d).num_levels()), 0};  // ALL
  }
  for (const DimensionFilter& filter : filters) {
    F2DB_ASSIGN_OR_RETURN(auto hit, schema.FindLevelAnywhere(filter.level));
    const auto [dim, level] = hit;
    F2DB_ASSIGN_OR_RETURN(ValueIndex value,
                          schema.hierarchy(dim).FindValue(level, filter.value));
    address.coords[dim] = {level, value};
  }
  return graph.NodeFor(address);
}

}  // namespace

F2dbEngine::F2dbEngine(TimeSeriesGraph graph, EngineOptions options)
    : options_(options) {
  auto owned = std::make_shared<TimeSeriesGraph>(std::move(graph));
  for (std::size_t i = 0; i < owned->base_nodes().size(); ++i) {
    base_slot_[owned->base_nodes()[i]] = i;
  }
  auto initial = std::make_shared<EngineSnapshot>();
  initial->schemes.resize(owned->num_nodes());
  initial->history_sums.resize(owned->num_nodes(), 0.0);
  for (NodeId node = 0; node < owned->num_nodes(); ++node) {
    initial->history_sums[node] = owned->series(node).Sum();
  }
  initial->graph = std::move(owned);
  snapshot_.store(std::move(initial), std::memory_order_release);
}

F2dbEngine::~F2dbEngine() {
  if (checkpoint_thread_.joinable() || compaction_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(checkpoint_mutex_);
      stopping_ = true;
    }
    checkpoint_cv_.notify_all();
    if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
    if (compaction_thread_.joinable()) compaction_thread_.join();
  }
  if (wal_) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    wal_->Close();
  }
}

Result<std::unique_ptr<F2dbEngine>> F2dbEngine::Open(TimeSeriesGraph graph,
                                                     EngineOptions options) {
  auto engine = std::make_unique<F2dbEngine>(std::move(graph), options);
  if (options.data_dir.empty()) return engine;

  // Recovery runs single-threaded: the engine exists but no other thread
  // can reach it yet, so the replay callbacks use the regular maintenance
  // paths (with logging suppressed — replayed records are already logged).
  RecoveryCallbacks callbacks;
  callbacks.apply_checkpoint = [&engine](
                                   CheckpointState&& state,
                                   const storage::ManifestData* manifest) {
    return engine->ApplyCheckpointState(std::move(state), manifest);
  };
  callbacks.apply_segments = [&engine](
                                 const storage::ManifestData& manifest,
                                 std::vector<storage::SegmentData>&& chain) {
    return engine->ApplySegmentState(manifest, std::move(chain));
  };
  callbacks.apply_record = [&engine](const WalRecord& record) {
    return engine->ApplyWalRecord(record);
  };
  F2DB_ASSIGN_OR_RETURN(RecoveryInfo info,
                        RunRecovery(options.data_dir, callbacks));
  engine->recovery_records_replayed_ = info.records_replayed;
  engine->recovery_torn_tail_ = info.torn_tail_detected;
  engine->recovery_seconds_ = info.recovery_seconds;
  engine->recovery_segment_records_ =
      static_cast<std::size_t>(info.segment_records_loaded);
  engine->reseal_segments_ = info.segment_fallback;

  auto writer =
      info.create_segment
          ? WalWriter::Create(options.data_dir, info.append_epoch,
                              options.fsync_policy, options.wal_batch_records)
          : WalWriter::Reopen(options.data_dir, info.append_epoch,
                              info.append_valid_bytes, options.fsync_policy,
                              options.wal_batch_records);
  if (!writer.ok()) return writer.status();
  engine->wal_ = std::make_unique<WalWriter>(std::move(writer.value()));

  // The segment store opens AFTER recovery: recovery reads the manifest
  // and chain straight from disk, then the store cleans up whatever a
  // crash orphaned (half-written segments, retention leftovers).
  F2DB_ASSIGN_OR_RETURN(engine->store_,
                        storage::SegmentStore::Open(options.data_dir));

  if (options.checkpoint_interval_seconds > 0.0) {
    engine->checkpoint_thread_ =
        std::thread([raw = engine.get()] { raw->CheckpointLoop(); });
  }
  if (options.compaction_interval_seconds > 0.0) {
    engine->compaction_thread_ =
        std::thread([raw = engine.get()] { raw->CompactionLoop(); });
  }
  return engine;
}

const TimeSeriesGraph& F2dbEngine::graph() const {
  return *LoadSnapshot()->graph;
}

EngineStats F2dbEngine::stats() const {
  EngineStats out;
  out.queries = stats_.queries.Load();
  out.inserts = stats_.inserts.Load();
  out.time_advances = stats_.time_advances.Load();
  out.reestimates = stats_.reestimates.Load();
  out.refit_failures = stats_.refit_failures.Load();
  out.quarantines = stats_.quarantines.Load();
  out.degraded_rows_stale = stats_.degraded_rows_stale.Load();
  out.degraded_rows_derived = stats_.degraded_rows_derived.Load();
  out.degraded_rows_naive = stats_.degraded_rows_naive.Load();
  out.deadline_expired_queries = stats_.deadline_expired_queries.Load();
  out.brownout_refits_skipped = stats_.brownout_refits_skipped.Load();
  out.total_query_seconds = stats_.query_seconds.Load();
  out.total_maintenance_seconds = stats_.maintenance_seconds.Load();
  out.wal_records_appended = stats_.wal_records.Load();
  out.wal_bytes = stats_.wal_bytes.Load();
  out.wal_records_replayed = recovery_records_replayed_;
  out.torn_tail_detected = recovery_torn_tail_ ? 1 : 0;
  out.checkpoints_completed = stats_.checkpoints_completed.Load();
  out.checkpoint_failures = stats_.checkpoint_failures.Load();
  out.segments_sealed = stats_.segments_sealed.Load();
  out.segment_records_sealed = stats_.segment_records_sealed.Load();
  out.segments_live =
      store_ ? static_cast<std::size_t>(store_->live_segments()) : 0;
  out.segment_live_bytes =
      store_ ? static_cast<std::size_t>(store_->live_bytes()) : 0;
  out.compactions_completed = stats_.compactions_completed.Load();
  out.compaction_failures = stats_.compaction_failures.Load();
  out.retention_segments_deleted = stats_.retention_segments_deleted.Load();
  out.retention_records_dropped = stats_.retention_records_dropped.Load();
  out.segment_records_recovered = recovery_segment_records_;
  out.recovery_duration_ms = recovery_seconds_ * 1e3;
  const double last = last_checkpoint_seconds_.load(std::memory_order_relaxed);
  out.last_checkpoint_age_seconds =
      last < 0.0 ? -1.0 : uptime_.ElapsedSeconds() - last;
  return out;
}

void F2dbEngine::Publish(std::shared_ptr<EngineSnapshot> next) const {
  snapshot_.store(std::move(next), std::memory_order_release);
}

ThreadPool* F2dbEngine::MaintenancePool() const {
  if (options_.maintenance_threads == 1) return nullptr;
  std::call_once(pool_once_, [this] {
    const std::size_t threads = options_.maintenance_threads == 0
                                    ? ThreadPool::DefaultConcurrency()
                                    : options_.maintenance_threads;
    pool_ = std::make_unique<ThreadPool>(threads);
  });
  return pool_.get();
}

Status F2dbEngine::LoadConfiguration(const ModelConfiguration& config,
                                     const ConfigurationEvaluator& evaluator) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const SnapshotPtr cur = LoadSnapshot();
  const TimeSeriesGraph& graph = *cur->graph;
  if (config.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "configuration and engine graph have different node counts");
  }
  const std::vector<NodeId> model_nodes = config.model_nodes();
  if (model_nodes.empty()) {
    return Status::FailedPrecondition("configuration contains no models");
  }

  auto next = cur->CopyForWrite();
  next->models.clear();

  // Install models: clone the advisor's fitted model (trained on the
  // training prefix) and catch it up to the full stored history through
  // incremental updates — exactly the maintenance path. Catch-up is
  // per-model independent and fans out across the maintenance pool.
  const std::size_t train_length = evaluator.train_length();
  std::vector<std::shared_ptr<const LiveModel>> built(model_nodes.size());
  const auto catch_up = [&](std::size_t i) {
    const NodeId node = model_nodes[i];
    const ModelEntry* entry = config.entry(node);
    std::unique_ptr<ForecastModel> model = entry->model->Clone();
    const TimeSeries& series = graph.series(node);
    for (std::size_t t = train_length; t < series.size(); ++t) {
      model->Update(series[t]);
    }
    auto live = std::make_shared<LiveModel>();
    live->model = std::shared_ptr<const ForecastModel>(std::move(model));
    live->creation_seconds = entry->creation_seconds;
    built[i] = std::move(live);
  };
  if (ThreadPool* pool = MaintenancePool()) {
    pool->ParallelFor(model_nodes.size(), catch_up);
  } else {
    for (std::size_t i = 0; i < model_nodes.size(); ++i) catch_up(i);
  }
  for (std::size_t i = 0; i < model_nodes.size(); ++i) {
    next->models[model_nodes[i]] = std::move(built[i]);
  }

  // Install schemes; uncovered nodes fall back to their nearest model node.
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    const NodeAssignment& assignment = config.assignment(node);
    if (!assignment.scheme.IsEmpty()) {
      next->schemes[node] = assignment.scheme.sources;
      continue;
    }
    NodeId best = model_nodes.front();
    std::size_t best_distance = std::numeric_limits<std::size_t>::max();
    for (NodeId m : model_nodes) {
      const std::size_t distance = graph.Distance(node, m);
      if (distance < best_distance) {
        best_distance = distance;
        best = m;
      }
    }
    next->schemes[node] = {best};
  }
  // Log the configuration before it becomes visible: a crash after the
  // append replays into this exact state (the caught-up models included),
  // a crash before it leaves the previous state — either way WAL and
  // published state agree.
  F2DB_RETURN_IF_ERROR(WalAppendLocked(
      WalRecord::Catalog(CatalogFromSnapshot(*next).SerializeToString())));
  Publish(std::move(next));
  return Status::OK();
}

Status F2dbEngine::LoadCatalog(const ConfigurationCatalog& catalog) {
  return LoadCatalogImpl(catalog, /*log=*/true);
}

Status F2dbEngine::LoadCatalogImpl(const ConfigurationCatalog& catalog,
                                   bool log) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const SnapshotPtr cur = LoadSnapshot();
  auto next = cur->CopyForWrite();
  next->models.clear();
  for (auto& scheme : next->schemes) scheme.clear();
  for (const ModelRow& row : catalog.model_table()) {
    // Per-row injection point: any row failing must abort the whole load
    // with the previous state still published (transactional contract).
    F2DB_INJECT_FAILPOINT(kFailpointCatalogDecode);
    if (row.node >= cur->graph->num_nodes()) {
      return Status::OutOfRange("model row references unknown node");
    }
    F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> model,
                          ModelFactory::DeserializeModel(row.payload));
    auto live = std::make_shared<LiveModel>();
    live->model = std::shared_ptr<const ForecastModel>(std::move(model));
    live->creation_seconds = row.creation_seconds;
    next->models[row.node] = std::move(live);
  }
  for (const SchemeRow& row : catalog.scheme_table()) {
    if (row.target >= cur->graph->num_nodes()) {
      return Status::OutOfRange("scheme row references unknown node");
    }
    for (NodeId s : row.sources) {
      if (s >= cur->graph->num_nodes()) {
        return Status::OutOfRange("scheme source references unknown node");
      }
    }
    next->schemes[row.target] = row.sources;
  }
  // A scheme source needs either a stored model or a derivation scheme of
  // its own (the query path serves the latter through the degraded-fallback
  // ladder). Validated after both tables are installed because a source's
  // scheme row may follow the row that references it.
  for (const SchemeRow& row : catalog.scheme_table()) {
    for (NodeId s : row.sources) {
      if (next->models.count(s) == 0 && next->schemes[s].empty()) {
        return Status::InvalidArgument(
            "scheme source " + std::to_string(s) +
            " has neither a stored model nor a derivation scheme");
      }
    }
  }
  // All rows validated — log, then only now does the state become visible.
  if (log) {
    F2DB_RETURN_IF_ERROR(
        WalAppendLocked(WalRecord::Catalog(catalog.SerializeToString())));
  }
  Publish(std::move(next));
  return Status::OK();
}

ConfigurationCatalog F2dbEngine::CatalogFromSnapshot(const EngineSnapshot& snap) {
  ConfigurationCatalog catalog;
  for (NodeId node = 0; node < snap.graph->num_nodes(); ++node) {
    if (snap.schemes[node].empty()) continue;
    SchemeRow row;
    row.target = node;
    row.sources = snap.schemes[node];
    row.weight = snap.Weight(row.sources, node);
    catalog.scheme_table().push_back(std::move(row));
  }
  for (const auto& [node, live] : snap.models) {
    ModelRow row;
    row.node = node;
    row.payload = ModelFactory::SerializeModel(*live->model);
    row.creation_seconds = live->creation_seconds;
    catalog.model_table().push_back(std::move(row));
  }
  std::sort(catalog.model_table().begin(), catalog.model_table().end(),
            [](const ModelRow& a, const ModelRow& b) { return a.node < b.node; });
  return catalog;
}

Result<ConfigurationCatalog> F2dbEngine::ExportCatalog() const {
  return CatalogFromSnapshot(*LoadSnapshot());
}

Result<QueryResult> F2dbEngine::ExecuteSql(const std::string& sql) const {
  F2DB_ASSIGN_OR_RETURN(ForecastQuery query, ParseForecastQuery(sql));
  return Execute(query);
}

Result<QueryResult> F2dbEngine::Execute(const ForecastQuery& query) const {
  StopWatch watch;
  // Deadline gate: a query whose budget is already spent answers
  // kDeadlineExceeded before any node resolution or forecast work — dead
  // work never reaches a model.
  if (query.deadline != ForecastQuery::kNoDeadline &&
      std::chrono::steady_clock::now() >= query.deadline) {
    stats_.deadline_expired_queries.Add();
    return Status::DeadlineExceeded(
        "query deadline expired before execution");
  }
  const SnapshotPtr snap = LoadSnapshot();
  F2DB_ASSIGN_OR_RETURN(NodeId node, ResolveNodeIn(*snap->graph, query.filters));
  QueryResult result;
  result.node = node;
  result.node_name = snap->graph->NodeName(node);
  const std::int64_t now = snap->graph->series(node).end_time();
  if (query.with_intervals) {
    F2DB_ASSIGN_OR_RETURN(
        DegradedForecast forecast,
        ForecastInternal(snap, node, query.horizon, /*want_variance=*/true,
                         query.brownout));
    F2DB_ASSIGN_OR_RETURN(std::vector<ForecastInterval> intervals,
                          IntervalsFromMoments(forecast.values,
                                               forecast.variances,
                                               query.confidence));
    result.degradation = forecast.level;
    result.degradation_reason = std::move(forecast.reason);
    result.rows.reserve(intervals.size());
    for (std::size_t h = 0; h < intervals.size(); ++h) {
      ForecastRow row;
      row.time = now + static_cast<std::int64_t>(h);
      row.value = intervals[h].point;
      row.lower = intervals[h].lower;
      row.upper = intervals[h].upper;
      row.has_interval = true;
      row.degradation = result.degradation;
      result.rows.push_back(row);
    }
  } else {
    F2DB_ASSIGN_OR_RETURN(
        DegradedForecast forecast,
        ForecastInternal(snap, node, query.horizon, /*want_variance=*/false,
                         query.brownout));
    result.degradation = forecast.level;
    result.degradation_reason = std::move(forecast.reason);
    result.rows.reserve(forecast.values.size());
    for (std::size_t h = 0; h < forecast.values.size(); ++h) {
      ForecastRow row;
      row.time = now + static_cast<std::int64_t>(h);
      row.value = forecast.values[h];
      row.degradation = result.degradation;
      result.rows.push_back(row);
    }
  }
  CountDegradedRows(result.degradation, result.rows.size());
  stats_.queries.Add();
  stats_.query_seconds.Add(watch.ElapsedSeconds());
  return result;
}

Result<ExplainResult> F2dbEngine::Explain(const ForecastQuery& query) const {
  const SnapshotPtr snap = LoadSnapshot();
  F2DB_ASSIGN_OR_RETURN(NodeId node, ResolveNodeIn(*snap->graph, query.filters));
  ExplainResult out;
  out.node = node;
  out.node_name = snap->graph->NodeName(node);
  out.sources = snap->schemes[node];
  out.weight = snap->Weight(out.sources, node);
  out.horizon = query.horizon;
  for (NodeId source : out.sources) {
    const std::shared_ptr<const LiveModel> live = snap->FindModel(source);
    std::string description = "node " + std::to_string(source) + " (" +
                              snap->graph->NodeName(source) + "): ";
    if (live == nullptr) {
      description += "<missing model>";
    } else {
      description += ModelTypeName(live->model->type());
      description +=
          ", " + std::to_string(live->model->num_parameters()) + " params";
      if (live->invalid) description += ", INVALID (lazy re-estimate)";
      if (live->quarantined) {
        description += ", QUARANTINED (" +
                       std::to_string(live->refit_failures) +
                       " refit failures)";
      }
    }
    out.source_models.push_back(std::move(description));
  }
  return out;
}

Result<std::string> F2dbEngine::ExecuteStatementText(const std::string& sql) {
  F2DB_ASSIGN_OR_RETURN(Statement statement, ParseStatement(sql));
  std::string out;
  char buffer[160];
  switch (statement.kind) {
    case Statement::Kind::kForecast: {
      F2DB_ASSIGN_OR_RETURN(QueryResult result, Execute(statement.forecast));
      out = "-- node: " + graph().NodeName(result.node) + "\n";
      if (result.degradation != DegradationLevel::kNone) {
        out += "-- degraded: " +
               std::string(DegradationLevelName(result.degradation)) + " (" +
               result.degradation_reason + ")\n";
      }
      for (const ForecastRow& row : result.rows) {
        if (row.has_interval) {
          std::snprintf(buffer, sizeof(buffer), "%lld | %.4f  [%.4f, %.4f]\n",
                        static_cast<long long>(row.time), row.value, row.lower,
                        row.upper);
        } else {
          std::snprintf(buffer, sizeof(buffer), "%lld | %.4f\n",
                        static_cast<long long>(row.time), row.value);
        }
        out += buffer;
      }
      break;
    }
    case Statement::Kind::kInsert: {
      F2DB_RETURN_IF_ERROR(InsertFact(statement.insert.base_values,
                                      statement.insert.time,
                                      statement.insert.value));
      std::snprintf(buffer, sizeof(buffer),
                    "INSERT ok (%zu buffered, %zu advances)\n",
                    pending_inserts(), stats_.time_advances.Load());
      out = buffer;
      break;
    }
    case Statement::Kind::kExplain: {
      F2DB_ASSIGN_OR_RETURN(ExplainResult plan, Explain(statement.forecast));
      out = "Forecast Query Plan\n";
      out += "  node:    " + plan.node_name + " (#" +
             std::to_string(plan.node) + ")\n";
      out += "  horizon: " + std::to_string(plan.horizon) + "\n";
      std::snprintf(buffer, sizeof(buffer), "  weight:  %.6f\n", plan.weight);
      out += buffer;
      out += "  scheme:  " +
             std::string(plan.sources.size() == 1 &&
                                 plan.sources[0] == plan.node
                             ? "direct"
                             : (plan.sources.size() == 1 ? "derivation"
                                                         : "multi-source")) +
             " from " + std::to_string(plan.sources.size()) + " model(s)\n";
      for (const std::string& m : plan.source_models) {
        out += "    " + m + "\n";
      }
      break;
    }
  }
  return out;
}

Result<NodeId> F2dbEngine::ResolveNode(
    const std::vector<DimensionFilter>& filters) const {
  const SnapshotPtr snap = LoadSnapshot();
  return ResolveNodeIn(*snap->graph, filters);
}

Result<std::vector<double>> F2dbEngine::ForecastNode(NodeId node,
                                                     std::size_t horizon) const {
  return ForecastNode(LoadSnapshot(), node, horizon);
}

Result<std::vector<double>> F2dbEngine::ForecastNode(
    const SnapshotPtr& snapshot, NodeId node, std::size_t horizon) const {
  StopWatch watch;
  F2DB_ASSIGN_OR_RETURN(
      DegradedForecast forecast,
      ForecastInternal(snapshot, node, horizon, /*want_variance=*/false));
  CountDegradedRows(forecast.level, forecast.values.size());
  stats_.queries.Add();
  stats_.query_seconds.Add(watch.ElapsedSeconds());
  return std::move(forecast.values);
}

Result<std::vector<ForecastInterval>> F2dbEngine::ForecastNodeWithIntervals(
    NodeId node, std::size_t horizon, double confidence) const {
  StopWatch watch;
  const SnapshotPtr snap = LoadSnapshot();
  F2DB_ASSIGN_OR_RETURN(
      DegradedForecast forecast,
      ForecastInternal(snap, node, horizon, /*want_variance=*/true));
  F2DB_ASSIGN_OR_RETURN(
      std::vector<ForecastInterval> intervals,
      IntervalsFromMoments(forecast.values, forecast.variances, confidence));
  CountDegradedRows(forecast.level, intervals.size());
  stats_.queries.Add();
  stats_.query_seconds.Add(watch.ElapsedSeconds());
  return intervals;
}

Result<DegradedForecast> F2dbEngine::ForecastInternal(
    const SnapshotPtr& snapshot, NodeId node, std::size_t horizon,
    bool want_variance, bool brownout) const {
  if (node >= snapshot->graph->num_nodes()) {
    return Status::OutOfRange("node id out of range");
  }
  return CombineScheme(snapshot, node, horizon, want_variance, brownout,
                       /*depth=*/0);
}

Result<DegradedForecast> F2dbEngine::CombineScheme(const SnapshotPtr& snapshot,
                                                   NodeId node,
                                                   std::size_t horizon,
                                                   bool want_variance,
                                                   bool brownout,
                                                   std::size_t depth) const {
  const std::vector<NodeId>& sources = snapshot->schemes[node];
  if (sources.empty()) {
    return Status::FailedPrecondition("no derivation scheme stored for node " +
                                      snapshot->graph->NodeName(node));
  }
  DegradedForecast out;
  out.values.assign(horizon, 0.0);
  if (want_variance) out.variances.assign(horizon, 0.0);
  for (NodeId source : sources) {
    F2DB_ASSIGN_OR_RETURN(
        DegradedForecast from_source,
        ForecastSource(snapshot, source, horizon, want_variance, brownout,
                       depth));
    for (std::size_t h = 0; h < horizon; ++h) {
      out.values[h] += from_source.values[h];
      if (want_variance) out.variances[h] += from_source.variances[h];
    }
    // Report the worst rung any source had to fall to.
    if (from_source.level > out.level) {
      out.level = from_source.level;
      out.reason = std::move(from_source.reason);
    }
  }
  const double weight = snapshot->Weight(sources, node);
  for (std::size_t h = 0; h < horizon; ++h) {
    out.values[h] *= weight;
    if (want_variance) out.variances[h] *= weight * weight;
  }
  return out;
}

Result<DegradedForecast> F2dbEngine::ForecastSource(const SnapshotPtr& snapshot,
                                                    NodeId source,
                                                    std::size_t horizon,
                                                    bool want_variance,
                                                    bool brownout,
                                                    std::size_t depth) const {
  const std::shared_ptr<const LiveModel> live = snapshot->FindModel(source);

  // Primary path: a valid published model.
  if (live != nullptr && !live->invalid) {
    return ForecastFromModel(*live->model, source, horizon, want_variance,
                             DegradationLevel::kNone, "");
  }

  std::string reason;
  if (live == nullptr) {
    // Previously a hard kInternal; now the first rung of the ladder.
    reason = "scheme source " + std::to_string(source) + " lost its model";
  } else {
    // Invalid entry: lazy re-estimation, copy-on-write — fit a fresh clone
    // on this snapshot's full stored history. The published (invalid)
    // entry is never mutated, so concurrent readers of `snapshot` are
    // unaffected. Quarantined or backing-off nodes skip the attempt, and
    // so do brownout queries: re-estimation is the expensive step the
    // serving layer sheds first under overload.
    if (brownout) {
      stats_.brownout_refits_skipped.Add();
      reason = "node " + std::to_string(source) +
               " re-estimation skipped under brownout";
    } else if (RefitAllowed(*live)) {
      StopWatch watch;
      std::unique_ptr<ForecastModel> refit = live->model->Clone();
      const Status fitted =
          failpoint::Triggered(kFailpointEngineRefit)
              ? failpoint::InjectedFailure(kFailpointEngineRefit)
              : refit->Fit(snapshot->graph->series(source));
      if (fitted.ok()) {
        auto fresh = std::make_shared<LiveModel>();
        fresh->model = std::shared_ptr<const ForecastModel>(std::move(refit));
        fresh->creation_seconds = live->creation_seconds;
        stats_.reestimates.Add();
        stats_.maintenance_seconds.Add(watch.ElapsedSeconds());
        const std::shared_ptr<const ForecastModel> model = fresh->model;
        OfferReestimate(source, live, std::move(fresh));
        return ForecastFromModel(*model, source, horizon, want_variance,
                                 DegradationLevel::kNone, "");
      }
      stats_.refit_failures.Add();
      OfferRefitFailure(source, live);
      reason = "re-estimation of node " + std::to_string(source) +
               " failed: " + fitted.message();
    } else if (live->quarantined) {
      reason = "node " + std::to_string(source) + " quarantined after " +
               std::to_string(live->refit_failures) +
               " failed re-estimations";
    } else {
      reason = "node " + std::to_string(source) +
               " inside re-estimation retry backoff";
    }

    // Rung 1: the stale pre-invalidation model. Its parameters are out of
    // date but its state was advanced through every insert, so it still
    // produces a usable forecast for this snapshot's frontier.
    if (live->model != nullptr && live->model->is_fitted()) {
      return ForecastFromModel(*live->model, source, horizon, want_variance,
                               DegradationLevel::kStaleModel,
                               reason + "; serving stale model");
    }
  }

  // Rung 2: recompute the source through its OWN stored derivation scheme
  // (bounded recursion; schemes that reference the source itself cannot
  // help and are skipped).
  if (depth < kMaxDerivationDepth) {
    const std::vector<NodeId>& scheme = snapshot->schemes[source];
    const bool refers_self =
        std::find(scheme.begin(), scheme.end(), source) != scheme.end();
    if (!scheme.empty() && !refers_self) {
      Result<DegradedForecast> derived =
          CombineScheme(snapshot, source, horizon, want_variance, brownout,
                        depth + 1);
      if (derived.ok()) {
        DegradedForecast out = std::move(derived).value();
        out.level = std::max(out.level, DegradationLevel::kDerivedFallback);
        out.reason = reason + "; served via the node's derivation scheme";
        return out;
      }
    }
  }

  // Rung 3: a drift model fit on the snapshot's stored history — always
  // cheap, needs no stored model, and supports variances.
  DriftModel drift;
  const Status drift_fitted = drift.Fit(snapshot->graph->series(source));
  if (drift_fitted.ok()) {
    return ForecastFromModel(drift, source, horizon, want_variance,
                             DegradationLevel::kNaiveFallback,
                             reason + "; serving naive drift fallback");
  }

  return Status::Unavailable("forecast unavailable for node " +
                             std::to_string(source) + ": " + reason +
                             "; drift fallback failed: " +
                             drift_fitted.message());
}

bool F2dbEngine::RefitAllowed(const LiveModel& live) const {
  if (live.quarantined) return false;
  if (live.refit_failures == 0) return true;
  if (options_.refit_retry_backoff_seconds <= 0.0) return true;
  const std::size_t exponent =
      std::min<std::size_t>(live.refit_failures - 1, 30);
  const double wait = options_.refit_retry_backoff_seconds *
                      static_cast<double>(std::size_t{1} << exponent);
  return uptime_.ElapsedSeconds() >= live.last_refit_attempt_seconds + wait;
}

void F2dbEngine::CountDegradedRows(DegradationLevel level,
                                   std::size_t rows) const {
  switch (level) {
    case DegradationLevel::kNone:
      break;
    case DegradationLevel::kStaleModel:
      stats_.degraded_rows_stale.Add(rows);
      break;
    case DegradationLevel::kDerivedFallback:
      stats_.degraded_rows_derived.Add(rows);
      break;
    case DegradationLevel::kNaiveFallback:
      stats_.degraded_rows_naive.Add(rows);
      break;
    case DegradationLevel::kUnavailable:
      break;  // surfaced as a status, never as rows
  }
}

void F2dbEngine::OfferReestimate(
    NodeId node, const std::shared_ptr<const LiveModel>& expected,
    std::shared_ptr<const LiveModel> fresh) const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const SnapshotPtr cur = LoadSnapshot();
  // Install only when the entry is still the one the refit started from;
  // if maintenance advanced the model meanwhile, the refit is stale for
  // the current state (but remains correct for the reader's snapshot).
  const auto it = cur->models.find(node);
  if (it == cur->models.end() || it->second != expected) return;
  // Log before publishing. If the append fails the refit simply is not
  // installed (the caller still serves its result once) — a degradation,
  // never a divergence between the log and the published state.
  if (!WalAppendLocked(
           WalRecord::ModelInstall(node, fresh->creation_seconds,
                                   ModelFactory::SerializeModel(*fresh->model)))
           .ok()) {
    return;
  }
  auto next = cur->CopyForWrite();
  next->models[node] = std::move(fresh);
  Publish(std::move(next));
}

void F2dbEngine::OfferRefitFailure(
    NodeId node, const std::shared_ptr<const LiveModel>& expected) const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const SnapshotPtr cur = LoadSnapshot();
  // Same identity check as OfferReestimate: record the failure only
  // against the entry the attempt actually ran on. If maintenance (or a
  // concurrent query's failure record) replaced it, this attempt's
  // outcome no longer describes the published state.
  const auto it = cur->models.find(node);
  if (it == cur->models.end() || it->second != expected) return;
  auto updated = std::make_shared<LiveModel>(*expected);
  updated->refit_failures = expected->refit_failures + 1;
  updated->last_refit_attempt_seconds = uptime_.ElapsedSeconds();
  if (options_.quarantine_after_refit_failures > 0 &&
      updated->refit_failures >= options_.quarantine_after_refit_failures &&
      !updated->quarantined) {
    // The quarantine TRANSITION is durable (plain failure-count bumps are
    // not: they reset to the last logged transition on recovery, which
    // only makes post-crash refits retry sooner). An append failure skips
    // the whole publication; the state stays unchanged and a later
    // attempt retries the transition.
    if (!WalAppendLocked(
             WalRecord::Quarantine(node, updated->refit_failures))
             .ok()) {
      return;
    }
    updated->quarantined = true;
    stats_.quarantines.Add();
  }
  auto next = cur->CopyForWrite();
  next->models[node] = std::move(updated);
  Publish(std::move(next));
}

Status F2dbEngine::InsertFact(const std::vector<std::string>& base_values,
                              std::int64_t time, double value) {
  const SnapshotPtr snap = LoadSnapshot();
  const CubeSchema& schema = snap->graph->schema();
  if (base_values.size() != schema.num_dimensions()) {
    return Status::InvalidArgument("need one level-0 value per dimension");
  }
  NodeAddress address;
  address.coords.resize(schema.num_dimensions());
  for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
    F2DB_ASSIGN_OR_RETURN(ValueIndex v,
                          schema.hierarchy(d).FindValue(0, base_values[d]));
    address.coords[d] = {0, v};
  }
  F2DB_ASSIGN_OR_RETURN(NodeId node, snap->graph->NodeFor(address));
  return InsertFact(node, time, value);
}

Status F2dbEngine::InsertFact(NodeId base_node, std::int64_t time,
                              double value) {
  F2DB_INJECT_FAILPOINT(kFailpointEngineInsert);
  return InsertFactImpl(base_node, time, value, /*log=*/true);
}

Status F2dbEngine::InsertFactImpl(NodeId base_node, std::int64_t time,
                                  double value, bool log) {
  // NaN/Inf would silently poison every aggregate above this cell and the
  // CSS/SSE recursions of every model that later updates on it.
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        "non-finite fact value for node " + std::to_string(base_node) +
        " at time " + std::to_string(time));
  }
  StopWatch watch;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const SnapshotPtr cur = LoadSnapshot();
  const auto slot = base_slot_.find(base_node);
  if (slot == base_slot_.end()) {
    return Status::InvalidArgument("not a base node: " +
                                   std::to_string(base_node));
  }
  const std::int64_t frontier =
      cur->graph->series(cur->graph->base_nodes()[0]).end_time();
  if (time < frontier) {
    return Status::OutOfRange("insert at time " + std::to_string(time) +
                              " is behind the stored frontier " +
                              std::to_string(frontier));
  }
  const auto existing = pending_.find(time);
  if (existing != pending_.end() &&
      existing->second[slot->second].has_value()) {
    return Status::AlreadyExists("duplicate insert for node " +
                                 cur->graph->NodeName(base_node) +
                                 " at time " + std::to_string(time));
  }
  // Every validation has passed: log, then mutate. A failed append (full
  // disk, failed fsync) rejects the insert with NOTHING buffered — the
  // WAL writer rolled its bytes back, so the caller's error and a future
  // recovery agree the fact does not exist.
  if (log) {
    F2DB_RETURN_IF_ERROR(
        WalAppendLocked(WalRecord::Insert(base_node, time, value)));
  }
  auto& batch = pending_[time];
  if (batch.empty()) batch.resize(cur->graph->num_base_nodes());
  batch[slot->second] = value;
  stats_.inserts.Add();
  const Status advanced = AdvanceWhileCompleteLocked();
  stats_.maintenance_seconds.Add(watch.ElapsedSeconds());
  return advanced;
}

std::size_t F2dbEngine::pending_inserts() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  std::size_t count = 0;
  for (const auto& [time, batch] : pending_) {
    for (const auto& v : batch) {
      if (v.has_value()) ++count;
    }
  }
  return count;
}

Status F2dbEngine::AdvanceWhileCompleteLocked() {
  const SnapshotPtr cur = LoadSnapshot();

  /// Writer-private clone of one model, advanced in place across the
  /// batched advances of this call and frozen into the next snapshot.
  struct PendingModel {
    NodeId node = 0;
    std::unique_ptr<ForecastModel> model;
    double creation_seconds = 0.0;
    bool invalid = false;
    std::size_t updates_since_estimate = 0;
  };

  std::shared_ptr<EngineSnapshot> next;     // successor under construction
  std::shared_ptr<TimeSeriesGraph> graph;   // writable copy of the data
  std::vector<PendingModel> models;
  std::size_t advances = 0;

  for (;;) {
    const TimeSeriesGraph& view = graph ? *graph : *cur->graph;
    const std::int64_t frontier =
        view.series(view.base_nodes()[0]).end_time();
    const auto it = pending_.find(frontier);
    if (it == pending_.end()) break;
    const auto& batch = it->second;
    const bool complete =
        std::all_of(batch.begin(), batch.end(),
                    [](const std::optional<double>& v) { return v.has_value(); });
    if (!complete) break;

    if (!next) {
      // First complete batch: start the copy-on-write successor. The graph
      // data is deep-copied once per publication, models are cloned once
      // and advanced privately.
      next = cur->CopyForWrite();
      graph = std::make_shared<TimeSeriesGraph>(*cur->graph);
      models.reserve(cur->models.size());
      for (const auto& [node, live] : cur->models) {
        PendingModel pending;
        pending.node = node;
        pending.model = live->model->Clone();
        pending.creation_seconds = live->creation_seconds;
        pending.invalid = live->invalid;
        pending.updates_since_estimate = live->updates_since_estimate;
        models.push_back(std::move(pending));
      }
    }

    // Advance the whole graph by one period (batched inserts, Section V).
    std::vector<double> values(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) values[i] = *batch[i];
    pending_.erase(it);
    F2DB_RETURN_IF_ERROR(graph->AdvanceTime(values));
    ++advances;

    // Incremental maintenance: history sums and model states. The model
    // updates are independent per model and fan out across the pool.
    for (NodeId node = 0; node < graph->num_nodes(); ++node) {
      const TimeSeries& series = graph->series(node);
      next->history_sums[node] += series[series.size() - 1];
    }
    const auto update_one = [&](std::size_t i) {
      PendingModel& pending = models[i];
      const TimeSeries& series = graph->series(pending.node);
      pending.model->Update(series[series.size() - 1]);
      ++pending.updates_since_estimate;
      if (options_.reestimate_after_updates > 0 &&
          pending.updates_since_estimate >= options_.reestimate_after_updates) {
        pending.invalid = true;  // re-estimated lazily on next query reference
      }
    };
    if (ThreadPool* pool = MaintenancePool()) {
      pool->ParallelFor(models.size(), update_one);
    } else {
      for (std::size_t i = 0; i < models.size(); ++i) update_one(i);
    }
  }

  if (advances == 0) return Status::OK();
  for (PendingModel& pending : models) {
    auto live = std::make_shared<LiveModel>();
    live->model = std::shared_ptr<const ForecastModel>(std::move(pending.model));
    live->creation_seconds = pending.creation_seconds;
    live->invalid = pending.invalid;
    live->updates_since_estimate = pending.updates_since_estimate;
    // Quarantine ends on data advance by construction: the fresh entries
    // keep the default refit_failures = 0 / quarantined = false, so the
    // next query referencing an invalid model retries the fit against the
    // new history.
    next->models[pending.node] = std::move(live);
  }
  next->graph = std::move(graph);
  stats_.time_advances.Add(advances);
  Publish(std::move(next));
  return Status::OK();
}

// --------------------------------------------------- durability internals

Status F2dbEngine::WalAppendLocked(const WalRecord& record) const {
  if (!wal_) return Status::OK();  // in-memory engine: nothing to log
  if (!wal_->open()) {
    return Status::Unavailable(
        "WAL writer is broken (an earlier fsync rollback failed); "
        "mutations are refused until the engine is reopened");
  }
  const std::uint64_t before = wal_->bytes_appended();
  F2DB_RETURN_IF_ERROR(wal_->Append(record));
  stats_.wal_records.Add();
  stats_.wal_bytes.Add(static_cast<std::size_t>(wal_->bytes_appended() - before));
  return Status::OK();
}

Status F2dbEngine::ApplyCheckpointState(CheckpointState&& state,
                                        const storage::ManifestData* manifest) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const SnapshotPtr cur = LoadSnapshot();

  // Replace the base fact data wholesale and rebuild the aggregates
  // bottom-up — BuildAggregates and AdvanceTime share the same child
  // summation order, so the rebuilt aggregates are bit-identical to what
  // the pre-crash process computed incrementally.
  auto graph = std::make_shared<TimeSeriesGraph>(*cur->graph);
  for (auto& [node, values] : state.base_series) {
    if (node >= graph->num_nodes()) {
      return Status::Internal("checkpoint references unknown base node " +
                              std::to_string(node));
    }
    F2DB_RETURN_IF_ERROR(graph->SetBaseSeries(
        node, TimeSeries(std::move(values), state.base_start_time)));
  }
  F2DB_RETURN_IF_ERROR(graph->BuildAggregates());

  auto next = cur->CopyForWrite();
  next->graph = graph;
  for (NodeId node = 0; node < graph->num_nodes(); ++node) {
    next->history_sums[node] = graph->series(node).Sum();
  }
  // The checkpointed series start where retention left them: the sums of
  // the forgotten prefix live in the manifest's offsets and must be folded
  // back in so derivation weights stay exact.
  if (manifest != nullptr && !manifest->offsets.empty()) {
    std::vector<double> base_offsets(graph->num_base_nodes(), 0.0);
    for (const auto& [node, offset] : manifest->offsets) {
      const auto slot = base_slot_.find(node);
      if (slot == base_slot_.end()) {
        return Status::Internal(
            "manifest offset references non-base node " +
            std::to_string(node));
      }
      base_offsets[slot->second] = offset;
    }
    F2DB_ASSIGN_OR_RETURN(std::vector<double> node_offsets,
                          graph->AggregateBaseScalars(base_offsets));
    for (NodeId node = 0; node < graph->num_nodes(); ++node) {
      next->history_sums[node] += node_offsets[node];
    }
  }
  for (auto& scheme : next->schemes) scheme.clear();
  for (auto& [target, sources] : state.schemes) {
    if (target >= graph->num_nodes()) {
      return Status::Internal("checkpoint scheme references unknown node " +
                              std::to_string(target));
    }
    next->schemes[target] = std::move(sources);
  }
  next->models.clear();
  for (CheckpointModel& model : state.models) {
    if (model.node >= graph->num_nodes()) {
      return Status::Internal("checkpoint model references unknown node " +
                              std::to_string(model.node));
    }
    F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> restored,
                          ModelFactory::DeserializeModel(model.payload));
    auto live = std::make_shared<LiveModel>();
    live->model = std::shared_ptr<const ForecastModel>(std::move(restored));
    live->creation_seconds = model.creation_seconds;
    live->invalid = model.invalid;
    live->updates_since_estimate = model.updates_since_estimate;
    live->refit_failures = model.refit_failures;
    live->quarantined = model.quarantined;
    next->models[model.node] = std::move(live);
  }

  pending_.clear();
  for (const auto& [time, slot, value] : state.pending) {
    auto& batch = pending_[time];
    if (batch.empty()) batch.resize(graph->num_base_nodes());
    if (slot >= batch.size()) {
      return Status::Internal("checkpoint pending slot out of range");
    }
    batch[slot] = value;
  }

  // Restore the maintenance counters so post-recovery stats continue the
  // pre-crash process's sequence (WAL replay then stacks on top).
  stats_.inserts.Add(state.inserts);
  stats_.time_advances.Add(state.time_advances);
  stats_.reestimates.Add(state.reestimates);
  stats_.quarantines.Add(state.quarantines);
  stats_.refit_failures.Add(state.refit_failures);

  Publish(std::move(next));
  return Status::OK();
}

Status F2dbEngine::ApplyWalRecord(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kInsert: {
      const Status applied = InsertFactImpl(record.node, record.time,
                                            record.value, /*log=*/false);
      // Compaction rewrites the pending inserts into the fresh epoch; a
      // crash between the WAL rotation and the manifest commit leaves both
      // the original record (in a still-undeleted old epoch) and the
      // rewritten copy on disk. Replay applies the first occurrence and
      // skips the duplicate — as AlreadyExists when the batch is still
      // pending, as OutOfRange when it already advanced the frontier.
      if (applied.code() == StatusCode::kAlreadyExists ||
          applied.code() == StatusCode::kOutOfRange) {
        return Status::OK();
      }
      return applied;
    }
    case WalRecord::Kind::kCatalog: {
      ConfigurationCatalog catalog;
      F2DB_RETURN_IF_ERROR(catalog.ParseFromString(record.payload));
      return LoadCatalogImpl(catalog, /*log=*/false);
    }
    case WalRecord::Kind::kModelInstall: {
      F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> model,
                            ModelFactory::DeserializeModel(record.payload));
      std::lock_guard<std::mutex> lock(writer_mutex_);
      const SnapshotPtr cur = LoadSnapshot();
      if (record.node >= cur->graph->num_nodes()) {
        return Status::Internal("model install references unknown node " +
                                std::to_string(record.node));
      }
      auto live = std::make_shared<LiveModel>();
      live->model = std::shared_ptr<const ForecastModel>(std::move(model));
      live->creation_seconds = record.value;
      auto next = cur->CopyForWrite();
      next->models[record.node] = std::move(live);
      Publish(std::move(next));
      return Status::OK();
    }
    case WalRecord::Kind::kQuarantine: {
      std::lock_guard<std::mutex> lock(writer_mutex_);
      const SnapshotPtr cur = LoadSnapshot();
      const auto it = cur->models.find(record.node);
      // A later record may have replaced the entry the transition applied
      // to (catalog reload); the transition is then moot.
      if (it == cur->models.end()) return Status::OK();
      auto updated = std::make_shared<LiveModel>(*it->second);
      updated->refit_failures = record.count;
      updated->quarantined = true;
      auto next = cur->CopyForWrite();
      next->models[record.node] = std::move(updated);
      Publish(std::move(next));
      stats_.quarantines.Add();
      return Status::OK();
    }
  }
  return Status::Internal("unknown WAL record kind " +
                          std::to_string(static_cast<int>(record.kind)));
}

CheckpointState F2dbEngine::BuildCheckpointStateLocked(
    const SnapshotPtr& snap, std::uint64_t wal_epoch) const {
  CheckpointState state;
  state.wal_epoch = wal_epoch;
  state.inserts = stats_.inserts.Load();
  state.time_advances = stats_.time_advances.Load();
  state.reestimates = stats_.reestimates.Load();
  state.quarantines = stats_.quarantines.Load();
  state.refit_failures = stats_.refit_failures.Load();

  const TimeSeriesGraph& graph = *snap->graph;
  if (graph.num_base_nodes() > 0) {
    state.base_start_time = graph.series(graph.base_nodes()[0]).start_time();
  }
  state.base_series.reserve(graph.num_base_nodes());
  for (NodeId node : graph.base_nodes()) {
    state.base_series.emplace_back(node, graph.series(node).values());
  }
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    if (!snap->schemes[node].empty()) {
      state.schemes.emplace_back(node, snap->schemes[node]);
    }
  }
  state.models.reserve(snap->models.size());
  for (const auto& [node, live] : snap->models) {
    CheckpointModel model;
    model.node = node;
    model.invalid = live->invalid;
    model.updates_since_estimate = live->updates_since_estimate;
    model.refit_failures = live->refit_failures;
    model.quarantined = live->quarantined;
    model.creation_seconds = live->creation_seconds;
    model.payload = ModelFactory::SerializeModel(*live->model);
    state.models.push_back(std::move(model));
  }
  std::sort(state.models.begin(), state.models.end(),
            [](const CheckpointModel& a, const CheckpointModel& b) {
              return a.node < b.node;
            });
  for (const auto& [time, batch] : pending_) {
    for (std::size_t slot = 0; slot < batch.size(); ++slot) {
      if (batch[slot].has_value()) {
        state.pending.emplace_back(time, slot, *batch[slot]);
      }
    }
  }
  return state;
}

Status F2dbEngine::CheckpointNow() {
  if (!durable()) {
    return Status::FailedPrecondition(
        "checkpoint requires a durable engine (open with a data_dir)");
  }
  // Exclude whole compactions (ordered before writer_mutex_): without
  // this, a checkpoint could snapshot the still-undropped series between
  // a retention manifest commit and the in-memory drop — recovery would
  // then add the pruned offsets to the full series sum, double-counting
  // the retained prefix in every derivation weight.
  std::lock_guard<std::mutex> serial(compaction_serial_mutex_);
  CheckpointState state;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    if (!wal_->open()) {
      stats_.checkpoint_failures.Add();
      return Status::Unavailable("WAL writer is broken; cannot rotate");
    }
    // Rotate first: everything logged so far lands in segments the
    // checkpoint will cover, everything after this point lands in the new
    // epoch the checkpoint tells recovery to replay. Rotation failure
    // aborts the checkpoint with the old writer still active.
    F2DB_RETURN_IF_ERROR(wal_->Sync());
    auto rotated =
        WalWriter::Create(options_.data_dir, wal_->epoch() + 1,
                          options_.fsync_policy, options_.wal_batch_records);
    if (!rotated.ok()) {
      stats_.checkpoint_failures.Add();
      return rotated.status();
    }
    wal_->Close();
    *wal_ = std::move(rotated.value());
    state = BuildCheckpointStateLocked(LoadSnapshot(), wal_->epoch());
  }
  // Serialization and IO run OFF the writer lock: the state references
  // only copies and the immutable pinned snapshot, so maintenance and
  // queries proceed while the checkpoint hits disk.
  const Status written = WriteCheckpoint(options_.data_dir, state);
  if (!written.ok()) {
    // Both the old checkpoint and every WAL segment survive; recovery
    // replays across the epoch boundary as if no checkpoint was attempted.
    stats_.checkpoint_failures.Add();
    return written;
  }
  // The checkpoint is durable — segments below its epoch are redundant.
  // A failed unlink merely leaves a stale segment for the next recovery
  // (or checkpoint) to clean up.
  auto epochs = ListWalEpochs(options_.data_dir);
  if (epochs.ok()) {
    for (const std::uint64_t epoch : epochs.value()) {
      if (epoch < state.wal_epoch) {
        ::unlink(WalPath(options_.data_dir, epoch).c_str());
      }
    }
  }
  stats_.checkpoints_completed.Add();
  last_checkpoint_seconds_.store(uptime_.ElapsedSeconds(),
                                 std::memory_order_relaxed);
  return Status::OK();
}

void F2dbEngine::CheckpointLoop() {
  const auto interval =
      std::chrono::duration<double>(options_.checkpoint_interval_seconds);
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  while (!stopping_) {
    if (checkpoint_cv_.wait_for(lock, interval,
                                [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    const Status status = CheckpointNow();
    if (!status.ok()) {
      F2DB_LOG(kWarning) << "background checkpoint failed: "
                         << status.message();
    }
    lock.lock();
  }
}

// ------------------------------------------------------ storage lifecycle

Status F2dbEngine::ApplySegmentState(const storage::ManifestData& manifest,
                                     std::vector<storage::SegmentData>&& chain) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const SnapshotPtr cur = LoadSnapshot();
  auto graph = std::make_shared<TimeSeriesGraph>(*cur->graph);

  if (!chain.empty()) {
    // Bulk load: concatenate each base series across the (validated,
    // contiguous) chain, install it wholesale, and rebuild every
    // aggregate once — instead of re-running maintenance per record.
    const std::size_t num_series = chain.front().series.size();
    if (num_series != graph->num_base_nodes()) {
      return Status::Internal(
          "segment chain holds " + std::to_string(num_series) +
          " series but the cube has " +
          std::to_string(graph->num_base_nodes()) + " base nodes");
    }
    const std::int64_t start = chain.front().start_time;
    for (std::size_t s = 0; s < num_series; ++s) {
      const NodeId node = chain.front().series[s].node;
      if (node >= graph->num_nodes()) {
        return Status::Internal("segment references unknown node " +
                                std::to_string(node));
      }
      std::size_t total = 0;
      for (const storage::SegmentData& segment : chain) {
        total += segment.series[s].values.size();
      }
      std::vector<double> values;
      values.reserve(total);
      for (const storage::SegmentData& segment : chain) {
        values.insert(values.end(), segment.series[s].values.begin(),
                      segment.series[s].values.end());
      }
      F2DB_RETURN_IF_ERROR(
          graph->SetBaseSeries(node, TimeSeries(std::move(values), start)));
    }
    F2DB_RETURN_IF_ERROR(graph->BuildAggregates());
  }

  auto next = cur->CopyForWrite();
  next->graph = graph;
  // History sums = retained history + the retention offsets rolled up the
  // aggregation structure (Sum() alone misses what retention deleted).
  std::vector<double> base_offsets(graph->num_base_nodes(), 0.0);
  for (const auto& [node, offset] : manifest.offsets) {
    const auto slot = base_slot_.find(node);
    if (slot == base_slot_.end()) {
      return Status::Internal("manifest offset references non-base node " +
                              std::to_string(node));
    }
    base_offsets[slot->second] = offset;
  }
  F2DB_ASSIGN_OR_RETURN(std::vector<double> node_offsets,
                        graph->AggregateBaseScalars(base_offsets));
  for (NodeId node = 0; node < graph->num_nodes(); ++node) {
    next->history_sums[node] = graph->series(node).Sum() + node_offsets[node];
  }

  // Configuration, quarantine flags, and the pending buffer arrive via
  // the rewritten records at the head of the manifest's WAL epoch.
  for (auto& scheme : next->schemes) scheme.clear();
  next->models.clear();
  pending_.clear();

  // Restore the maintenance counters so post-recovery stats continue the
  // pre-crash sequence (the rewritten tail replay then stacks on top).
  stats_.inserts.Add(manifest.inserts);
  stats_.time_advances.Add(manifest.time_advances);
  stats_.reestimates.Add(manifest.reestimates);
  stats_.quarantines.Add(manifest.quarantines);
  stats_.refit_failures.Add(manifest.refit_failures);

  Publish(std::move(next));
  return Status::OK();
}

Status F2dbEngine::CompactNow() {
  if (!durable()) {
    return Status::FailedPrecondition(
        "compaction requires a durable engine (open with a data_dir)");
  }
  std::lock_guard<std::mutex> serial(compaction_serial_mutex_);

  const Status status = [&]() -> Status {
    const bool has_base = store_->has_manifest();
    storage::ManifestData base = store_->manifest();
    // When recovery fell back because the sealed chain failed validation,
    // extending that chain would commit a higher-epoch manifest over the
    // invalid segments and then delete the WAL epochs the fallback still
    // needs — the next restart would lose acknowledged writes. Instead,
    // reseal the full retained history from memory into a fresh chain
    // (offsets and drop counters survive) and truncate only once that
    // chain is durable.
    const bool reseal = reseal_segments_;
    std::vector<storage::ManifestSegment> invalid_chain;
    if (reseal) {
      invalid_chain = std::move(base.segments);
      base.segments.clear();
    }

    // ---- Phase A, under the writer lock: rotate the WAL and rewrite the
    // live tail into the fresh epoch. After the manifest commits, replay
    // starts HERE — these records carry everything the sealed history
    // does not: the configuration, every quarantine transition, and the
    // pending insert buffer.
    SnapshotPtr snap;
    std::uint64_t new_epoch = 0;
    std::int64_t sealed_from = 0;
    std::int64_t sealed_to = 0;
    storage::ManifestData next;
    {
      std::lock_guard<std::mutex> lock(writer_mutex_);
      if (!wal_->open()) {
        return Status::Unavailable("WAL writer is broken; cannot rotate");
      }
      F2DB_RETURN_IF_ERROR(wal_->Sync());
      auto rotated = WalWriter::Create(options_.data_dir, wal_->epoch() + 1,
                                       options_.fsync_policy,
                                       options_.wal_batch_records);
      if (!rotated.ok()) return rotated.status();
      wal_->Close();
      *wal_ = std::move(rotated.value());
      new_epoch = wal_->epoch();

      snap = LoadSnapshot();
      bool any_scheme = false;
      for (const auto& scheme : snap->schemes) {
        if (!scheme.empty()) {
          any_scheme = true;
          break;
        }
      }
      if (!snap->models.empty() || any_scheme) {
        F2DB_RETURN_IF_ERROR(WalAppendLocked(WalRecord::Catalog(
            CatalogFromSnapshot(*snap).SerializeToString())));
      }
      std::vector<std::pair<NodeId, std::uint64_t>> quarantined;
      for (const auto& [node, live] : snap->models) {
        if (live->quarantined) quarantined.emplace_back(node, live->refit_failures);
      }
      std::sort(quarantined.begin(), quarantined.end());
      for (const auto& [node, failures] : quarantined) {
        F2DB_RETURN_IF_ERROR(
            WalAppendLocked(WalRecord::Quarantine(node, failures)));
      }
      std::uint64_t pending_count = 0;
      const std::vector<NodeId>& base_nodes = snap->graph->base_nodes();
      for (const auto& [time, batch] : pending_) {
        for (std::size_t slot = 0; slot < batch.size(); ++slot) {
          if (batch[slot].has_value()) {
            F2DB_RETURN_IF_ERROR(WalAppendLocked(
                WalRecord::Insert(base_nodes[slot], time, *batch[slot])));
            ++pending_count;
          }
        }
      }
      F2DB_RETURN_IF_ERROR(wal_->Sync());
      F2DB_RETURN_IF_ERROR(SyncDirectory(options_.data_dir));

      // The cut: everything strictly before the frontier is closed (its
      // batches completed) and gets sealed; [sealed_from, sealed_to).
      const TimeSeries& first = snap->graph->series(base_nodes[0]);
      sealed_from =
          (has_base && !reseal) ? base.sealed_to : first.start_time();
      sealed_to = first.end_time();

      next.wal_epoch = new_epoch;
      next.sealed_from = has_base ? base.sealed_from : sealed_from;
      next.sealed_to = sealed_to;
      // Counters at the cut: replay of the rewritten tail re-adds the
      // pending inserts and quarantine transitions, so subtract them.
      next.inserts = stats_.inserts.Load() - pending_count;
      next.time_advances = stats_.time_advances.Load();
      next.reestimates = stats_.reestimates.Load();
      next.quarantines = stats_.quarantines.Load() - quarantined.size();
      next.refit_failures = stats_.refit_failures.Load();
      next.records_dropped = base.records_dropped;
      next.offsets = base.offsets;
      next.segments = base.segments;
    }

    // ---- Phase B, off the writer lock: seal, commit, truncate. The
    // manifest rename is the commit point — until it lands, recovery uses
    // the previous artifact and the old (still-undeleted) WAL epochs.
    const std::uint64_t count =
        static_cast<std::uint64_t>(sealed_to - sealed_from);
    if (count > 0) {
      storage::SegmentData segment;
      segment.seq = store_->next_seq();
      segment.start_time = sealed_from;
      segment.count = count;
      const std::vector<NodeId>& base_nodes = snap->graph->base_nodes();
      segment.series.reserve(base_nodes.size());
      for (NodeId node : base_nodes) {
        const TimeSeries& series = snap->graph->series(node);
        if (series.start_time() > sealed_from) {
          return Status::Internal(
              "series history no longer covers the seal range");
        }
        const std::size_t begin =
            static_cast<std::size_t>(sealed_from - series.start_time());
        storage::SegmentSeries out;
        out.node = node;
        out.values.assign(
            series.values().begin() + static_cast<std::ptrdiff_t>(begin),
            series.values().begin() +
                static_cast<std::ptrdiff_t>(begin + count));
        segment.series.push_back(std::move(out));
      }
      F2DB_ASSIGN_OR_RETURN(const std::uint64_t bytes,
                            store_->WriteSegment(segment));
      storage::ManifestSegment entry;
      entry.seq = segment.seq;
      entry.start_time = segment.start_time;
      entry.count = segment.count;
      entry.num_series = static_cast<std::uint32_t>(segment.series.size());
      entry.bytes = bytes;
      next.segments.push_back(entry);
    }
    F2DB_RETURN_IF_ERROR(store_->CommitManifest(next));
    if (reseal) {
      // The fresh chain is durable and the manifest no longer references
      // the invalidated segments; their files can go (best effort — the
      // next store open sweeps unreferenced leftovers anyway).
      for (const storage::ManifestSegment& seg : invalid_chain) {
        (void)store_->DeleteSegmentFile(seg.seq);
      }
      reseal_segments_ = false;
    }
    if (count > 0) {
      stats_.segments_sealed.Add();
      stats_.segment_records_sealed.Add(static_cast<std::size_t>(
          count * snap->graph->num_base_nodes()));
    }
    storage::FireStorageCrashHook("before_wal_delete");
    // The manifest is durable — WAL epochs below its epoch are redundant.
    // A failed unlink merely leaves a stale segment for the next recovery
    // (or compaction) to clean up.
    auto epochs = ListWalEpochs(options_.data_dir);
    if (epochs.ok()) {
      for (const std::uint64_t epoch : epochs.value()) {
        if (epoch < new_epoch) {
          ::unlink(WalPath(options_.data_dir, epoch).c_str());
        }
      }
    }
    stats_.compactions_completed.Add();

    // ---- Phase C: retention. Whole segments entirely older than the
    // window are dropped — their per-series sums fold into the manifest
    // offsets (keeping history sums, and with them derivation weights,
    // exact), the pruned manifest commits, and only then do the files go.
    // The newest segment always survives so the chain stays anchored.
    if (options_.retention_window == 0 || next.segments.size() < 2) {
      return Status::OK();
    }
    const std::int64_t cutoff =
        sealed_to - static_cast<std::int64_t>(options_.retention_window);
    std::vector<storage::ManifestSegment> doomed;
    std::vector<storage::ManifestSegment> kept;
    for (std::size_t i = 0; i < next.segments.size(); ++i) {
      const storage::ManifestSegment& seg = next.segments[i];
      const bool last = (i + 1 == next.segments.size());
      if (!last &&
          seg.start_time + static_cast<std::int64_t>(seg.count) <= cutoff) {
        doomed.push_back(seg);
      } else {
        kept.push_back(seg);
      }
    }
    if (doomed.empty()) return Status::OK();

    std::map<std::uint32_t, double> offset_map(next.offsets.begin(),
                                               next.offsets.end());
    std::uint64_t dropped_records = 0;
    for (const storage::ManifestSegment& seg : doomed) {
      // Decode the doomed file to accumulate the exact sums being
      // forgotten — the values on disk, not a re-derivation.
      F2DB_ASSIGN_OR_RETURN(
          const storage::SegmentData data,
          storage::ReadSegmentFile(storage::SegmentPath(
              storage::SegmentsDirFor(options_.data_dir), seg.seq)));
      for (const storage::SegmentSeries& series : data.series) {
        double sum = 0.0;
        for (const double v : series.values) sum += v;
        offset_map[series.node] += sum;
      }
      dropped_records += seg.count * seg.num_series;
    }
    storage::ManifestData pruned = next;
    pruned.segments = kept;
    pruned.records_dropped += dropped_records;
    pruned.offsets.assign(offset_map.begin(), offset_map.end());
    F2DB_RETURN_IF_ERROR(store_->CommitManifest(pruned));
    for (const storage::ManifestSegment& seg : doomed) {
      F2DB_RETURN_IF_ERROR(store_->DeleteSegmentFile(seg.seq));
    }
    stats_.retention_segments_deleted.Add(doomed.size());
    stats_.retention_records_dropped.Add(
        static_cast<std::size_t>(dropped_records));

    // In-memory half: forget the same prefix from every series, base and
    // aggregate alike. History sums stay untouched — the offsets now
    // carry the forgotten mass. No checkpoint can land between the pruned
    // manifest commit above and this drop: CheckpointNow serializes on
    // compaction_serial_mutex_, so it never snapshots undropped series
    // alongside the pruned offsets (which would double-count on recovery).
    const std::int64_t new_start = kept.front().start_time;
    {
      std::lock_guard<std::mutex> lock(writer_mutex_);
      const SnapshotPtr cur = LoadSnapshot();
      const TimeSeries& first =
          cur->graph->series(cur->graph->base_nodes()[0]);
      if (first.start_time() < new_start) {
        auto graph = std::make_shared<TimeSeriesGraph>(*cur->graph);
        F2DB_RETURN_IF_ERROR(graph->DropHistoryBefore(new_start));
        auto updated = cur->CopyForWrite();
        updated->graph = std::move(graph);
        Publish(std::move(updated));
      }
    }
    return Status::OK();
  }();

  if (!status.ok()) stats_.compaction_failures.Add();
  return status;
}

void F2dbEngine::CompactionLoop() {
  const auto interval =
      std::chrono::duration<double>(options_.compaction_interval_seconds);
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  while (!stopping_) {
    if (checkpoint_cv_.wait_for(lock, interval,
                                [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    const Status status = CompactNow();
    if (!status.ok()) {
      F2DB_LOG(kWarning) << "background compaction failed: "
                         << status.message();
    }
    lock.lock();
  }
}

}  // namespace f2db
