#include "engine/recovery.h"

#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/store.h"

namespace f2db {
namespace {

/// Creates `dir` when missing. Parent directories must already exist — a
/// data directory is configured explicitly, not discovered.
Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::Unavailable("cannot create data directory " + dir + ": " +
                             ::strerror(errno));
}

}  // namespace

Result<RecoveryInfo> RunRecovery(const std::string& data_dir,
                                 const RecoveryCallbacks& callbacks) {
  const StopWatch watch;
  RecoveryInfo info;

  Status status = EnsureDirectory(data_dir);
  if (!status.ok()) return status;

  // Phase 1: the durable artifacts. kNotFound means a fresh directory; a
  // checkpoint that fails its CRC/version check aborts recovery, while an
  // unreadable manifest only disables the segment fast path (WAL epochs
  // are deleted strictly after a manifest commit, so the checkpoint + WAL
  // still cover everything the manifest would have).
  std::optional<CheckpointState> checkpoint;
  auto checkpoint_result = LoadCheckpoint(data_dir);
  if (checkpoint_result.ok()) {
    checkpoint = std::move(checkpoint_result.value());
  } else if (checkpoint_result.status().code() != StatusCode::kNotFound) {
    return checkpoint_result.status();
  }

  const std::string segments_dir = storage::SegmentsDirFor(data_dir);
  std::optional<storage::ManifestData> manifest;
  auto manifest_result = storage::ReadManifestFile(segments_dir);
  if (manifest_result.ok()) {
    manifest = std::move(manifest_result.value());
  } else if (manifest_result.status().code() != StatusCode::kNotFound) {
    info.segment_fallback = true;
    F2DB_LOG(kWarning) << "recovery: segment manifest unreadable ("
                       << manifest_result.status().ToString()
                       << "); falling back to checkpoint + WAL replay";
  }

  // Phase 2: pick the base artifact — the one whose state extends to the
  // strictly higher WAL epoch. A winning manifest bulk-loads history from
  // the sealed segment chain; when the chain fails validation (the
  // half-written-segment crash case) fall back to the checkpoint, whose
  // WAL epochs still exist as long as no later artifact truncated them.
  // segment_fallback tells the engine so its next compaction RESEALS the
  // chain from memory instead of extending the invalid one — extending
  // would truncate exactly the epochs this fallback depends on.
  std::uint64_t replay_from_epoch = 1;
  bool segment_base = false;
  std::vector<storage::SegmentData> chain;
  if (manifest.has_value() &&
      (!checkpoint.has_value() ||
       manifest->wal_epoch > checkpoint->wal_epoch)) {
    auto chain_result = storage::ReadSegmentChain(segments_dir, *manifest);
    if (chain_result.ok()) {
      segment_base = true;
      chain = std::move(chain_result.value());
    } else {
      info.segment_fallback = true;
      F2DB_LOG(kWarning) << "recovery: sealed segment chain invalid ("
                         << chain_result.status().ToString()
                         << "); falling back to checkpoint + WAL replay";
    }
  }

  if (segment_base) {
    replay_from_epoch = manifest->wal_epoch;
    info.segments_loaded = chain.size();
    for (const storage::SegmentData& segment : chain) {
      info.segment_records_loaded +=
          segment.count * static_cast<std::uint64_t>(segment.series.size());
    }
    if (callbacks.apply_segments) {
      status = callbacks.apply_segments(*manifest, std::move(chain));
      if (!status.ok()) return status;
    }
  } else if (checkpoint.has_value()) {
    info.checkpoint_loaded = true;
    replay_from_epoch = checkpoint->wal_epoch;
    if (callbacks.apply_checkpoint) {
      status = callbacks.apply_checkpoint(
          std::move(*checkpoint),
          manifest.has_value() ? &manifest.value() : nullptr);
      if (!status.ok()) return status;
    }
  }

  // Phase 3: the WAL segments. Epochs older than the base artifact's are
  // fully covered by it — a previous crash interrupted their deletion, so
  // finish the job here.
  auto epochs_result = ListWalEpochs(data_dir);
  if (!epochs_result.ok()) return epochs_result.status();
  std::vector<std::uint64_t> epochs;
  for (const std::uint64_t epoch : epochs_result.value()) {
    if (epoch < replay_from_epoch) {
      const std::string stale = WalPath(data_dir, epoch);
      if (::unlink(stale.c_str()) != 0 && errno != ENOENT) {
        return Status::Unavailable("cannot delete stale WAL segment " + stale +
                                   ": " + ::strerror(errno));
      }
      continue;
    }
    epochs.push_back(epoch);
  }

  if (epochs.empty()) {
    if (segment_base) {
      // Compaction rewrites the live tail (catalog, quarantine flags,
      // pending inserts) into the manifest's epoch BEFORE committing the
      // manifest, and the manifest commit happens before any deletion —
      // so this epoch must exist. Losing it means losing acknowledged
      // state: fail loudly instead of starting silently wrong.
      return Status::Internal(
          "segment manifest references WAL epoch " +
          std::to_string(replay_from_epoch) +
          " but no WAL segment file exists — log history is damaged");
    }
    // Fresh directory, or a checkpoint whose successor segment was never
    // created before the crash: start a new segment at the replay epoch.
    info.append_epoch = replay_from_epoch;
    info.append_valid_bytes = 0;
    info.create_segment = true;
    info.recovery_seconds = watch.ElapsedSeconds();
    return info;
  }

  // Phase 4: replay, oldest epoch first. Rotation bumps epochs one at a
  // time and deletion only runs after a durable checkpoint or manifest,
  // so a missing leading epoch or a gap in the sequence means a segment
  // (= history) went missing.
  if (epochs.front() != replay_from_epoch) {
    return Status::Internal(
        "WAL history is missing: replay must start at epoch " +
        std::to_string(replay_from_epoch) + " but the oldest segment is " +
        std::to_string(epochs.front()));
  }
  for (std::size_t i = 0; i + 1 < epochs.size(); ++i) {
    if (epochs[i + 1] != epochs[i] + 1) {
      return Status::Internal(
          "WAL epoch gap: segment " + std::to_string(epochs[i] + 1) +
          " is missing (have " + std::to_string(epochs[i]) + " and " +
          std::to_string(epochs[i + 1]) + ")");
    }
  }
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const bool last_segment = (i + 1 == epochs.size());
    auto segment = ReadWalSegment(WalPath(data_dir, epochs[i]));
    if (!segment.ok()) return segment.status();
    if (segment.value().torn_tail && !last_segment) {
      // Only the newest segment can legitimately end mid-record; a tear in
      // an older one means records after it were acknowledged and lost.
      return Status::Internal("torn record inside non-final WAL segment " +
                              WalPath(data_dir, epochs[i]) +
                              " — log history is damaged");
    }
    for (const WalRecord& record : segment.value().records) {
      if (callbacks.apply_record) {
        status = callbacks.apply_record(record);
        if (!status.ok()) return status;
      }
      ++info.records_replayed;
    }
    if (last_segment) {
      info.torn_tail_detected = segment.value().torn_tail;
      info.append_epoch = epochs[i];
      info.append_valid_bytes = segment.value().valid_bytes;
      info.create_segment = false;
    }
  }

  info.recovery_seconds = watch.ElapsedSeconds();
  return info;
}

}  // namespace f2db
