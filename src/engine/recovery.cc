#include "engine/recovery.h"

#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "common/stopwatch.h"

namespace f2db {
namespace {

/// Creates `dir` when missing. Parent directories must already exist — a
/// data directory is configured explicitly, not discovered.
Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::Unavailable("cannot create data directory " + dir + ": " +
                             ::strerror(errno));
}

}  // namespace

Result<RecoveryInfo> RunRecovery(const std::string& data_dir,
                                 const RecoveryCallbacks& callbacks) {
  const StopWatch watch;
  RecoveryInfo info;

  Status status = EnsureDirectory(data_dir);
  if (!status.ok()) return status;

  // Phase 1: the checkpoint. kNotFound means a fresh directory; any other
  // failure (CRC mismatch, version drift, unreadable file) aborts recovery.
  std::uint64_t replay_from_epoch = 1;
  auto checkpoint = LoadCheckpoint(data_dir);
  if (checkpoint.ok()) {
    info.checkpoint_loaded = true;
    replay_from_epoch = checkpoint.value().wal_epoch;
    if (callbacks.apply_checkpoint) {
      status = callbacks.apply_checkpoint(std::move(checkpoint.value()));
      if (!status.ok()) return status;
    }
  } else if (checkpoint.status().code() != StatusCode::kNotFound) {
    return checkpoint.status();
  }

  // Phase 2: the WAL segments. Segments older than the checkpoint's epoch
  // are fully covered by it — a previous crash interrupted their deletion,
  // so finish the job here.
  auto epochs_result = ListWalEpochs(data_dir);
  if (!epochs_result.ok()) return epochs_result.status();
  std::vector<std::uint64_t> epochs;
  for (const std::uint64_t epoch : epochs_result.value()) {
    if (epoch < replay_from_epoch) {
      const std::string stale = WalPath(data_dir, epoch);
      if (::unlink(stale.c_str()) != 0 && errno != ENOENT) {
        return Status::Unavailable("cannot delete stale WAL segment " + stale +
                                   ": " + ::strerror(errno));
      }
      continue;
    }
    epochs.push_back(epoch);
  }

  if (epochs.empty()) {
    // Fresh directory, or a checkpoint whose successor segment was never
    // created before the crash: start a new segment at the replay epoch.
    info.append_epoch = replay_from_epoch;
    info.append_valid_bytes = 0;
    info.create_segment = true;
    info.recovery_seconds = watch.ElapsedSeconds();
    return info;
  }

  // Phase 3: replay, oldest epoch first. Rotation bumps epochs one at a
  // time and deletion only runs after a durable checkpoint, so a gap in
  // the sequence means a segment (= history) went missing.
  for (std::size_t i = 0; i + 1 < epochs.size(); ++i) {
    if (epochs[i + 1] != epochs[i] + 1) {
      return Status::Internal(
          "WAL epoch gap: segment " + std::to_string(epochs[i] + 1) +
          " is missing (have " + std::to_string(epochs[i]) + " and " +
          std::to_string(epochs[i + 1]) + ")");
    }
  }
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const bool last_segment = (i + 1 == epochs.size());
    auto segment = ReadWalSegment(WalPath(data_dir, epochs[i]));
    if (!segment.ok()) return segment.status();
    if (segment.value().torn_tail && !last_segment) {
      // Only the newest segment can legitimately end mid-record; a tear in
      // an older one means records after it were acknowledged and lost.
      return Status::Internal("torn record inside non-final WAL segment " +
                              WalPath(data_dir, epochs[i]) +
                              " — log history is damaged");
    }
    for (const WalRecord& record : segment.value().records) {
      if (callbacks.apply_record) {
        status = callbacks.apply_record(record);
        if (!status.ok()) return status;
      }
      ++info.records_replayed;
    }
    if (last_segment) {
      info.torn_tail_detected = segment.value().torn_tail;
      info.append_epoch = epochs[i];
      info.append_valid_bytes = segment.value().valid_bytes;
      info.create_segment = false;
    }
  }

  info.recovery_seconds = watch.ElapsedSeconds();
  return info;
}

}  // namespace f2db
