// Columnar fact-table storage.
//
// The paper's F2DB keeps the raw multi-dimensional facts in relational
// tables and materializes the aggregated time series once up front
// ("To avoid repeatedly scanning the same data, we initially created all
// aggregated time series for the whole time series graph", Section VI-A).
// This module is that storage layer in embedded form: an append-only
// columnar table (one dictionary-encoded column per dimension, a time
// column, a measure column) with predicate scans, time-bucketed SUM
// aggregation, and the ETL that builds a TimeSeriesGraph from the raw rows.

#ifndef F2DB_ENGINE_FACT_TABLE_H_
#define F2DB_ENGINE_FACT_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/cube_schema.h"
#include "cube/graph.h"

namespace f2db {

/// One raw fact row (decoded form).
struct FactRow {
  std::vector<std::string> dims;  ///< Level-0 value name per dimension.
  std::int64_t time = 0;
  double value = 0.0;
};

/// A scan predicate: dimension d must equal value id v at some level.
/// Level > 0 predicates match every base value rolling up into v.
struct FactPredicate {
  std::size_t dim = 0;
  LevelIndex level = 0;
  ValueIndex value = 0;
};

/// Append-only columnar fact table over a cube schema.
class FactTable {
 public:
  explicit FactTable(CubeSchema schema);

  const CubeSchema& schema() const { return schema_; }
  std::size_t num_rows() const { return times_.size(); }

  /// Appends one fact; dimension values are resolved against level 0 of
  /// each hierarchy (dictionary encoding).
  Status Append(const FactRow& row);

  /// Appends a pre-encoded fact (value ids already resolved).
  Status AppendEncoded(const std::vector<ValueIndex>& dims, std::int64_t time,
                       double value);

  /// Decodes a stored row (for debugging / exports).
  Result<FactRow> Row(std::size_t index) const;

  /// Scans the table and returns the indices of rows matching ALL
  /// predicates (conjunction), in insertion order.
  std::vector<std::size_t> Scan(
      const std::vector<FactPredicate>& predicates) const;

  /// SUM of the measure grouped by time over the matching rows, as a
  /// dense series over [min_time, max_time] of the table (missing buckets
  /// are 0). Returns an empty series when the table is empty.
  TimeSeries AggregateByTime(
      const std::vector<FactPredicate>& predicates) const;

  /// Time range covered by the table.
  std::int64_t min_time() const { return min_time_; }
  std::int64_t max_time() const { return max_time_; }

  /// Builds the complete time series graph from the stored facts: every
  /// base cell must cover the full contiguous [min_time, max_time] range
  /// exactly once. This is the paper's one-time materialization of all
  /// aggregation possibilities.
  Result<TimeSeriesGraph> BuildGraph() const;

 private:
  /// True when base value `base` at dimension `dim` rolls up into the
  /// predicate's (level, value).
  bool Matches(const FactPredicate& predicate, ValueIndex base) const;

  CubeSchema schema_;
  /// Column store: dims_[d][row] = level-0 value id.
  std::vector<std::vector<ValueIndex>> dims_;
  std::vector<std::int64_t> times_;
  std::vector<double> values_;
  std::int64_t min_time_ = 0;
  std::int64_t max_time_ = -1;  ///< max < min encodes "empty".
};

}  // namespace f2db

#endif  // F2DB_ENGINE_FACT_TABLE_H_
