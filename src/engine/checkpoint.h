// Checkpoints: atomic snapshots of the durable engine state (DESIGN.md §10).
//
// A checkpoint captures everything recovery needs to rebuild an
// EngineSnapshot without replaying history from the beginning of time: the
// base fact series (aggregates are recomputed), the stored derivation
// schemes, every published model (serialized parameters + state plus the
// invalidation/quarantine bookkeeping), the buffered-but-unapplied insert
// batches, and the maintenance counters at the cut. It also records the
// WAL epoch from which replay must continue — the engine rotates the WAL
// to a fresh epoch at the instant the snapshot is pinned, so
// (checkpoint, segments >= epoch) is always a consistent pair.
//
// Atomicity comes from the classic tmp + fsync + rename + dir-fsync dance:
// readers only ever observe either the previous complete checkpoint or the
// new complete one, never a partial write. A CRC32C trailer over the whole
// body makes silent corruption (bit rot, torn sector despite the rename)
// fail loudly at load time, and a leading version byte makes format drift
// fail loudly instead of misparsing (the golden-file tests pin the bytes).

#ifndef F2DB_ENGINE_CHECKPOINT_H_
#define F2DB_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace f2db {

/// Fault-injection site: the checkpoint body write fails before the rename
/// (disk-full analogue). The previous checkpoint and every WAL segment must
/// stay untouched so recovery is unaffected.
F2DB_DEFINE_FAILPOINT(kFailpointCheckpointWrite, "engine.checkpoint_write")

/// On-disk checkpoint format version; bumped on any layout change.
inline constexpr std::uint8_t kCheckpointFormatVersion = 1;

/// One published model inside a checkpoint.
struct CheckpointModel {
  std::uint32_t node = 0;
  bool invalid = false;
  std::uint64_t updates_since_estimate = 0;
  std::uint64_t refit_failures = 0;
  bool quarantined = false;
  double creation_seconds = 0.0;
  /// ModelFactory::SerializeModel text (single line, no spaces).
  std::string payload;
};

/// The complete durable state at one cut.
struct CheckpointState {
  /// Replay WAL segments with epoch >= this value on top of the snapshot.
  std::uint64_t wal_epoch = 1;

  // Maintenance counters at the cut, restored so post-recovery stats are
  // continuous with the pre-crash process.
  std::uint64_t inserts = 0;
  std::uint64_t time_advances = 0;
  std::uint64_t reestimates = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t refit_failures = 0;

  /// Start time shared by every base series.
  std::int64_t base_start_time = 0;
  /// Full history per base node (node id, values). Aggregated series are
  /// rebuilt bottom-up on load — same summation order as the live engine.
  std::vector<std::pair<std::uint32_t, std::vector<double>>> base_series;
  /// schemes[i] = (target, sources); uncovered nodes are omitted.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> schemes;
  std::vector<CheckpointModel> models;
  /// Buffered inserts that had not completed a period: (time, slot, value).
  std::vector<std::tuple<std::int64_t, std::uint64_t, double>> pending;
};

/// "<dir>/checkpoint.f2db" — the one live checkpoint of a data directory.
std::string CheckpointPath(const std::string& dir);

/// Renders the checkpoint body (header, sections, CRC trailer) — exposed
/// for the golden-file format tests. Fully deterministic: equal states
/// render byte-identical text.
std::string SerializeCheckpoint(const CheckpointState& state);

/// Parses text produced by SerializeCheckpoint, verifying the version byte
/// and the CRC trailer.
Result<CheckpointState> ParseCheckpoint(const std::string& text);

/// Writes `state` to `dir` atomically (tmp + fsync + rename + dir fsync).
/// On any failure the tmp file is removed and the previous checkpoint is
/// untouched.
Status WriteCheckpoint(const std::string& dir, const CheckpointState& state);

/// Loads the checkpoint of `dir`. kNotFound when none exists (fresh data
/// directory); kInternal when one exists but fails validation — recovery
/// must refuse to serve rather than start from silently wrong state.
Result<CheckpointState> LoadCheckpoint(const std::string& dir);

}  // namespace f2db

#endif  // F2DB_ENGINE_CHECKPOINT_H_
