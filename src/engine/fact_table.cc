#include "engine/fact_table.h"

#include <algorithm>
#include <map>

namespace f2db {

FactTable::FactTable(CubeSchema schema) : schema_(std::move(schema)) {
  dims_.resize(schema_.num_dimensions());
}

Status FactTable::Append(const FactRow& row) {
  if (row.dims.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument("fact row has wrong dimensionality");
  }
  std::vector<ValueIndex> encoded(row.dims.size());
  for (std::size_t d = 0; d < row.dims.size(); ++d) {
    F2DB_ASSIGN_OR_RETURN(encoded[d],
                          schema_.hierarchy(d).FindValue(0, row.dims[d]));
  }
  return AppendEncoded(encoded, row.time, row.value);
}

Status FactTable::AppendEncoded(const std::vector<ValueIndex>& dims,
                                std::int64_t time, double value) {
  if (dims.size() != schema_.num_dimensions()) {
    return Status::InvalidArgument("fact row has wrong dimensionality");
  }
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (dims[d] >= schema_.hierarchy(d).num_values(0)) {
      return Status::OutOfRange("dimension value id out of range");
    }
  }
  for (std::size_t d = 0; d < dims.size(); ++d) dims_[d].push_back(dims[d]);
  if (times_.empty()) {
    min_time_ = time;
    max_time_ = time;
  } else {
    min_time_ = std::min(min_time_, time);
    max_time_ = std::max(max_time_, time);
  }
  times_.push_back(time);
  values_.push_back(value);
  return Status::OK();
}

Result<FactRow> FactTable::Row(std::size_t index) const {
  if (index >= num_rows()) return Status::OutOfRange("row index out of range");
  FactRow row;
  row.dims.resize(schema_.num_dimensions());
  for (std::size_t d = 0; d < schema_.num_dimensions(); ++d) {
    row.dims[d] = schema_.hierarchy(d).value_name(0, dims_[d][index]);
  }
  row.time = times_[index];
  row.value = values_[index];
  return row;
}

bool FactTable::Matches(const FactPredicate& predicate,
                        ValueIndex base) const {
  const Hierarchy& h = schema_.hierarchy(predicate.dim);
  LevelIndex level = 0;
  ValueIndex value = base;
  while (level < predicate.level) {
    if (level >= h.num_levels()) return predicate.value == 0;  // ALL
    value = h.parent_value(level, value);
    ++level;
  }
  return value == predicate.value;
}

std::vector<std::size_t> FactTable::Scan(
    const std::vector<FactPredicate>& predicates) const {
  std::vector<std::size_t> out;
  for (std::size_t row = 0; row < num_rows(); ++row) {
    bool match = true;
    for (const FactPredicate& predicate : predicates) {
      if (predicate.dim >= dims_.size() ||
          !Matches(predicate, dims_[predicate.dim][row])) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(row);
  }
  return out;
}

TimeSeries FactTable::AggregateByTime(
    const std::vector<FactPredicate>& predicates) const {
  if (times_.empty()) return TimeSeries();
  const std::size_t length =
      static_cast<std::size_t>(max_time_ - min_time_) + 1;
  std::vector<double> buckets(length, 0.0);
  for (std::size_t row : Scan(predicates)) {
    buckets[static_cast<std::size_t>(times_[row] - min_time_)] += values_[row];
  }
  return TimeSeries(std::move(buckets), min_time_);
}

Result<TimeSeriesGraph> FactTable::BuildGraph() const {
  if (times_.empty()) return Status::FailedPrecondition("fact table is empty");
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph,
                        TimeSeriesGraph::Create(schema_));

  const std::size_t length =
      static_cast<std::size_t>(max_time_ - min_time_) + 1;
  // One dense accumulation pass: row -> base node -> time bucket. A seen
  // bitmap enforces exactly-one-fact-per-(cell, time).
  std::vector<std::vector<double>> series(graph.num_base_nodes(),
                                          std::vector<double>(length, 0.0));
  std::vector<std::vector<bool>> seen(graph.num_base_nodes(),
                                      std::vector<bool>(length, false));
  // Base-node lookup per row via NodeFor on the level-0 address.
  std::vector<NodeId> base_index_of(graph.num_nodes(),
                                    static_cast<NodeId>(-1));
  for (std::size_t i = 0; i < graph.base_nodes().size(); ++i) {
    base_index_of[graph.base_nodes()[i]] = static_cast<NodeId>(i);
  }
  NodeAddress address;
  address.coords.resize(schema_.num_dimensions());
  for (std::size_t row = 0; row < num_rows(); ++row) {
    for (std::size_t d = 0; d < schema_.num_dimensions(); ++d) {
      address.coords[d] = {0, dims_[d][row]};
    }
    F2DB_ASSIGN_OR_RETURN(NodeId node, graph.NodeFor(address));
    const NodeId slot = base_index_of[node];
    const std::size_t bucket =
        static_cast<std::size_t>(times_[row] - min_time_);
    if (seen[slot][bucket]) {
      return Status::InvalidArgument(
          "duplicate fact for cell " + graph.NodeName(node) + " at time " +
          std::to_string(times_[row]));
    }
    seen[slot][bucket] = true;
    series[slot][bucket] = values_[row];
  }
  for (std::size_t i = 0; i < graph.base_nodes().size(); ++i) {
    for (std::size_t t = 0; t < length; ++t) {
      if (!seen[i][t]) {
        return Status::InvalidArgument(
            "cell " + graph.NodeName(graph.base_nodes()[i]) +
            " is missing time " + std::to_string(min_time_ +
                                                 static_cast<std::int64_t>(t)));
      }
    }
    F2DB_RETURN_IF_ERROR(graph.SetBaseSeries(
        graph.base_nodes()[i], TimeSeries(std::move(series[i]), min_time_)));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return graph;
}

}  // namespace f2db
