#include "engine/checkpoint.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/crc32c.h"
#include "engine/wal.h"

namespace f2db {
namespace {

/// %.17g round-trips every finite double through text exactly.
std::string RenderDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

Result<double> ParseDoubleToken(std::istringstream& in, const char* what) {
  std::string token;
  if (!(in >> token)) {
    return Status::InvalidArgument(std::string("checkpoint: missing ") + what);
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument(std::string("checkpoint: bad ") + what +
                                   ": " + token);
  }
  return value;
}

}  // namespace

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.f2db";
}

std::string SerializeCheckpoint(const CheckpointState& state) {
  std::string body;
  body.reserve(4096);
  body += "f2db-checkpoint v";
  body += std::to_string(kCheckpointFormatVersion);
  body += "\n";
  body += "epoch " + std::to_string(state.wal_epoch) + "\n";
  body += "counters " + std::to_string(state.inserts) + " " +
          std::to_string(state.time_advances) + " " +
          std::to_string(state.reestimates) + " " +
          std::to_string(state.quarantines) + " " +
          std::to_string(state.refit_failures) + "\n";

  const std::size_t length =
      state.base_series.empty() ? 0 : state.base_series.front().second.size();
  body += "base " + std::to_string(state.base_series.size()) + " " +
          std::to_string(state.base_start_time) + " " +
          std::to_string(length) + "\n";
  for (const auto& [node, values] : state.base_series) {
    body += std::to_string(node);
    for (const double v : values) {
      body += " ";
      body += RenderDouble(v);
    }
    body += "\n";
  }

  body += "schemes " + std::to_string(state.schemes.size()) + "\n";
  for (const auto& [target, sources] : state.schemes) {
    body += std::to_string(target) + " " + std::to_string(sources.size());
    for (const std::uint32_t s : sources) body += " " + std::to_string(s);
    body += "\n";
  }

  body += "models " + std::to_string(state.models.size()) + "\n";
  for (const CheckpointModel& model : state.models) {
    body += std::to_string(model.node);
    body += model.invalid ? " 1 " : " 0 ";
    body += std::to_string(model.updates_since_estimate) + " " +
            std::to_string(model.refit_failures) +
            (model.quarantined ? " 1 " : " 0 ") +
            RenderDouble(model.creation_seconds) + " " + model.payload + "\n";
  }

  body += "pending " + std::to_string(state.pending.size()) + "\n";
  for (const auto& [time, slot, value] : state.pending) {
    body += std::to_string(time) + " " + std::to_string(slot) + " " +
            RenderDouble(value) + "\n";
  }

  char trailer[24];
  std::snprintf(trailer, sizeof(trailer), "crc %08" PRIx32 "\n", Crc32c(body));
  return body + trailer;
}

Result<CheckpointState> ParseCheckpoint(const std::string& text) {
  // Split the CRC trailer off and verify it covers everything above.
  const std::size_t trailer_at = text.rfind("crc ");
  if (trailer_at == std::string::npos ||
      (trailer_at != 0 && text[trailer_at - 1] != '\n')) {
    return Status::Internal("checkpoint: missing crc trailer");
  }
  std::uint32_t stored_crc = 0;
  if (std::sscanf(text.c_str() + trailer_at, "crc %8" SCNx32, &stored_crc) !=
      1) {
    return Status::Internal("checkpoint: unparsable crc trailer");
  }
  const std::string_view body(text.data(), trailer_at);
  if (Crc32c(body) != stored_crc) {
    return Status::Internal("checkpoint: crc mismatch (corrupt file)");
  }

  std::istringstream in{std::string(body)};
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Internal("checkpoint: empty file");
  }
  unsigned version = 0;
  if (std::sscanf(line.c_str(), "f2db-checkpoint v%u", &version) != 1) {
    return Status::Internal("checkpoint: bad header line: " + line);
  }
  if (version != kCheckpointFormatVersion) {
    return Status::Internal(
        "checkpoint format version mismatch: file has v" +
        std::to_string(version) + ", this build reads v" +
        std::to_string(kCheckpointFormatVersion));
  }

  CheckpointState state;
  std::string tag;
  if (!(in >> tag >> state.wal_epoch) || tag != "epoch") {
    return Status::Internal("checkpoint: missing epoch");
  }
  if (!(in >> tag >> state.inserts >> state.time_advances >>
        state.reestimates >> state.quarantines >> state.refit_failures) ||
      tag != "counters") {
    return Status::Internal("checkpoint: missing counters");
  }

  std::size_t num_base = 0, length = 0;
  if (!(in >> tag >> num_base >> state.base_start_time >> length) ||
      tag != "base") {
    return Status::Internal("checkpoint: missing base section");
  }
  state.base_series.reserve(num_base);
  for (std::size_t i = 0; i < num_base; ++i) {
    std::uint32_t node = 0;
    if (!(in >> node)) return Status::Internal("checkpoint: truncated base");
    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      if (!(in >> values[t])) {
        return Status::Internal("checkpoint: truncated base series");
      }
    }
    state.base_series.emplace_back(node, std::move(values));
  }

  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "schemes") {
    return Status::Internal("checkpoint: missing schemes section");
  }
  state.schemes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t target = 0;
    std::size_t num_sources = 0;
    if (!(in >> target >> num_sources)) {
      return Status::Internal("checkpoint: truncated scheme row");
    }
    std::vector<std::uint32_t> sources(num_sources);
    for (std::size_t j = 0; j < num_sources; ++j) {
      if (!(in >> sources[j])) {
        return Status::Internal("checkpoint: truncated scheme sources");
      }
    }
    state.schemes.emplace_back(target, std::move(sources));
  }

  if (!(in >> tag >> count) || tag != "models") {
    return Status::Internal("checkpoint: missing models section");
  }
  state.models.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CheckpointModel model;
    int invalid = 0, quarantined = 0;
    if (!(in >> model.node >> invalid >> model.updates_since_estimate >>
          model.refit_failures >> quarantined >> model.creation_seconds >>
          model.payload)) {
      return Status::Internal("checkpoint: truncated model row");
    }
    model.invalid = invalid != 0;
    model.quarantined = quarantined != 0;
    state.models.push_back(std::move(model));
  }

  if (!(in >> tag >> count) || tag != "pending") {
    return Status::Internal("checkpoint: missing pending section");
  }
  state.pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::int64_t time = 0;
    std::uint64_t slot = 0;
    double value = 0.0;
    if (!(in >> time >> slot >> value)) {
      return Status::Internal("checkpoint: truncated pending row");
    }
    state.pending.emplace_back(time, slot, value);
  }
  return state;
}

Status WriteCheckpoint(const std::string& dir, const CheckpointState& state) {
  const std::string path = CheckpointPath(dir);
  const std::string tmp = path + ".tmp";
  const std::string body = SerializeCheckpoint(state);

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot create checkpoint tmp " + tmp + ": " +
                               ::strerror(errno));
  }
  Status status = Status::OK();
  if (failpoint::Triggered(kFailpointCheckpointWrite)) {
    status = failpoint::InjectedFailure(kFailpointCheckpointWrite);
  }
  std::size_t written = 0;
  while (status.ok() && written < body.size()) {
    const ssize_t n = ::write(fd, body.data() + written, body.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
    } else if (n < 0 && errno != EINTR) {
      status = Status::Unavailable(std::string("checkpoint write(): ") +
                                   ::strerror(errno));
    }
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Unavailable(std::string("checkpoint fsync(): ") +
                                 ::strerror(errno));
  }
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // The rename is the commit point: before it the old checkpoint is intact,
  // after it the new one is complete. The directory fsync makes the rename
  // itself survive a crash.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status failed = Status::Unavailable(
        std::string("checkpoint rename(): ") + ::strerror(errno));
    ::unlink(tmp.c_str());
    return failed;
  }
  return SyncDirectory(dir);
}

Result<CheckpointState> LoadCheckpoint(const std::string& dir) {
  const std::string path = CheckpointPath(dir);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no checkpoint in " + dir);
    }
    return Status::Unavailable("cannot open checkpoint " + path + ": " +
                               ::strerror(errno));
  }
  std::string text;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      text.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const Status status = Status::Unavailable(
          std::string("checkpoint read(): ") + ::strerror(errno));
      ::close(fd);
      return status;
    }
    break;
  }
  ::close(fd);
  return ParseCheckpoint(text);
}

}  // namespace f2db
