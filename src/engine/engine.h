// F2DB engine: forecast query processing and model maintenance over a
// stored model configuration (Section V).
//
// This is the embedded stand-in for the paper's PostgreSQL extension. It
// owns the time series data (the fact cube), the configuration (schemes +
// live models), and implements:
//   - the Forecast Query Processor: a query resolves its graph node, loads
//     the node's derivation scheme and the required models, and computes
//     forecasts WITHOUT touching the base fact data;
//   - the Maintenance Processor: inserts are batched until a new value is
//     available for every base series, then time advances through the whole
//     graph at once; model states and derivation weights are updated
//     incrementally; parameter re-estimation is delayed until an invalid
//     model is actually referenced by a query (lazy re-estimation).
//
// Concurrency model (see DESIGN.md, "Engine concurrency model"): the engine
// is split into three layers.
//   1. A const, lock-free QUERY layer (Execute, Explain, ForecastNode,
//      ForecastNodeWithIntervals, ExportCatalog): each call pins the
//      current EngineSnapshot with one atomic load and computes entirely
//      against that immutable state. Any number of query threads may run
//      concurrently with each other and with maintenance.
//   2. A MAINTENANCE layer (InsertFact, LoadConfiguration, LoadCatalog)
//      serialized behind a writer mutex: it builds the successor snapshot
//      off to the side (copy-on-write) and installs it with one atomic
//      store. Readers mid-query keep the old snapshot alive.
//   3. A STATS layer of relaxed atomic counters, updated from both sides
//      without locks.
// Lazy re-estimation follows the same rule: a query that references an
// invalid model fits a fresh clone against its snapshot's history and
// publishes the result copy-on-write; the published entry never mutates.

#ifndef F2DB_ENGINE_ENGINE_H_
#define F2DB_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/concurrent.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/configuration.h"
#include "core/evaluator.h"
#include "cube/graph.h"
#include "engine/catalog.h"
#include "engine/checkpoint.h"
#include "engine/query.h"
#include "engine/snapshot.h"
#include "engine/wal.h"
#include "storage/store.h"
#include "ts/intervals.h"
#include "ts/model.h"

namespace f2db {

/// Fault-injection site: a lazy re-estimation attempt fails with
/// kUnavailable instead of fitting (exercises the degradation ladder and
/// the retry/quarantine machinery).
F2DB_DEFINE_FAILPOINT(kFailpointEngineRefit, "engine.refit")
/// Fault-injection site: InsertFact fails before buffering the value.
F2DB_DEFINE_FAILPOINT(kFailpointEngineInsert, "engine.insert")
/// Fault-injection site: LoadCatalog fails while decoding a model row (the
/// whole load must abort and leave the previous state published).
F2DB_DEFINE_FAILPOINT(kFailpointCatalogDecode, "engine.catalog_decode")

/// Engine tuning knobs. Immutable once the engine is constructed — live
/// mutation would race with the concurrent query path.
struct EngineOptions {
  /// Threshold-based invalidation: a model is marked invalid after this
  /// many incremental updates and re-estimated on next use. 0 disables
  /// re-estimation entirely.
  std::size_t reestimate_after_updates = 0;
  /// Worker threads for maintenance fan-out (model catch-up on
  /// configuration load, per-advance incremental model updates).
  /// 1 = serial, 0 = ThreadPool::DefaultConcurrency().
  std::size_t maintenance_threads = 1;
  /// After this many consecutive failed re-estimations a node is
  /// quarantined: queries stop retrying the fit and serve the degradation
  /// ladder until the next data advance resets the node. 0 = never
  /// quarantine (every query retries).
  std::size_t quarantine_after_refit_failures = 3;
  /// Exponential backoff between refit retries: attempt n is allowed only
  /// after base * 2^(n-1) seconds have passed since the previous failure.
  /// 0 = retry immediately on every query (the default; tests and embedded
  /// single-shot use want deterministic behavior).
  double refit_retry_backoff_seconds = 0.0;

  // ---- durability (DESIGN.md §10) ----

  /// Data directory for the WAL and checkpoints. Empty = in-memory engine
  /// with no durability (the default; matches the plain constructor).
  /// Non-empty directories require construction through F2dbEngine::Open,
  /// which recovers existing state before serving.
  std::string data_dir;
  /// When WAL appends reach stable storage (see FsyncPolicy).
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
  /// Group-commit size under FsyncPolicy::kBatch: fsync once per this many
  /// appended records.
  std::size_t wal_batch_records = 64;
  /// Background checkpoint cadence in seconds; 0 disables the background
  /// thread (checkpoints then happen only via CheckpointNow / shutdown).
  double checkpoint_interval_seconds = 0.0;

  // ---- storage engine (DESIGN.md §13) ----

  /// Background compaction cadence in seconds: closed WAL history is
  /// sealed into compressed segments on this interval. 0 disables the
  /// background thread (compaction then happens only via CompactNow /
  /// shutdown).
  double compaction_interval_seconds = 0.0;
  /// Retention window in periods. After a compaction, sealed segments
  /// whose entire range is older than `frontier - retention_window` are
  /// deleted and the raw history is dropped from memory; model state,
  /// aggregates, and history sums (derivation weights) are preserved
  /// exactly. Size it to at least the model warm-up window — lazy
  /// re-estimation and the naive fallback refit against the RETAINED
  /// history only. 0 keeps all history forever.
  std::size_t retention_window = 0;
};

/// How far down the fallback ladder a forecast had to go. Higher values
/// are worse; a multi-source answer reports the worst rung that
/// contributed. See "Failure semantics and the degradation ladder" in
/// DESIGN.md.
enum class DegradationLevel {
  kNone = 0,         ///< Valid or freshly re-estimated model.
  kStaleModel,       ///< Pre-invalidation model state (refit failed/skipped).
  kDerivedFallback,  ///< Recomputed through the source's own stored scheme.
  kNaiveFallback,    ///< Drift model fit on the snapshot's stored history.
  kUnavailable,      ///< Every rung failed; surfaced as kUnavailable status.
};

/// Stable display name ("NONE", "STALE_MODEL", ...).
const char* DegradationLevelName(DegradationLevel level);

/// Counter values exposed for benchmarking (Figure 9(b)). This is a plain
/// value snapshot; the live counters are relaxed atomics, so the fields
/// are individually exact but not mutually consistent while threads run.
struct EngineStats {
  std::size_t queries = 0;
  std::size_t inserts = 0;
  std::size_t time_advances = 0;
  std::size_t reestimates = 0;
  /// Lazy re-estimation attempts that returned non-OK.
  std::size_t refit_failures = 0;
  /// Nodes that crossed the consecutive-failure threshold and entered
  /// quarantine (counted once per quarantine episode).
  std::size_t quarantines = 0;
  /// Forecast rows served per degradation rung (kNone rows are not
  /// counted; a row is attributed to the worst rung that contributed).
  std::size_t degraded_rows_stale = 0;
  std::size_t degraded_rows_derived = 0;
  std::size_t degraded_rows_naive = 0;
  /// Queries answered kDeadlineExceeded because their deadline had already
  /// passed when the engine (or the scatter-gather fan-out) was reached.
  std::size_t deadline_expired_queries = 0;
  /// Lazy re-estimations skipped because the query ran in brownout mode
  /// (the stale rung served instead, annotated).
  std::size_t brownout_refits_skipped = 0;
  double total_query_seconds = 0.0;
  double total_maintenance_seconds = 0.0;

  // ---- durability counters (all zero for an in-memory engine) ----

  /// WAL records appended (across segment rotations) since this process
  /// opened the engine.
  std::size_t wal_records_appended = 0;
  /// WAL bytes appended since this process opened the engine.
  std::size_t wal_bytes = 0;
  /// WAL records replayed by recovery when the engine was opened.
  std::size_t wal_records_replayed = 0;
  /// 1 when recovery found (and truncated) a torn final WAL record.
  std::size_t torn_tail_detected = 0;
  std::size_t checkpoints_completed = 0;
  std::size_t checkpoint_failures = 0;
  /// Wall-clock milliseconds recovery took at open (0 for in-memory).
  double recovery_duration_ms = 0.0;
  /// Seconds since the last completed checkpoint; -1 when none completed
  /// in this process's lifetime.
  double last_checkpoint_age_seconds = -1.0;

  // ---- storage-engine counters (DESIGN.md §13; zero when no segments) ----

  /// Segments sealed by this process.
  std::size_t segments_sealed = 0;
  /// Raw records (observations) sealed into segments by this process.
  std::size_t segment_records_sealed = 0;
  /// Segments currently in the live chain (gauge).
  std::size_t segments_live = 0;
  /// On-disk bytes of the live segment chain (gauge).
  std::size_t segment_live_bytes = 0;
  /// Compactions completed / failed by this process.
  std::size_t compactions_completed = 0;
  std::size_t compaction_failures = 0;
  /// Segments deleted and raw records dropped by retention.
  std::size_t retention_segments_deleted = 0;
  std::size_t retention_records_dropped = 0;
  /// Records recovery bulk-loaded from sealed segments at open (gauge).
  std::size_t segment_records_recovered = 0;

  /// Renders the counters in the Prometheus text exposition format (see
  /// engine/stats_export.h); served by the network layer's STATS frame.
  std::string ToPrometheusText() const;
};

/// One output row of a forecast query.
struct ForecastRow {
  std::int64_t time = 0;
  double value = 0.0;
  /// Prediction interval bounds; meaningful when has_interval is true
  /// (WITH INTERVALS queries).
  double lower = 0.0;
  double upper = 0.0;
  bool has_interval = false;
  /// Worst fallback rung that contributed to this row (kNone = full
  /// fidelity).
  DegradationLevel degradation = DegradationLevel::kNone;
};

/// Result of a forecast query.
struct QueryResult {
  NodeId node = 0;          ///< The graph node the query resolved to.
  /// Human-readable node name, rendered from the snapshot the query ran
  /// against. Carried in the result so callers (the serving layer) never
  /// need to pin a second snapshot just to name the node — and so a
  /// sharded engine can report shard-local node ids with globally
  /// meaningful names.
  std::string node_name;
  std::vector<ForecastRow> rows;
  /// Worst degradation across the rows; kNone for a full-fidelity answer.
  DegradationLevel degradation = DegradationLevel::kNone;
  /// Human-readable cause when degradation != kNone (e.g. which node's
  /// re-estimation failed and which rung served the answer).
  std::string degradation_reason;
};

/// A scheme-derived forecast annotated with the degradation outcome — the
/// internal currency of the query path, exposed for tests and benches.
struct DegradedForecast {
  std::vector<double> values;
  /// Forecast variances; filled only on the interval query path.
  std::vector<double> variances;
  DegradationLevel level = DegradationLevel::kNone;
  /// Cause of the degradation; empty when level == kNone.
  std::string reason;
};

/// Plan description produced by EXPLAIN (Section V: a forecast query is
/// rewritten to access the stored time series graph and models).
struct ExplainResult {
  NodeId node = 0;
  std::string node_name;
  /// The stored derivation scheme sources and the current weight.
  std::vector<NodeId> sources;
  double weight = 0.0;
  /// Human-readable model description per source ("node 7: arima, 5 params").
  std::vector<std::string> source_models;
  std::size_t horizon = 0;
};

/// The surface the serving layer programs against: what a forecast engine
/// must offer regardless of whether it is one F2dbEngine or a sharded
/// facade over many (engine/sharded_engine.h). Kept deliberately narrow —
/// the full F2dbEngine API (snapshots, catalogs, node-id queries) stays on
/// the concrete class; only the operations the server routes for clients
/// are virtual.
class EngineInterface {
 public:
  virtual ~EngineInterface() = default;

  /// Executes a parsed forecast query. Implementations fill
  /// QueryResult::node_name so callers can render answers without touching
  /// engine snapshots.
  virtual Result<QueryResult> Execute(const ForecastQuery& query) const = 0;

  /// Describes the execution plan of a forecast query.
  virtual Result<ExplainResult> Explain(const ForecastQuery& query) const = 0;

  /// Inserts one fact addressed by level-0 value names (one per dimension).
  virtual Status InsertFact(const std::vector<std::string>& base_values,
                            std::int64_t time, double value) = 0;

  /// Buffered (not yet applied) inserts, summed across shards.
  virtual std::size_t pending_inserts() const = 0;

  /// Aggregated counter snapshot.
  virtual EngineStats stats() const = 0;

  /// Prometheus exposition of the engine counters; a sharded engine
  /// additionally emits per-shard labeled samples.
  virtual std::string StatsPrometheusText() const = 0;

  /// Whether mutations are WAL-logged (drives the server's shutdown
  /// checkpoint).
  virtual bool durable() const = 0;

  /// Takes a checkpoint now (every shard, for a sharded engine).
  virtual Status CheckpointNow() = 0;

  /// Seals closed WAL history into compressed segments now (every shard,
  /// for a sharded engine) and applies retention. kFailedPrecondition for
  /// an in-memory engine.
  virtual Status CompactNow() = 0;
};

/// The embedded forecast-enabled database engine.
class F2dbEngine : public EngineInterface {
 public:
  /// Takes ownership of the loaded fact cube (aggregates built). This
  /// constructor is always IN-MEMORY: options.data_dir is ignored here
  /// because construction cannot report a recovery failure — durable
  /// engines are built through Open().
  explicit F2dbEngine(TimeSeriesGraph graph, EngineOptions options = {});

  /// Stops the background checkpoint thread and closes the WAL (final
  /// fsync unless the policy is kNone). No shutdown checkpoint is taken
  /// here — callers that want one (the server's drain path) call
  /// CheckpointNow() first.
  ~F2dbEngine();

  /// Opens an engine over options.data_dir: loads the latest valid
  /// checkpoint, replays the WAL tail (tolerating a torn final record),
  /// and resumes logging. `graph` supplies the cube structure and the
  /// initial fact data; a checkpoint's stored base series replace the
  /// fact values wholesale. With an empty data_dir this is equivalent to
  /// the constructor.
  static Result<std::unique_ptr<F2dbEngine>> Open(TimeSeriesGraph graph,
                                                  EngineOptions options = {});

  /// Whether this engine writes a WAL (opened through Open with a
  /// data_dir; the plain constructor never is).
  bool durable() const override { return wal_ != nullptr; }

  /// Takes a checkpoint right now: rotates the WAL to a fresh epoch,
  /// writes the pinned snapshot atomically, and deletes the WAL segments
  /// the checkpoint made redundant. Serialized with all maintenance AND
  /// with whole compactions — a checkpoint that landed between a
  /// retention manifest commit and the matching in-memory drop would
  /// snapshot the undropped series at a higher epoch and double-count the
  /// retained prefix on recovery. The expensive serialization runs off
  /// the writer lock. On failure the previous checkpoint and every WAL
  /// segment survive, so recovery is unaffected. kFailedPrecondition for
  /// an in-memory engine.
  Status CheckpointNow() override;

  /// Runs one compaction right now: rotates the WAL to a fresh epoch,
  /// rewrites the live tail (configuration, quarantine transitions,
  /// pending inserts) into it, seals the closed history slice into a
  /// compressed segment, commits the manifest by atomic rename, and only
  /// then deletes the covered WAL epochs. When a retention window is
  /// configured, segments entirely older than the window are then dropped
  /// (on disk and in memory) with history sums preserved via manifest
  /// offsets. Serialized against itself and against whole checkpoints
  /// (both take compaction_serial_mutex_). kFailedPrecondition for an
  /// in-memory engine.
  Status CompactNow() override;

  /// The graph of the CURRENT snapshot. The reference stays valid until the
  /// next maintenance publication — a single-threaded convenience. Code
  /// that runs concurrently with maintenance must pin snapshot() instead.
  const TimeSeriesGraph& graph() const;

  /// Value snapshot of the engine counters (safe to call concurrently).
  EngineStats stats() const override;

  /// Prometheus exposition of stats() (EngineInterface contract).
  std::string StatsPrometheusText() const override {
    return stats().ToPrometheusText();
  }

  const EngineOptions& options() const { return options_; }

  /// Pins the current published state. All query entry points are
  /// equivalent to pinning a snapshot and running against it; callers that
  /// need repeatable reads across several queries pin one snapshot and use
  /// the snapshot-taking overloads below.
  SnapshotPtr snapshot() const { return LoadSnapshot(); }

  // -------------------------------------------------- configuration load

  /// Installs an advisor/baseline configuration: schemes are copied, every
  /// uncovered node receives a fallback scheme (nearest model node), and
  /// the models are caught up from their training state to the full stored
  /// history via incremental updates. Serialized with all maintenance; on
  /// failure the previous state stays published untouched.
  Status LoadConfiguration(const ModelConfiguration& config,
                           const ConfigurationEvaluator& evaluator);

  /// Restores a configuration from catalog tables (Save/Load round trip).
  /// Transactional like LoadConfiguration.
  Status LoadCatalog(const ConfigurationCatalog& catalog);

  /// Exports the current configuration as catalog tables.
  Result<ConfigurationCatalog> ExportCatalog() const;

  /// Number of live models.
  std::size_t num_models() const { return LoadSnapshot()->models.size(); }

  // ------------------------------------------------------------- queries

  /// Parses and executes a forecast query.
  Result<QueryResult> ExecuteSql(const std::string& sql) const;

  /// Executes a parsed forecast query against the current snapshot.
  Result<QueryResult> Execute(const ForecastQuery& query) const override;

  /// Describes the execution plan of a forecast query without computing
  /// forecasts: the resolved node, its stored derivation scheme, the
  /// current derivation weight, and the source models.
  Result<ExplainResult> Explain(const ForecastQuery& query) const override;

  /// Parses and executes ANY statement of the dialect (SELECT / INSERT /
  /// EXPLAIN SELECT) and renders the outcome as display text — the
  /// interactive shell entry point. Non-const: INSERT enters maintenance.
  Result<std::string> ExecuteStatementText(const std::string& sql);

  /// Resolves WHERE filters to a graph node (unfiltered dimensions = ALL).
  Result<NodeId> ResolveNode(const std::vector<DimensionFilter>& filters) const;

  /// Computes the `horizon` forecasts of a node via its stored scheme.
  /// Counts as a query in stats() (used by the Figure 9(b) bench to bypass
  /// SQL parsing).
  Result<std::vector<double>> ForecastNode(NodeId node,
                                           std::size_t horizon) const;

  /// Same, against an explicitly pinned snapshot (repeatable reads: the
  /// same snapshot always yields the same forecast).
  Result<std::vector<double>> ForecastNode(const SnapshotPtr& snapshot,
                                           NodeId node,
                                           std::size_t horizon) const;

  /// Interval forecasts for a node at the given confidence level. The
  /// variance of a derived scheme is k^2 * sum of the source model
  /// variances (sources treated as independent). Fails when some source
  /// model does not support variances.
  Result<std::vector<ForecastInterval>> ForecastNodeWithIntervals(
      NodeId node, std::size_t horizon, double confidence = 0.95) const;

  // --------------------------------------------------------- maintenance

  /// Inserts one new fact for a base cell identified by its level-0 value
  /// names (ordered by dimension). Values are buffered per time stamp; when
  /// every base series has a value for the next period, time advances.
  Status InsertFact(const std::vector<std::string>& base_values,
                    std::int64_t time, double value) override;

  /// Same, addressing the base node directly.
  Status InsertFact(NodeId base_node, std::int64_t time, double value);

  /// Number of buffered (not yet applied) inserts.
  std::size_t pending_inserts() const override;

 private:
  /// Live counters behind stats(): relaxed atomics, lock-free on both the
  /// query and the maintenance side.
  struct StatsCounters {
    RelaxedCounter queries;
    RelaxedCounter inserts;
    RelaxedCounter time_advances;
    RelaxedCounter reestimates;
    RelaxedCounter refit_failures;
    RelaxedCounter quarantines;
    RelaxedCounter degraded_rows_stale;
    RelaxedCounter degraded_rows_derived;
    RelaxedCounter degraded_rows_naive;
    RelaxedCounter deadline_expired_queries;
    RelaxedCounter brownout_refits_skipped;
    RelaxedAccumulator query_seconds;
    RelaxedAccumulator maintenance_seconds;
    RelaxedCounter wal_records;
    RelaxedCounter wal_bytes;
    RelaxedCounter checkpoints_completed;
    RelaxedCounter checkpoint_failures;
    RelaxedCounter segments_sealed;
    RelaxedCounter segment_records_sealed;
    RelaxedCounter compactions_completed;
    RelaxedCounter compaction_failures;
    RelaxedCounter retention_segments_deleted;
    RelaxedCounter retention_records_dropped;
  };

  SnapshotPtr LoadSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Installs `next` as the current snapshot. Caller holds writer_mutex_.
  /// Const because query threads publish re-estimates too.
  void Publish(std::shared_ptr<EngineSnapshot> next) const;

  /// Scheme-based forecast against one snapshot (shared by Execute and
  /// ForecastNode; no stats accounting). Bounds-checks `node`, then
  /// combines the node's stored scheme via CombineScheme. `want_variance`
  /// additionally fills DegradedForecast::variances (interval path).
  /// `brownout` rides along to ForecastSource: refits are skipped and the
  /// stale rung serves annotated answers.
  Result<DegradedForecast> ForecastInternal(const SnapshotPtr& snapshot,
                                            NodeId node, std::size_t horizon,
                                            bool want_variance,
                                            bool brownout = false) const;

  /// Sums the source forecasts of `node`'s stored scheme and applies the
  /// derivation weight. The reported level/reason is the worst rung any
  /// source had to fall to. `depth` limits derived-fallback recursion.
  Result<DegradedForecast> CombineScheme(const SnapshotPtr& snapshot,
                                         NodeId node, std::size_t horizon,
                                         bool want_variance, bool brownout,
                                         std::size_t depth) const;

  /// Produces the forecast of ONE scheme source, degrading through the
  /// fallback ladder (DESIGN.md, "Failure semantics"):
  ///   valid model → lazy refit → stale pre-invalidation model →
  ///   source's own derivation scheme → drift model on stored history →
  ///   kUnavailable.
  /// A successful refit is offered copy-on-write (OfferReestimate); a
  /// failed one is recorded copy-on-write (OfferRefitFailure) and may
  /// quarantine the node.
  Result<DegradedForecast> ForecastSource(const SnapshotPtr& snapshot,
                                          NodeId source, std::size_t horizon,
                                          bool want_variance, bool brownout,
                                          std::size_t depth) const;

  /// Whether a refit of `live` may be attempted now (not quarantined and
  /// outside the exponential backoff window).
  bool RefitAllowed(const LiveModel& live) const;

  /// Publishes a re-estimated model entry unless maintenance has replaced
  /// the entry since `expected` was read (then the refit is discarded).
  void OfferReestimate(NodeId node,
                       const std::shared_ptr<const LiveModel>& expected,
                       std::shared_ptr<const LiveModel> fresh) const;

  /// Records a failed re-estimation attempt copy-on-write: bumps the
  /// entry's consecutive-failure count, stamps the attempt time, and
  /// quarantines the node once the threshold is crossed. Identity-checked
  /// like OfferReestimate.
  void OfferRefitFailure(NodeId node,
                         const std::shared_ptr<const LiveModel>& expected) const;

  /// Attributes `rows` forecast rows to the stats counter of `level`.
  void CountDegradedRows(DegradationLevel level, std::size_t rows) const;

  /// Applies every complete buffered batch at the current frontier and
  /// publishes one successor snapshot. Caller holds writer_mutex_.
  Status AdvanceWhileCompleteLocked();

  // ------------------------------------------------- durability internals

  /// Shared core of InsertFact and WAL replay: full validation, then a WAL
  /// append when `log` is set (replay must not re-log), then buffer and
  /// advance.
  Status InsertFactImpl(NodeId base_node, std::int64_t time, double value,
                        bool log);

  /// Shared core of LoadCatalog and kCatalog replay.
  Status LoadCatalogImpl(const ConfigurationCatalog& catalog, bool log);

  /// Appends one record when the engine is durable (no-op otherwise) and
  /// accounts the WAL counters. Caller holds writer_mutex_. Const because
  /// query-side re-estimation publications log too.
  Status WalAppendLocked(const WalRecord& record) const;

  /// Renders the given snapshot's configuration as catalog tables (the
  /// payload of a WAL kCatalog record; also backs ExportCatalog).
  static ConfigurationCatalog CatalogFromSnapshot(const EngineSnapshot& snap);

  /// Recovery: installs a checkpoint's state wholesale (graph data,
  /// schemes, models, pending buffer, maintenance counters). Runs
  /// single-threaded inside Open(), before the engine is visible. When a
  /// manifest survives, its retention offsets are folded into the history
  /// sums (the checkpointed series start where retention left them).
  Status ApplyCheckpointState(CheckpointState&& state,
                              const storage::ManifestData* manifest);

  /// Recovery: restores series history by decoding the sealed segment
  /// chain directly — base series are bulk-loaded and aggregates/history
  /// sums rebuilt once, instead of re-running maintenance per record.
  /// Configuration, quarantine flags, and the pending buffer arrive via
  /// the rewritten records at the head of the manifest's WAL epoch.
  Status ApplySegmentState(const storage::ManifestData& manifest,
                           std::vector<storage::SegmentData>&& chain);

  /// Recovery: re-applies one replayed WAL record.
  Status ApplyWalRecord(const WalRecord& record);

  /// Builds the checkpoint cut. Caller holds writer_mutex_; the returned
  /// state references only copies, so serialization may run off the lock.
  CheckpointState BuildCheckpointStateLocked(const SnapshotPtr& snap,
                                             std::uint64_t wal_epoch) const;

  /// Body of the background checkpoint thread.
  void CheckpointLoop();

  /// Body of the background compaction thread.
  void CompactionLoop();

  /// The maintenance fan-out pool (nullptr = serial maintenance).
  ThreadPool* MaintenancePool() const;

  const EngineOptions options_;
  mutable StatsCounters stats_;

  /// Engine-relative clock for the refit retry backoff (LiveModel stamps
  /// last_refit_attempt_seconds against this watch).
  const StopWatch uptime_;

  /// The published state; queries load it, maintenance (and the install
  /// step of query-side re-estimation) stores it.
  mutable std::atomic<SnapshotPtr> snapshot_;

  /// Serializes every state publication: maintenance end-to-end, and the
  /// (brief) install step of query-side re-estimation.
  mutable std::mutex writer_mutex_;

  /// Lazily created fan-out pool for maintenance work.
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable std::once_flag pool_once_;

  // ---- maintenance-only state below (guarded by writer_mutex_) ----

  /// Insert buffer: time -> per-base-slot pending values.
  std::map<std::int64_t, std::vector<std::optional<double>>> pending_;
  std::unordered_map<NodeId, std::size_t> base_slot_;

  /// The WAL of the current epoch; nullptr for an in-memory engine.
  /// Rotated by CheckpointNow. Guarded by writer_mutex_ (mutable for the
  /// same reason WalAppendLocked is const).
  mutable std::unique_ptr<WalWriter> wal_;

  /// The sealed-segment store; nullptr for an in-memory engine. The store
  /// object is internally synchronized; compactions themselves are
  /// serialized by compaction_serial_mutex_.
  std::unique_ptr<storage::SegmentStore> store_;

  /// Serializes whole compactions against each other (the background
  /// thread vs. an explicit CompactNow vs. the shutdown path) and whole
  /// checkpoints against compactions: CheckpointNow takes it too, so a
  /// checkpoint can never observe the state between a retention manifest
  /// commit and the matching in-memory DropHistoryBefore. Always
  /// acquired BEFORE writer_mutex_.
  std::mutex compaction_serial_mutex_;

  /// Recovery fell back to checkpoint + WAL replay because the on-disk
  /// sealed chain failed validation. The next compaction must reseal the
  /// chain from the in-memory history instead of extending the invalid
  /// one — extending would commit a higher-epoch manifest and truncate
  /// the very WAL epochs the fallback still needs. Written once inside
  /// Open(); afterwards read and cleared under compaction_serial_mutex_.
  bool reseal_segments_ = false;

  // ---- recovery facts, written once inside Open() before any thread ----
  std::size_t recovery_records_replayed_ = 0;
  bool recovery_torn_tail_ = false;
  double recovery_seconds_ = 0.0;
  std::size_t recovery_segment_records_ = 0;

  /// uptime_-relative stamp of the last completed checkpoint; negative
  /// when none completed yet.
  std::atomic<double> last_checkpoint_seconds_{-1.0};

  // ---- background checkpoint + compaction threads ----
  std::mutex checkpoint_mutex_;
  std::condition_variable checkpoint_cv_;
  bool stopping_ = false;  ///< guarded by checkpoint_mutex_
  std::thread checkpoint_thread_;
  std::thread compaction_thread_;
};

}  // namespace f2db

#endif  // F2DB_ENGINE_ENGINE_H_
