// F2DB engine: forecast query processing and model maintenance over a
// stored model configuration (Section V).
//
// This is the embedded stand-in for the paper's PostgreSQL extension. It
// owns the time series data (the fact cube), the configuration (schemes +
// live models), and implements:
//   - the Forecast Query Processor: a query resolves its graph node, loads
//     the node's derivation scheme and the required models, and computes
//     forecasts WITHOUT touching the base fact data;
//   - the Maintenance Processor: inserts are batched until a new value is
//     available for every base series, then time advances through the whole
//     graph at once; model states and derivation weights are updated
//     incrementally; parameter re-estimation is delayed until an invalid
//     model is actually referenced by a query (lazy re-estimation).

#ifndef F2DB_ENGINE_ENGINE_H_
#define F2DB_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/configuration.h"
#include "core/evaluator.h"
#include "cube/graph.h"
#include "engine/catalog.h"
#include "engine/query.h"
#include "ts/intervals.h"
#include "ts/model.h"

namespace f2db {

/// Engine tuning knobs.
struct EngineOptions {
  /// Threshold-based invalidation: a model is marked invalid after this
  /// many incremental updates and re-estimated on next use. 0 disables
  /// re-estimation entirely.
  std::size_t reestimate_after_updates = 0;
};

/// Counters exposed for benchmarking (Figure 9(b)).
struct EngineStats {
  std::size_t queries = 0;
  std::size_t inserts = 0;
  std::size_t time_advances = 0;
  std::size_t reestimates = 0;
  double total_query_seconds = 0.0;
  double total_maintenance_seconds = 0.0;
};

/// One output row of a forecast query.
struct ForecastRow {
  std::int64_t time = 0;
  double value = 0.0;
  /// Prediction interval bounds; meaningful when has_interval is true
  /// (WITH INTERVALS queries).
  double lower = 0.0;
  double upper = 0.0;
  bool has_interval = false;
};

/// Result of a forecast query.
struct QueryResult {
  NodeId node = 0;          ///< The graph node the query resolved to.
  std::vector<ForecastRow> rows;
};

/// Plan description produced by EXPLAIN (Section V: a forecast query is
/// rewritten to access the stored time series graph and models).
struct ExplainResult {
  NodeId node = 0;
  std::string node_name;
  /// The stored derivation scheme sources and the current weight.
  std::vector<NodeId> sources;
  double weight = 0.0;
  /// Human-readable model description per source ("node 7: arima, 5 params").
  std::vector<std::string> source_models;
  std::size_t horizon = 0;
};

/// The embedded forecast-enabled database engine.
class F2dbEngine {
 public:
  /// Takes ownership of the loaded fact cube (aggregates built).
  explicit F2dbEngine(TimeSeriesGraph graph, EngineOptions options = {});

  const TimeSeriesGraph& graph() const { return graph_; }
  const EngineStats& stats() const { return stats_; }
  EngineOptions& options() { return options_; }

  // -------------------------------------------------- configuration load

  /// Installs an advisor/baseline configuration: schemes are copied, every
  /// uncovered node receives a fallback scheme (nearest model node), and
  /// the models are caught up from their training state to the full stored
  /// history via incremental updates.
  Status LoadConfiguration(const ModelConfiguration& config,
                           const ConfigurationEvaluator& evaluator);

  /// Restores a configuration from catalog tables (Save/Load round trip).
  Status LoadCatalog(const ConfigurationCatalog& catalog);

  /// Exports the current configuration as catalog tables.
  Result<ConfigurationCatalog> ExportCatalog() const;

  /// Number of live models.
  std::size_t num_models() const { return models_.size(); }

  // ------------------------------------------------------------- queries

  /// Parses and executes a forecast query.
  Result<QueryResult> ExecuteSql(const std::string& sql);

  /// Executes a parsed forecast query.
  Result<QueryResult> Execute(const ForecastQuery& query);

  /// Describes the execution plan of a forecast query without computing
  /// forecasts: the resolved node, its stored derivation scheme, the
  /// current derivation weight, and the source models.
  Result<ExplainResult> Explain(const ForecastQuery& query) const;

  /// Parses and executes ANY statement of the dialect (SELECT / INSERT /
  /// EXPLAIN SELECT) and renders the outcome as display text — the
  /// interactive shell entry point.
  Result<std::string> ExecuteStatementText(const std::string& sql);

  /// Resolves WHERE filters to a graph node (unfiltered dimensions = ALL).
  Result<NodeId> ResolveNode(const std::vector<DimensionFilter>& filters) const;

  /// Computes the `horizon` forecasts of a node via its stored scheme.
  /// Counts as a query in stats() (used by the Figure 9(b) bench to bypass
  /// SQL parsing).
  Result<std::vector<double>> ForecastNode(NodeId node, std::size_t horizon);

  /// Interval forecasts for a node at the given confidence level. The
  /// variance of a derived scheme is k^2 * sum of the source model
  /// variances (sources treated as independent). Fails when some source
  /// model does not support variances.
  Result<std::vector<ForecastInterval>> ForecastNodeWithIntervals(
      NodeId node, std::size_t horizon, double confidence = 0.95);

  // --------------------------------------------------------- maintenance

  /// Inserts one new fact for a base cell identified by its level-0 value
  /// names (ordered by dimension). Values are buffered per time stamp; when
  /// every base series has a value for the next period, time advances.
  Status InsertFact(const std::vector<std::string>& base_values,
                    std::int64_t time, double value);

  /// Same, addressing the base node directly.
  Status InsertFact(NodeId base_node, std::int64_t time, double value);

  /// Number of buffered (not yet applied) inserts.
  std::size_t pending_inserts() const;

 private:
  /// Scheme-based forecast without stats accounting (shared by Execute and
  /// ForecastNode).
  Result<std::vector<double>> ForecastNodeInternal(NodeId node,
                                                   std::size_t horizon);

  struct LiveModel {
    std::unique_ptr<ForecastModel> model;
    double creation_seconds = 0.0;
    bool invalid = false;
    std::size_t updates_since_estimate = 0;
  };

  /// Applies every complete buffered batch at the current frontier.
  Status AdvanceWhileComplete();

  /// Re-estimates an invalid model on the full stored history.
  Status EnsureValid(NodeId node, LiveModel& live);

  /// Current derivation weight from full-history sums.
  double CurrentWeight(const std::vector<NodeId>& sources, NodeId target) const;

  TimeSeriesGraph graph_;
  EngineOptions options_;
  EngineStats stats_;

  /// scheme_[node] = source nodes (empty = uncovered).
  std::vector<std::vector<NodeId>> schemes_;
  std::unordered_map<NodeId, LiveModel> models_;
  /// Full-history sum per node, maintained incrementally on time advance.
  std::vector<double> history_sums_;

  /// Insert buffer: time -> per-base-slot pending values.
  std::map<std::int64_t, std::vector<std::optional<double>>> pending_;
  std::unordered_map<NodeId, std::size_t> base_slot_;
};

}  // namespace f2db

#endif  // F2DB_ENGINE_ENGINE_H_
