// F2DB engine: forecast query processing and model maintenance over a
// stored model configuration (Section V).
//
// This is the embedded stand-in for the paper's PostgreSQL extension. It
// owns the time series data (the fact cube), the configuration (schemes +
// live models), and implements:
//   - the Forecast Query Processor: a query resolves its graph node, loads
//     the node's derivation scheme and the required models, and computes
//     forecasts WITHOUT touching the base fact data;
//   - the Maintenance Processor: inserts are batched until a new value is
//     available for every base series, then time advances through the whole
//     graph at once; model states and derivation weights are updated
//     incrementally; parameter re-estimation is delayed until an invalid
//     model is actually referenced by a query (lazy re-estimation).
//
// Concurrency model (see DESIGN.md, "Engine concurrency model"): the engine
// is split into three layers.
//   1. A const, lock-free QUERY layer (Execute, Explain, ForecastNode,
//      ForecastNodeWithIntervals, ExportCatalog): each call pins the
//      current EngineSnapshot with one atomic load and computes entirely
//      against that immutable state. Any number of query threads may run
//      concurrently with each other and with maintenance.
//   2. A MAINTENANCE layer (InsertFact, LoadConfiguration, LoadCatalog)
//      serialized behind a writer mutex: it builds the successor snapshot
//      off to the side (copy-on-write) and installs it with one atomic
//      store. Readers mid-query keep the old snapshot alive.
//   3. A STATS layer of relaxed atomic counters, updated from both sides
//      without locks.
// Lazy re-estimation follows the same rule: a query that references an
// invalid model fits a fresh clone against its snapshot's history and
// publishes the result copy-on-write; the published entry never mutates.

#ifndef F2DB_ENGINE_ENGINE_H_
#define F2DB_ENGINE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/concurrent.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/configuration.h"
#include "core/evaluator.h"
#include "cube/graph.h"
#include "engine/catalog.h"
#include "engine/query.h"
#include "engine/snapshot.h"
#include "ts/intervals.h"
#include "ts/model.h"

namespace f2db {

/// Engine tuning knobs. Immutable once the engine is constructed — live
/// mutation would race with the concurrent query path.
struct EngineOptions {
  /// Threshold-based invalidation: a model is marked invalid after this
  /// many incremental updates and re-estimated on next use. 0 disables
  /// re-estimation entirely.
  std::size_t reestimate_after_updates = 0;
  /// Worker threads for maintenance fan-out (model catch-up on
  /// configuration load, per-advance incremental model updates).
  /// 1 = serial, 0 = ThreadPool::DefaultConcurrency().
  std::size_t maintenance_threads = 1;
};

/// Counter values exposed for benchmarking (Figure 9(b)). This is a plain
/// value snapshot; the live counters are relaxed atomics, so the fields
/// are individually exact but not mutually consistent while threads run.
struct EngineStats {
  std::size_t queries = 0;
  std::size_t inserts = 0;
  std::size_t time_advances = 0;
  std::size_t reestimates = 0;
  double total_query_seconds = 0.0;
  double total_maintenance_seconds = 0.0;
};

/// One output row of a forecast query.
struct ForecastRow {
  std::int64_t time = 0;
  double value = 0.0;
  /// Prediction interval bounds; meaningful when has_interval is true
  /// (WITH INTERVALS queries).
  double lower = 0.0;
  double upper = 0.0;
  bool has_interval = false;
};

/// Result of a forecast query.
struct QueryResult {
  NodeId node = 0;          ///< The graph node the query resolved to.
  std::vector<ForecastRow> rows;
};

/// Plan description produced by EXPLAIN (Section V: a forecast query is
/// rewritten to access the stored time series graph and models).
struct ExplainResult {
  NodeId node = 0;
  std::string node_name;
  /// The stored derivation scheme sources and the current weight.
  std::vector<NodeId> sources;
  double weight = 0.0;
  /// Human-readable model description per source ("node 7: arima, 5 params").
  std::vector<std::string> source_models;
  std::size_t horizon = 0;
};

/// The embedded forecast-enabled database engine.
class F2dbEngine {
 public:
  /// Takes ownership of the loaded fact cube (aggregates built).
  explicit F2dbEngine(TimeSeriesGraph graph, EngineOptions options = {});

  /// The graph of the CURRENT snapshot. The reference stays valid until the
  /// next maintenance publication — a single-threaded convenience. Code
  /// that runs concurrently with maintenance must pin snapshot() instead.
  const TimeSeriesGraph& graph() const;

  /// Value snapshot of the engine counters (safe to call concurrently).
  EngineStats stats() const;

  const EngineOptions& options() const { return options_; }

  /// Pins the current published state. All query entry points are
  /// equivalent to pinning a snapshot and running against it; callers that
  /// need repeatable reads across several queries pin one snapshot and use
  /// the snapshot-taking overloads below.
  SnapshotPtr snapshot() const { return LoadSnapshot(); }

  // -------------------------------------------------- configuration load

  /// Installs an advisor/baseline configuration: schemes are copied, every
  /// uncovered node receives a fallback scheme (nearest model node), and
  /// the models are caught up from their training state to the full stored
  /// history via incremental updates. Serialized with all maintenance; on
  /// failure the previous state stays published untouched.
  Status LoadConfiguration(const ModelConfiguration& config,
                           const ConfigurationEvaluator& evaluator);

  /// Restores a configuration from catalog tables (Save/Load round trip).
  /// Transactional like LoadConfiguration.
  Status LoadCatalog(const ConfigurationCatalog& catalog);

  /// Exports the current configuration as catalog tables.
  Result<ConfigurationCatalog> ExportCatalog() const;

  /// Number of live models.
  std::size_t num_models() const { return LoadSnapshot()->models.size(); }

  // ------------------------------------------------------------- queries

  /// Parses and executes a forecast query.
  Result<QueryResult> ExecuteSql(const std::string& sql) const;

  /// Executes a parsed forecast query against the current snapshot.
  Result<QueryResult> Execute(const ForecastQuery& query) const;

  /// Describes the execution plan of a forecast query without computing
  /// forecasts: the resolved node, its stored derivation scheme, the
  /// current derivation weight, and the source models.
  Result<ExplainResult> Explain(const ForecastQuery& query) const;

  /// Parses and executes ANY statement of the dialect (SELECT / INSERT /
  /// EXPLAIN SELECT) and renders the outcome as display text — the
  /// interactive shell entry point. Non-const: INSERT enters maintenance.
  Result<std::string> ExecuteStatementText(const std::string& sql);

  /// Resolves WHERE filters to a graph node (unfiltered dimensions = ALL).
  Result<NodeId> ResolveNode(const std::vector<DimensionFilter>& filters) const;

  /// Computes the `horizon` forecasts of a node via its stored scheme.
  /// Counts as a query in stats() (used by the Figure 9(b) bench to bypass
  /// SQL parsing).
  Result<std::vector<double>> ForecastNode(NodeId node,
                                           std::size_t horizon) const;

  /// Same, against an explicitly pinned snapshot (repeatable reads: the
  /// same snapshot always yields the same forecast).
  Result<std::vector<double>> ForecastNode(const SnapshotPtr& snapshot,
                                           NodeId node,
                                           std::size_t horizon) const;

  /// Interval forecasts for a node at the given confidence level. The
  /// variance of a derived scheme is k^2 * sum of the source model
  /// variances (sources treated as independent). Fails when some source
  /// model does not support variances.
  Result<std::vector<ForecastInterval>> ForecastNodeWithIntervals(
      NodeId node, std::size_t horizon, double confidence = 0.95) const;

  // --------------------------------------------------------- maintenance

  /// Inserts one new fact for a base cell identified by its level-0 value
  /// names (ordered by dimension). Values are buffered per time stamp; when
  /// every base series has a value for the next period, time advances.
  Status InsertFact(const std::vector<std::string>& base_values,
                    std::int64_t time, double value);

  /// Same, addressing the base node directly.
  Status InsertFact(NodeId base_node, std::int64_t time, double value);

  /// Number of buffered (not yet applied) inserts.
  std::size_t pending_inserts() const;

 private:
  /// Live counters behind stats(): relaxed atomics, lock-free on both the
  /// query and the maintenance side.
  struct StatsCounters {
    RelaxedCounter queries;
    RelaxedCounter inserts;
    RelaxedCounter time_advances;
    RelaxedCounter reestimates;
    RelaxedAccumulator query_seconds;
    RelaxedAccumulator maintenance_seconds;
  };

  SnapshotPtr LoadSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Installs `next` as the current snapshot. Caller holds writer_mutex_.
  /// Const because query threads publish re-estimates too.
  void Publish(std::shared_ptr<EngineSnapshot> next) const;

  /// Scheme-based forecast against one snapshot (shared by Execute and
  /// ForecastNode; no stats accounting).
  Result<std::vector<double>> ForecastInternal(const SnapshotPtr& snapshot,
                                               NodeId node,
                                               std::size_t horizon) const;

  /// Interval variant of ForecastInternal.
  Result<std::vector<ForecastInterval>> ForecastIntervalsInternal(
      const SnapshotPtr& snapshot, NodeId node, std::size_t horizon,
      double confidence) const;

  /// Returns a valid (estimated) model for a scheme source. When the
  /// snapshot's entry is flagged invalid, fits a fresh clone on the
  /// snapshot's history and offers it for publication (lazy re-estimation,
  /// copy-on-write) — the returned model always matches `snapshot`'s data.
  Result<std::shared_ptr<const ForecastModel>> ValidSourceModel(
      const SnapshotPtr& snapshot, NodeId source) const;

  /// Publishes a re-estimated model entry unless maintenance has replaced
  /// the entry since `expected` was read (then the refit is discarded).
  void OfferReestimate(NodeId node,
                       const std::shared_ptr<const LiveModel>& expected,
                       std::shared_ptr<const LiveModel> fresh) const;

  /// Applies every complete buffered batch at the current frontier and
  /// publishes one successor snapshot. Caller holds writer_mutex_.
  Status AdvanceWhileCompleteLocked();

  /// The maintenance fan-out pool (nullptr = serial maintenance).
  ThreadPool* MaintenancePool() const;

  const EngineOptions options_;
  mutable StatsCounters stats_;

  /// The published state; queries load it, maintenance (and the install
  /// step of query-side re-estimation) stores it.
  mutable std::atomic<SnapshotPtr> snapshot_;

  /// Serializes every state publication: maintenance end-to-end, and the
  /// (brief) install step of query-side re-estimation.
  mutable std::mutex writer_mutex_;

  /// Lazily created fan-out pool for maintenance work.
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable std::once_flag pool_once_;

  // ---- maintenance-only state below (guarded by writer_mutex_) ----

  /// Insert buffer: time -> per-base-slot pending values.
  std::map<std::int64_t, std::vector<std::optional<double>>> pending_;
  std::unordered_map<NodeId, std::size_t> base_slot_;
};

}  // namespace f2db

#endif  // F2DB_ENGINE_ENGINE_H_
