// Write-ahead log: the durability substrate of the engine (DESIGN.md §10).
//
// Every state-changing maintenance operation — fact inserts, configuration
// (catalog DDL) installs, lazy-refit model publications, and quarantine
// transitions — is appended to the WAL *before* the in-memory snapshot is
// published, so a crash can always be replayed from the last checkpoint
// plus the WAL tail. Records are length-prefixed and CRC32C-framed:
//
//   file header:  "F2DBWAL" | version byte (kWalFormatVersion) |
//                 u64 epoch (little-endian)
//   record:       u32 length | u32 crc32c(type+payload) | u8 type | payload
//
// The log is segmented by EPOCH: a checkpoint rotates appends into
// wal-<epoch+1>.log, writes the snapshot, and deletes the older segments
// only after the checkpoint file is durable — so at every instant the data
// directory holds a consistent (checkpoint, WAL-suffix) pair. Recovery
// replays every segment with epoch >= the checkpoint's epoch in order and
// tolerates exactly one torn record at the tail of the LAST segment (the
// in-flight write the crash interrupted); a torn record anywhere else means
// lost history and fails recovery loudly instead of misparsing.
//
// Fsync policy (group commit): kNone never syncs (the OS flushes),
// kAlways syncs after every append (an acked insert is durable), kBatch
// syncs once per `batch_records` appends — the group-commit compromise
// measured by bench/bench_wal_throughput.cc. A failed fsync UNDOES the
// append (ftruncate back to the pre-append offset) so the caller's error
// and the on-disk state agree: a rejected operation is never replayed.

#ifndef F2DB_ENGINE_WAL_H_
#define F2DB_ENGINE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace f2db {

/// Fault-injection site: a WAL append fails before any byte is written
/// (disk-full analogue); the surrounding operation must be rejected with
/// kUnavailable and leave no state change in memory or on disk.
F2DB_DEFINE_FAILPOINT(kFailpointWalAppend, "engine.wal_append")
/// Fault-injection site: the post-append fsync fails; the append must be
/// rolled back (truncated) so the rejected operation is never replayed.
F2DB_DEFINE_FAILPOINT(kFailpointWalFsync, "engine.wal_fsync")

/// On-disk format version; bumped on any layout change so old binaries
/// fail loudly instead of misparsing (checked by the golden-file tests).
inline constexpr std::uint8_t kWalFormatVersion = 1;

/// When appended records are flushed to stable storage.
enum class FsyncPolicy {
  kNone,    ///< Never fsync; durability is best-effort (OS page cache).
  kBatch,   ///< Group commit: fsync every `wal_batch_records` appends.
  kAlways,  ///< fsync after every append; an acked operation is durable.
};

/// Stable display name ("none", "batch", "always").
const char* FsyncPolicyName(FsyncPolicy policy);

/// Parses "none" / "batch" / "always" (the CLI flag format).
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text);

/// One logical WAL record. Exactly the fields of its kind are meaningful.
struct WalRecord {
  enum class Kind : std::uint8_t {
    kInsert = 1,        ///< One accepted fact: node, time, value.
    kCatalog = 2,       ///< Full configuration install (serialized catalog).
    kModelInstall = 3,  ///< Lazy-refit publication: node + serialized model.
    kQuarantine = 4,    ///< Node crossed the quarantine threshold.
  };

  Kind kind = Kind::kInsert;
  std::uint32_t node = 0;      ///< kInsert / kModelInstall / kQuarantine.
  std::int64_t time = 0;       ///< kInsert.
  double value = 0.0;          ///< kInsert; kModelInstall: creation_seconds.
  std::uint64_t count = 0;     ///< kQuarantine: refit failures at transition.
  std::string payload;         ///< kCatalog / kModelInstall: serialized text.

  static WalRecord Insert(std::uint32_t node, std::int64_t time, double value);
  static WalRecord Catalog(std::string serialized);
  static WalRecord ModelInstall(std::uint32_t node, double creation_seconds,
                                std::string serialized_model);
  static WalRecord Quarantine(std::uint32_t node, std::uint64_t failures);
};

/// Encodes one record into its framed wire form (length, CRC, type,
/// payload) — exposed for the format tests.
std::string EncodeWalRecord(const WalRecord& record);

/// Decodes the body of a framed record (type byte + payload, CRC already
/// verified by the reader).
Result<WalRecord> DecodeWalRecordBody(std::string_view body);

/// The WAL file of `epoch` inside `dir` ("<dir>/wal-00000042.log").
std::string WalPath(const std::string& dir, std::uint64_t epoch);

/// Epochs of every wal-*.log inside `dir`, sorted ascending.
Result<std::vector<std::uint64_t>> ListWalEpochs(const std::string& dir);

/// Outcome of reading one WAL segment.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// True when the segment ends in a torn record (short frame or CRC
  /// mismatch at the tail); `valid_bytes` is then the offset of the tear.
  bool torn_tail = false;
  /// Offset one past the last fully valid record (header included).
  std::uint64_t valid_bytes = 0;
  std::uint64_t epoch = 0;
};

/// Reads every valid record of one segment. A torn tail is reported, not an
/// error; a missing file, a bad header, or a version mismatch is an error.
Result<WalReadResult> ReadWalSegment(const std::string& path);

/// Appends framed records to one WAL segment. Not thread-safe: the engine
/// serializes all appends behind its writer mutex.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates segment `epoch` inside `dir` (fails when it already exists —
  /// epochs are never reused) and writes the header.
  static Result<WalWriter> Create(const std::string& dir, std::uint64_t epoch,
                                  FsyncPolicy policy,
                                  std::size_t batch_records);

  /// Reopens an existing segment for append after recovery, truncating a
  /// torn tail at `valid_bytes` first.
  static Result<WalWriter> Reopen(const std::string& dir, std::uint64_t epoch,
                                  std::uint64_t valid_bytes,
                                  FsyncPolicy policy,
                                  std::size_t batch_records);

  bool open() const { return fd_ >= 0; }
  std::uint64_t epoch() const { return epoch_; }

  /// Framed append + policy-driven sync. On an fsync failure the appended
  /// bytes are truncated away before the error returns, so disk and caller
  /// agree the record does not exist.
  Status Append(const WalRecord& record);

  /// Forces an fsync of everything appended so far (checkpoint rotation
  /// and clean shutdown call this regardless of policy).
  Status Sync();

  /// Closes the segment (final Sync unless the policy is kNone).
  void Close();

  /// Records appended through this writer since it was opened.
  std::uint64_t records_appended() const { return records_appended_; }
  /// Bytes appended through this writer since it was opened.
  std::uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  WalWriter(int fd, std::uint64_t epoch, std::uint64_t offset,
            FsyncPolicy policy, std::size_t batch_records)
      : fd_(fd),
        epoch_(epoch),
        offset_(offset),
        policy_(policy),
        batch_records_(batch_records) {}

  int fd_ = -1;
  std::uint64_t epoch_ = 0;
  /// Current end-of-log offset (the rollback point of a failed sync).
  std::uint64_t offset_ = 0;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  std::size_t batch_records_ = 64;
  std::size_t unsynced_records_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
};

/// fsyncs the directory itself so a rename/create inside it is durable.
Status SyncDirectory(const std::string& dir);

}  // namespace f2db

#endif  // F2DB_ENGINE_WAL_H_
