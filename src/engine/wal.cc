#include "engine/wal.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/crc32c.h"

namespace f2db {
namespace {

constexpr char kWalMagic[7] = {'F', '2', 'D', 'B', 'W', 'A', 'L'};
/// magic + version byte + u64 epoch.
constexpr std::size_t kWalHeaderBytes = sizeof(kWalMagic) + 1 + 8;
/// u32 length + u32 crc.
constexpr std::size_t kFramePrefixBytes = 8;

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

std::uint32_t GetU32(std::string_view in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(std::string_view in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

double GetF64(std::string_view in, std::size_t at) {
  const std::uint64_t bits = GetU64(in, at);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status WriteAllFd(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("wal write(): ") +
                               ::strerror(errno));
  }
  return Status::OK();
}

Status FsyncFd(int fd, const char* what) {
  if (failpoint::Triggered(kFailpointWalFsync)) {
    return failpoint::InjectedFailure(kFailpointWalFsync);
  }
  if (::fsync(fd) != 0) {
    return Status::Unavailable(std::string(what) + " fsync(): " +
                               ::strerror(errno));
  }
  return Status::OK();
}

std::string EncodeWalHeader(std::uint64_t epoch) {
  std::string out;
  out.append(kWalMagic, sizeof(kWalMagic));
  out.push_back(static_cast<char>(kWalFormatVersion));
  PutU64(&out, epoch);
  return out;
}

/// The type byte + payload that the record CRC covers.
std::string EncodeWalBody(const WalRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(record.kind));
  switch (record.kind) {
    case WalRecord::Kind::kInsert:
      PutU32(&body, record.node);
      PutU64(&body, static_cast<std::uint64_t>(record.time));
      PutF64(&body, record.value);
      break;
    case WalRecord::Kind::kCatalog:
      body.append(record.payload);
      break;
    case WalRecord::Kind::kModelInstall:
      PutU32(&body, record.node);
      PutF64(&body, record.value);
      body.append(record.payload);
      break;
    case WalRecord::Kind::kQuarantine:
      PutU32(&body, record.node);
      PutU64(&body, record.count);
      break;
  }
  return body;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text) {
  if (text == "none") return FsyncPolicy::kNone;
  if (text == "batch") return FsyncPolicy::kBatch;
  if (text == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown fsync policy: \"" + text +
                                 "\" (want none|batch|always)");
}

WalRecord WalRecord::Insert(std::uint32_t node, std::int64_t time,
                            double value) {
  WalRecord r;
  r.kind = Kind::kInsert;
  r.node = node;
  r.time = time;
  r.value = value;
  return r;
}

WalRecord WalRecord::Catalog(std::string serialized) {
  WalRecord r;
  r.kind = Kind::kCatalog;
  r.payload = std::move(serialized);
  return r;
}

WalRecord WalRecord::ModelInstall(std::uint32_t node, double creation_seconds,
                                  std::string serialized_model) {
  WalRecord r;
  r.kind = Kind::kModelInstall;
  r.node = node;
  r.value = creation_seconds;
  r.payload = std::move(serialized_model);
  return r;
}

WalRecord WalRecord::Quarantine(std::uint32_t node, std::uint64_t failures) {
  WalRecord r;
  r.kind = Kind::kQuarantine;
  r.node = node;
  r.count = failures;
  return r;
}

std::string EncodeWalRecord(const WalRecord& record) {
  const std::string body = EncodeWalBody(record);
  std::string out;
  out.reserve(kFramePrefixBytes + body.size());
  PutU32(&out, static_cast<std::uint32_t>(body.size()));
  PutU32(&out, Crc32c(body));
  out.append(body);
  return out;
}

Result<WalRecord> DecodeWalRecordBody(std::string_view body) {
  if (body.empty()) return Status::InvalidArgument("empty WAL record body");
  WalRecord record;
  const auto kind = static_cast<WalRecord::Kind>(
      static_cast<unsigned char>(body[0]));
  record.kind = kind;
  const std::string_view rest = body.substr(1);
  switch (kind) {
    case WalRecord::Kind::kInsert:
      if (rest.size() != 4 + 8 + 8) {
        return Status::InvalidArgument("bad insert record size");
      }
      record.node = GetU32(rest, 0);
      record.time = static_cast<std::int64_t>(GetU64(rest, 4));
      record.value = GetF64(rest, 12);
      return record;
    case WalRecord::Kind::kCatalog:
      record.payload.assign(rest);
      return record;
    case WalRecord::Kind::kModelInstall:
      if (rest.size() < 4 + 8) {
        return Status::InvalidArgument("bad model-install record size");
      }
      record.node = GetU32(rest, 0);
      record.value = GetF64(rest, 4);
      record.payload.assign(rest.substr(12));
      return record;
    case WalRecord::Kind::kQuarantine:
      if (rest.size() != 4 + 8) {
        return Status::InvalidArgument("bad quarantine record size");
      }
      record.node = GetU32(rest, 0);
      record.count = GetU64(rest, 4);
      return record;
  }
  return Status::InvalidArgument("unknown WAL record kind " +
                                 std::to_string(static_cast<int>(kind)));
}

std::string WalPath(const std::string& dir, std::uint64_t epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(epoch));
  return dir + "/" + name;
}

Result<std::vector<std::uint64_t>> ListWalEpochs(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("cannot open data dir: " + dir + ": " +
                            ::strerror(errno));
  }
  std::vector<std::uint64_t> epochs;
  while (dirent* entry = ::readdir(d)) {
    unsigned long long epoch = 0;
    int consumed = 0;
    if (std::sscanf(entry->d_name, "wal-%8llu.log%n", &epoch, &consumed) == 1 &&
        consumed == static_cast<int>(std::strlen(entry->d_name))) {
      epochs.push_back(epoch);
    }
  }
  ::closedir(d);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Result<WalReadResult> ReadWalSegment(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open WAL segment " + path + ": " +
                            ::strerror(errno));
  }
  std::string data;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      data.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const Status status = Status::Unavailable(
          std::string("wal read(): ") + ::strerror(errno));
      ::close(fd);
      return status;
    }
    break;
  }
  ::close(fd);

  WalReadResult result;
  if (data.size() < kWalHeaderBytes ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument("not an f2db WAL segment: " + path);
  }
  const auto version =
      static_cast<std::uint8_t>(data[sizeof(kWalMagic)]);
  if (version != kWalFormatVersion) {
    return Status::InvalidArgument(
        "WAL format version mismatch in " + path + ": file has v" +
        std::to_string(version) + ", this build reads v" +
        std::to_string(kWalFormatVersion));
  }
  result.epoch = GetU64(data, sizeof(kWalMagic) + 1);

  std::size_t pos = kWalHeaderBytes;
  result.valid_bytes = pos;
  while (pos < data.size()) {
    if (data.size() - pos < kFramePrefixBytes) {
      result.torn_tail = true;  // partial length/CRC prefix
      break;
    }
    const std::uint32_t length = GetU32(data, pos);
    const std::uint32_t crc = GetU32(data, pos + 4);
    if (length == 0 || data.size() - pos - kFramePrefixBytes < length) {
      result.torn_tail = true;  // record body cut short
      break;
    }
    const std::string_view body(data.data() + pos + kFramePrefixBytes, length);
    if (Crc32c(body) != crc) {
      result.torn_tail = true;  // bits of the body never hit the platter
      break;
    }
    auto record = DecodeWalRecordBody(body);
    if (!record.ok()) {
      // A valid CRC with an undecodable body is corruption the framing
      // cannot explain — fail loudly rather than dropping history.
      return Status::Internal("corrupt WAL record in " + path + " at offset " +
                              std::to_string(pos) + ": " +
                              record.status().message());
    }
    result.records.push_back(std::move(record).value());
    pos += kFramePrefixBytes + length;
    result.valid_bytes = pos;
  }
  return result;
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      epoch_(other.epoch_),
      offset_(other.offset_),
      policy_(other.policy_),
      batch_records_(other.batch_records_),
      unsynced_records_(other.unsynced_records_),
      records_appended_(other.records_appended_),
      bytes_appended_(other.bytes_appended_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    epoch_ = other.epoch_;
    offset_ = other.offset_;
    policy_ = other.policy_;
    batch_records_ = other.batch_records_;
    unsynced_records_ = other.unsynced_records_;
    records_appended_ = other.records_appended_;
    bytes_appended_ = other.bytes_appended_;
    other.fd_ = -1;
  }
  return *this;
}

Result<WalWriter> WalWriter::Create(const std::string& dir,
                                    std::uint64_t epoch, FsyncPolicy policy,
                                    std::size_t batch_records) {
  const std::string path = WalPath(dir, epoch);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot create WAL segment " + path + ": " +
                               ::strerror(errno));
  }
  const std::string header = EncodeWalHeader(epoch);
  Status written = WriteAllFd(fd, header.data(), header.size());
  if (written.ok()) written = FsyncFd(fd, "wal header");
  if (written.ok()) written = SyncDirectory(dir);
  if (!written.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return written;
  }
  return WalWriter(fd, epoch, header.size(), policy, batch_records);
}

Result<WalWriter> WalWriter::Reopen(const std::string& dir,
                                    std::uint64_t epoch,
                                    std::uint64_t valid_bytes,
                                    FsyncPolicy policy,
                                    std::size_t batch_records) {
  const std::string path = WalPath(dir, epoch);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Unavailable("cannot reopen WAL segment " + path + ": " +
                               ::strerror(errno));
  }
  // Cut the torn tail before the first new append lands behind it.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    const Status status = Status::Unavailable(
        "cannot truncate torn WAL tail in " + path + ": " + ::strerror(errno));
    ::close(fd);
    return status;
  }
  return WalWriter(fd, epoch, valid_bytes, policy, batch_records);
}

Status WalWriter::Append(const WalRecord& record) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  F2DB_INJECT_FAILPOINT(kFailpointWalAppend);
  const std::string frame = EncodeWalRecord(record);
  F2DB_RETURN_IF_ERROR(WriteAllFd(fd_, frame.data(), frame.size()));
  bool want_sync = policy_ == FsyncPolicy::kAlways;
  if (policy_ == FsyncPolicy::kBatch) {
    want_sync = ++unsynced_records_ >= std::max<std::size_t>(1, batch_records_);
  }
  if (want_sync) {
    const Status synced = FsyncFd(fd_, "wal");
    if (!synced.ok()) {
      // Roll the append back: the record was rejected, so it must not be
      // replayed after a later crash. If even the rollback fails the
      // segment is unusable; close it so every further append is refused.
      if (::ftruncate(fd_, static_cast<off_t>(offset_)) != 0 ||
          ::lseek(fd_, 0, SEEK_END) < 0) {
        ::close(fd_);
        fd_ = -1;
      }
      return synced;
    }
    unsynced_records_ = 0;
  }
  offset_ += frame.size();
  ++records_appended_;
  bytes_appended_ += frame.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  F2DB_RETURN_IF_ERROR(FsyncFd(fd_, "wal"));
  unsynced_records_ = 0;
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ < 0) return;
  if (policy_ != FsyncPolicy::kNone) ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
}

Status SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Unavailable("cannot open dir for fsync: " + dir + ": " +
                               ::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable("dir fsync(): " + std::string(::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace f2db
