// Immutable engine state snapshots (the engine's concurrency substrate).
//
// The engine separates a lock-free read path from a serialized write path:
// everything a forecast query touches — the time series graph (structure
// and series data), the per-node derivation schemes, the full-history sums
// behind the derivation weights, and the live model states — lives in one
// immutable EngineSnapshot published through an atomic shared_ptr. A query
// pins the current snapshot once and computes entirely against it, so it
// never observes intermediate maintenance state; maintenance builds the
// next snapshot off to the side and installs it with a single atomic store
// (copy-on-write). Old snapshots stay alive for as long as some reader
// still holds them.

#ifndef F2DB_ENGINE_SNAPSHOT_H_
#define F2DB_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cube/graph.h"
#include "ts/model.h"

namespace f2db {

/// One published model state. Frozen after publication: maintenance clones
/// the model, advances the clone, and publishes a fresh entry; queries only
/// call the const members (Forecast, ForecastVariance), which are safe to
/// run concurrently on a shared model.
struct LiveModel {
  std::shared_ptr<const ForecastModel> model;
  /// Wall-clock seconds spent fitting (the paper's maintenance-cost proxy).
  double creation_seconds = 0.0;
  /// Threshold invalidation: set by maintenance, resolved by the first
  /// query that re-estimates the model (lazy re-estimation). A query that
  /// sees this flag fits a fresh clone on the snapshot's history and
  /// publishes it copy-on-write — the flagged entry itself never mutates.
  bool invalid = false;
  /// Incremental updates since the last parameter estimation.
  std::size_t updates_since_estimate = 0;

  // ---- re-estimation failure bookkeeping (published copy-on-write like
  // every other field; see "Failure semantics" in DESIGN.md) ----

  /// Consecutive failed lazy re-estimation attempts since the last success
  /// or data advance.
  std::size_t refit_failures = 0;
  /// Set once refit_failures reaches the engine's quarantine threshold:
  /// queries stop retrying the fit and serve the degradation ladder until
  /// the next data advance resets the entry.
  bool quarantined = false;
  /// Engine-uptime seconds of the most recent failed refit attempt — the
  /// reference point for the retry backoff window.
  double last_refit_attempt_seconds = 0.0;
};

/// The complete immutable engine state at one point in time.
struct EngineSnapshot {
  /// Graph structure plus series data as of this snapshot's frontier.
  std::shared_ptr<const TimeSeriesGraph> graph;
  /// schemes[node] = stored derivation sources (empty = uncovered).
  std::vector<std::vector<NodeId>> schemes;
  /// Full-history sum per node — numerator/denominator of the derivation
  /// weight (Eq. 3), maintained incrementally on time advance.
  std::vector<double> history_sums;
  /// Published model state per model node.
  std::unordered_map<NodeId, std::shared_ptr<const LiveModel>> models;
  /// Monotone publication counter (diagnostics; successor snapshots have
  /// strictly larger versions).
  std::uint64_t version = 0;

  /// Derivation weight k = h_target / sum h_sources over this snapshot's
  /// history sums (Eq. 3); 0 when the denominator vanishes.
  double Weight(const std::vector<NodeId>& sources, NodeId target) const;

  /// The model entry stored for `node`, or nullptr.
  std::shared_ptr<const LiveModel> FindModel(NodeId node) const;

  /// Successor builder: shares the graph and every model entry with this
  /// snapshot and bumps the version. The caller replaces what changed
  /// (swap the graph, reassign model entries) before publishing.
  std::shared_ptr<EngineSnapshot> CopyForWrite() const;
};

/// How queries and maintenance hold a published snapshot.
using SnapshotPtr = std::shared_ptr<const EngineSnapshot>;

}  // namespace f2db

#endif  // F2DB_ENGINE_SNAPSHOT_H_
