#include "engine/stats_export.h"

#include <cmath>
#include <cstdio>

#include "engine/engine.h"

namespace f2db {
namespace {

/// Renders a double the way Prometheus expects: integers without a
/// fractional part, everything else with enough digits to round-trip.
std::string RenderValue(double value) {
  if (std::floor(value) == value && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendFamilyHeader(std::string* out, std::string_view name,
                        std::string_view help, std::string_view type) {
  out->append("# HELP ").append(name).append(" ");
  out->append(PrometheusEscapeHelp(help)).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

}  // namespace

std::string PrometheusEscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendPrometheusCounter(std::string* out, std::string_view name,
                             std::string_view help, double value) {
  AppendFamilyHeader(out, name, help, "counter");
  out->append(name).append(" ").append(RenderValue(value)).append("\n");
}

void AppendPrometheusGauge(std::string* out, std::string_view name,
                           std::string_view help, double value) {
  AppendFamilyHeader(out, name, help, "gauge");
  out->append(name).append(" ").append(RenderValue(value)).append("\n");
}

std::string EngineStats::ToPrometheusText() const {
  std::string out;
  out.reserve(2048);
  AppendPrometheusCounter(&out, "f2db_queries_total",
                          "Forecast queries served.",
                          static_cast<double>(queries));
  AppendPrometheusCounter(&out, "f2db_inserts_total",
                          "Facts accepted into the insert buffer.",
                          static_cast<double>(inserts));
  AppendPrometheusCounter(&out, "f2db_time_advances_total",
                          "Batched advances of the cube's time frontier.",
                          static_cast<double>(time_advances));
  AppendPrometheusCounter(&out, "f2db_reestimates_total",
                          "Lazy model re-estimations published.",
                          static_cast<double>(reestimates));
  AppendPrometheusCounter(&out, "f2db_refit_failures_total",
                          "Lazy re-estimation attempts that returned non-OK.",
                          static_cast<double>(refit_failures));
  AppendPrometheusCounter(&out, "f2db_quarantines_total",
                          "Nodes quarantined after consecutive refit failures.",
                          static_cast<double>(quarantines));

  AppendFamilyHeader(&out, "f2db_degraded_rows_total",
                     "Forecast rows served per degradation rung.", "counter");
  const struct {
    const char* rung;
    std::size_t count;
  } rungs[] = {{"stale", degraded_rows_stale},
               {"derived", degraded_rows_derived},
               {"naive", degraded_rows_naive}};
  for (const auto& entry : rungs) {
    out.append("f2db_degraded_rows_total{rung=\"")
        .append(PrometheusEscapeLabelValue(entry.rung))
        .append("\"} ")
        .append(RenderValue(static_cast<double>(entry.count)))
        .append("\n");
  }

  AppendPrometheusCounter(&out, "f2db_query_seconds_total",
                          "Wall-clock seconds spent in the query layer.",
                          total_query_seconds);
  AppendPrometheusCounter(&out, "f2db_maintenance_seconds_total",
                          "Wall-clock seconds spent in maintenance.",
                          total_maintenance_seconds);

  AppendPrometheusCounter(&out, "f2db_wal_records_appended_total",
                          "WAL records appended by this process.",
                          static_cast<double>(wal_records_appended));
  AppendPrometheusCounter(&out, "f2db_wal_bytes_total",
                          "WAL bytes appended by this process.",
                          static_cast<double>(wal_bytes));
  AppendPrometheusCounter(&out, "f2db_wal_records_replayed_total",
                          "WAL records replayed by recovery at open.",
                          static_cast<double>(wal_records_replayed));
  AppendPrometheusGauge(&out, "f2db_torn_tail_detected",
                        "1 when recovery truncated a torn final WAL record.",
                        static_cast<double>(torn_tail_detected));
  AppendPrometheusCounter(&out, "f2db_checkpoints_completed_total",
                          "Checkpoints written successfully.",
                          static_cast<double>(checkpoints_completed));
  AppendPrometheusCounter(&out, "f2db_checkpoint_failures_total",
                          "Checkpoint attempts that failed.",
                          static_cast<double>(checkpoint_failures));
  AppendPrometheusGauge(&out, "f2db_recovery_duration_ms",
                        "Milliseconds recovery took when the engine opened.",
                        recovery_duration_ms);
  AppendPrometheusGauge(&out, "f2db_last_checkpoint_age_seconds",
                        "Seconds since the last completed checkpoint; -1 "
                        "when none completed yet.",
                        last_checkpoint_age_seconds);
  return out;
}

}  // namespace f2db
