#include "engine/stats_export.h"

#include <array>
#include <cmath>
#include <cstdio>

#include "engine/engine.h"

namespace f2db {
namespace {

/// Renders a double the way Prometheus expects: integers without a
/// fractional part, everything else with enough digits to round-trip.
std::string RenderValue(double value) {
  if (std::floor(value) == value && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendFamilyHeader(std::string* out, std::string_view name,
                        std::string_view help, std::string_view type) {
  out->append("# HELP ").append(name).append(" ");
  out->append(PrometheusEscapeHelp(help)).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

/// One scalar engine family: name, help, TYPE, and the field accessor.
/// Shared by the unsharded and the sharded renderer so the two expositions
/// can never drift apart.
struct EngineFamily {
  const char* name;
  const char* help;
  const char* type;
  double (*value)(const EngineStats&);
};

/// Families rendered BEFORE the degradation-rung breakdown (matching the
/// historical exposition order).
constexpr EngineFamily kHeadFamilies[] = {
    {"f2db_queries_total", "Forecast queries served.", "counter",
     [](const EngineStats& s) { return static_cast<double>(s.queries); }},
    {"f2db_inserts_total", "Facts accepted into the insert buffer.", "counter",
     [](const EngineStats& s) { return static_cast<double>(s.inserts); }},
    {"f2db_time_advances_total",
     "Batched advances of the cube's time frontier.", "counter",
     [](const EngineStats& s) { return static_cast<double>(s.time_advances); }},
    {"f2db_reestimates_total", "Lazy model re-estimations published.",
     "counter",
     [](const EngineStats& s) { return static_cast<double>(s.reestimates); }},
    {"f2db_refit_failures_total",
     "Lazy re-estimation attempts that returned non-OK.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.refit_failures);
     }},
    {"f2db_quarantines_total",
     "Nodes quarantined after consecutive refit failures.", "counter",
     [](const EngineStats& s) { return static_cast<double>(s.quarantines); }},
};

/// Families rendered AFTER the degradation-rung breakdown.
constexpr EngineFamily kTailFamilies[] = {
    {"f2db_deadline_expired_queries_total",
     "Queries rejected because their deadline had already expired.",
     "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.deadline_expired_queries);
     }},
    {"f2db_brownout_refits_skipped_total",
     "Lazy re-estimations skipped by brownout-mode queries.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.brownout_refits_skipped);
     }},
    {"f2db_query_seconds_total",
     "Wall-clock seconds spent in the query layer.", "counter",
     [](const EngineStats& s) { return s.total_query_seconds; }},
    {"f2db_maintenance_seconds_total",
     "Wall-clock seconds spent in maintenance.", "counter",
     [](const EngineStats& s) { return s.total_maintenance_seconds; }},
    {"f2db_wal_records_appended_total",
     "WAL records appended by this process.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.wal_records_appended);
     }},
    {"f2db_wal_bytes_total", "WAL bytes appended by this process.", "counter",
     [](const EngineStats& s) { return static_cast<double>(s.wal_bytes); }},
    {"f2db_wal_records_replayed_total",
     "WAL records replayed by recovery at open.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.wal_records_replayed);
     }},
    {"f2db_torn_tail_detected",
     "1 when recovery truncated a torn final WAL record.", "gauge",
     [](const EngineStats& s) {
       return static_cast<double>(s.torn_tail_detected);
     }},
    {"f2db_checkpoints_completed_total", "Checkpoints written successfully.",
     "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.checkpoints_completed);
     }},
    {"f2db_checkpoint_failures_total", "Checkpoint attempts that failed.",
     "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.checkpoint_failures);
     }},
    {"f2db_recovery_duration_ms",
     "Milliseconds recovery took when the engine opened.", "gauge",
     [](const EngineStats& s) { return s.recovery_duration_ms; }},
    {"f2db_last_checkpoint_age_seconds",
     "Seconds since the last completed checkpoint; -1 when none completed "
     "yet.",
     "gauge",
     [](const EngineStats& s) { return s.last_checkpoint_age_seconds; }},
    {"f2db_segments_sealed_total",
     "Sealed segments written by this process.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.segments_sealed);
     }},
    {"f2db_segment_records_sealed_total",
     "Observations sealed into segments by this process.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.segment_records_sealed);
     }},
    {"f2db_segments_live",
     "Sealed segments the current manifest references.", "gauge",
     [](const EngineStats& s) {
       return static_cast<double>(s.segments_live);
     }},
    {"f2db_segment_live_bytes",
     "On-disk bytes of the live sealed-segment chain.", "gauge",
     [](const EngineStats& s) {
       return static_cast<double>(s.segment_live_bytes);
     }},
    {"f2db_compactions_completed_total",
     "Compactions that committed their manifest.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.compactions_completed);
     }},
    {"f2db_compaction_failures_total", "Compaction attempts that failed.",
     "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.compaction_failures);
     }},
    {"f2db_retention_segments_deleted_total",
     "Sealed segments deleted by retention.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.retention_segments_deleted);
     }},
    {"f2db_retention_records_dropped_total",
     "Observations dropped by retention.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.retention_records_dropped);
     }},
    {"f2db_segment_records_recovered_total",
     "Observations restored from sealed segments at open.", "counter",
     [](const EngineStats& s) {
       return static_cast<double>(s.segment_records_recovered);
     }},
};

/// The degradation-rung breakdown of one stats snapshot.
struct RungSample {
  const char* rung;
  std::size_t count;
};

std::array<RungSample, 3> Rungs(const EngineStats& stats) {
  return {{{"stale", stats.degraded_rows_stale},
           {"derived", stats.degraded_rows_derived},
           {"naive", stats.degraded_rows_naive}}};
}

constexpr const char* kDegradedName = "f2db_degraded_rows_total";
constexpr const char* kDegradedHelp =
    "Forecast rows served per degradation rung.";

}  // namespace

std::string PrometheusEscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendPrometheusCounter(std::string* out, std::string_view name,
                             std::string_view help, double value) {
  AppendFamilyHeader(out, name, help, "counter");
  out->append(name).append(" ").append(RenderValue(value)).append("\n");
}

void AppendPrometheusGauge(std::string* out, std::string_view name,
                           std::string_view help, double value) {
  AppendFamilyHeader(out, name, help, "gauge");
  out->append(name).append(" ").append(RenderValue(value)).append("\n");
}

std::string EngineStats::ToPrometheusText() const {
  std::string out;
  out.reserve(2048);
  for (const EngineFamily& family : kHeadFamilies) {
    AppendFamilyHeader(&out, family.name, family.help, family.type);
    out.append(family.name)
        .append(" ")
        .append(RenderValue(family.value(*this)))
        .append("\n");
  }

  AppendFamilyHeader(&out, kDegradedName, kDegradedHelp, "counter");
  for (const RungSample& entry : Rungs(*this)) {
    out.append(kDegradedName)
        .append("{rung=\"")
        .append(PrometheusEscapeLabelValue(entry.rung))
        .append("\"} ")
        .append(RenderValue(static_cast<double>(entry.count)))
        .append("\n");
  }

  for (const EngineFamily& family : kTailFamilies) {
    AppendFamilyHeader(&out, family.name, family.help, family.type);
    out.append(family.name)
        .append(" ")
        .append(RenderValue(family.value(*this)))
        .append("\n");
  }
  return out;
}

std::string ShardedEngineStatsPrometheusText(
    const std::vector<std::pair<std::string, EngineStats>>& shards,
    const EngineStats& total) {
  std::string out;
  out.reserve(2048 + 1024 * shards.size());
  const auto render_family = [&](const EngineFamily& family) {
    AppendFamilyHeader(&out, family.name, family.help, family.type);
    for (const auto& [label, stats] : shards) {
      out.append(family.name)
          .append("{shard=\"")
          .append(PrometheusEscapeLabelValue(label))
          .append("\"} ")
          .append(RenderValue(family.value(stats)))
          .append("\n");
    }
    out.append(family.name)
        .append(" ")
        .append(RenderValue(family.value(total)))
        .append("\n");
  };
  for (const EngineFamily& family : kHeadFamilies) render_family(family);

  AppendFamilyHeader(&out, kDegradedName, kDegradedHelp, "counter");
  for (const auto& [label, stats] : shards) {
    for (const RungSample& entry : Rungs(stats)) {
      out.append(kDegradedName)
          .append("{rung=\"")
          .append(PrometheusEscapeLabelValue(entry.rung))
          .append("\",shard=\"")
          .append(PrometheusEscapeLabelValue(label))
          .append("\"} ")
          .append(RenderValue(static_cast<double>(entry.count)))
          .append("\n");
    }
  }
  for (const RungSample& entry : Rungs(total)) {
    out.append(kDegradedName)
        .append("{rung=\"")
        .append(PrometheusEscapeLabelValue(entry.rung))
        .append("\"} ")
        .append(RenderValue(static_cast<double>(entry.count)))
        .append("\n");
  }

  for (const EngineFamily& family : kTailFamilies) render_family(family);
  return out;
}

}  // namespace f2db
