#include "engine/catalog.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace f2db {

void ConfigurationCatalog::Clear() {
  scheme_table_.clear();
  model_table_.clear();
}

std::string ConfigurationCatalog::SerializeToString() const {
  std::ostringstream out;
  out.precision(17);
  out << "f2db-catalog v1\n";
  out << "schemes " << scheme_table_.size() << "\n";
  for (const SchemeRow& row : scheme_table_) {
    out << row.target << " " << row.weight << " " << row.sources.size();
    for (NodeId s : row.sources) out << " " << s;
    out << "\n";
  }
  out << "models " << model_table_.size() << "\n";
  for (const ModelRow& row : model_table_) {
    out << row.node << " " << row.creation_seconds << " " << row.payload
        << "\n";
  }
  return out.str();
}

Status ConfigurationCatalog::ParseFromString(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "f2db-catalog v1") {
    return Status::InvalidArgument("not an f2db catalog: bad header");
  }
  Clear();

  std::size_t count = 0;
  std::string tag;
  in >> tag >> count;
  if (tag != "schemes") return Status::InvalidArgument("missing schemes table");
  scheme_table_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SchemeRow row;
    std::size_t num_sources = 0;
    in >> row.target >> row.weight >> num_sources;
    row.sources.resize(num_sources);
    for (std::size_t j = 0; j < num_sources; ++j) in >> row.sources[j];
    if (!in) return Status::InvalidArgument("truncated scheme table");
    scheme_table_.push_back(std::move(row));
  }

  in >> tag >> count;
  if (tag != "models") return Status::InvalidArgument("missing models table");
  std::getline(in, line);  // consume rest of the header line
  model_table_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated model table");
    }
    std::istringstream row_in(line);
    ModelRow row;
    row_in >> row.node >> row.creation_seconds >> row.payload;
    if (!row_in) return Status::InvalidArgument("bad model row: " + line);
    model_table_.push_back(std::move(row));
  }
  return Status::OK();
}

Status ConfigurationCatalog::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open catalog file: " + path);
  out << SerializeToString();
  if (!out) return Status::Internal("catalog write failed: " + path);
  return Status::OK();
}

Status ConfigurationCatalog::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open catalog file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Status status = ParseFromString(buffer.str());
  if (!status.ok() && status.code() == StatusCode::kInvalidArgument) {
    return Status::InvalidArgument(status.message() + ": " + path);
  }
  return status;
}

}  // namespace f2db
