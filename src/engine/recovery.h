// Crash recovery: checkpoint load + WAL tail replay (DESIGN.md §10).
//
// RunRecovery() owns the file-level recovery protocol so the engine only
// has to say how state is applied:
//   1. create the data directory on first use;
//   2. load the checkpoint if one exists (a checkpoint that exists but
//      fails its CRC/version check aborts recovery — the engine must never
//      start from silently wrong state);
//   3. delete WAL segments older than the checkpoint's epoch (redundant
//      segments whose deletion a previous crash interrupted);
//   4. replay every remaining segment in epoch order, tolerating exactly
//      one torn record at the tail of the NEWEST segment (the write a
//      crash interrupted); a tear anywhere else means lost history and
//      fails recovery loudly;
//   5. report where appends must continue (segment epoch + the byte offset
//      the torn tail was truncated to).
//
// The callbacks apply state mutations; RunRecovery never touches engine
// internals directly, which keeps the protocol testable against plain
// in-memory accumulators (see tests/integration/recovery_test.cc).

#ifndef F2DB_ENGINE_RECOVERY_H_
#define F2DB_ENGINE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "engine/checkpoint.h"
#include "engine/wal.h"

namespace f2db {

/// How the recovered state is applied (both optional; an unset callback
/// skips that phase, which the dry-run inspection tools use).
struct RecoveryCallbacks {
  /// Installs the checkpointed snapshot. Called at most once, before any
  /// WAL record.
  std::function<Status(CheckpointState&&)> apply_checkpoint;
  /// Applies one replayed WAL record, in log order.
  std::function<Status(const WalRecord&)> apply_record;
};

/// What recovery found — the source of the engine's recovery counters.
struct RecoveryInfo {
  bool checkpoint_loaded = false;
  std::uint64_t records_replayed = 0;
  /// A torn final record was detected (and truncated away on reopen).
  bool torn_tail_detected = false;
  /// Wall-clock seconds spent in recovery (exported as
  /// f2db_recovery_duration_ms).
  double recovery_seconds = 0.0;

  /// Segment appends continue on. When `create_segment` is true the
  /// segment does not exist yet (fresh directory); otherwise reopen it
  /// truncated to `append_valid_bytes`.
  std::uint64_t append_epoch = 1;
  std::uint64_t append_valid_bytes = 0;
  bool create_segment = true;
};

/// Runs the recovery protocol over `data_dir` (created when missing).
Result<RecoveryInfo> RunRecovery(const std::string& data_dir,
                                 const RecoveryCallbacks& callbacks);

}  // namespace f2db

#endif  // F2DB_ENGINE_RECOVERY_H_
