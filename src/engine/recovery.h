// Crash recovery: durable-artifact load + WAL tail replay (DESIGN.md §10,
// §13).
//
// RunRecovery() owns the file-level recovery protocol so the engine only
// has to say how state is applied:
//   1. create the data directory on first use;
//   2. load the checkpoint and the segment manifest if they exist (a
//      checkpoint that exists but fails its CRC/version check aborts
//      recovery — the engine must never start from silently wrong state;
//      an unreadable manifest falls back to the checkpoint, because WAL
//      epochs are only deleted after a manifest commit);
//   3. pick the base artifact: whichever of checkpoint / manifest carries
//      the strictly higher WAL epoch wins. A winning manifest restores
//      history by decoding the sealed segment chain (bulk load, no
//      per-record replay); when the chain fails validation, recovery
//      falls back to the checkpoint + full WAL replay;
//   4. delete WAL segments older than the base artifact's epoch
//      (redundant segments whose deletion a previous crash interrupted);
//   5. replay every remaining WAL segment in epoch order, tolerating
//      exactly one torn record at the tail of the NEWEST segment (the
//      write a crash interrupted); a tear anywhere else — or a missing
//      epoch — means lost history and fails recovery loudly;
//   6. report where appends must continue (segment epoch + the byte
//      offset the torn tail was truncated to).
//
// The callbacks apply state mutations; RunRecovery never touches engine
// internals directly, which keeps the protocol testable against plain
// in-memory accumulators (see tests/integration/recovery_test.cc).

#ifndef F2DB_ENGINE_RECOVERY_H_
#define F2DB_ENGINE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/checkpoint.h"
#include "engine/wal.h"
#include "storage/manifest.h"
#include "storage/segment.h"

namespace f2db {

/// How the recovered state is applied (all optional; an unset callback
/// skips that phase, which the dry-run inspection tools use). At most one
/// of apply_checkpoint / apply_segments is called, before any WAL record.
struct RecoveryCallbacks {
  /// Installs the checkpointed snapshot. `manifest` is the surviving
  /// segment manifest (nullptr when none): its retention offsets must be
  /// folded into the recomputed history sums, because retention may have
  /// trimmed the in-memory series before the checkpoint was taken.
  std::function<Status(CheckpointState&&, const storage::ManifestData*)>
      apply_checkpoint;
  /// Installs history decoded from the sealed segment chain. The chain is
  /// already CRC-verified and validated against the manifest (contiguous,
  /// ascending, consistent node sets).
  std::function<Status(const storage::ManifestData&,
                       std::vector<storage::SegmentData>&&)>
      apply_segments;
  /// Applies one replayed WAL record, in log order.
  std::function<Status(const WalRecord&)> apply_record;
};

/// What recovery found — the source of the engine's recovery counters.
struct RecoveryInfo {
  bool checkpoint_loaded = false;
  std::uint64_t records_replayed = 0;
  /// A torn final record was detected (and truncated away on reopen).
  bool torn_tail_detected = false;
  /// Wall-clock seconds spent in recovery (exported as
  /// f2db_recovery_duration_ms).
  double recovery_seconds = 0.0;

  /// Sealed segments decoded into state (0 when the checkpoint won or no
  /// manifest survived), and the observations they restored (summed over
  /// base series).
  std::uint64_t segments_loaded = 0;
  std::uint64_t segment_records_loaded = 0;
  /// A manifest existed but was unreadable or its chain failed
  /// validation, so recovery fell back to checkpoint + WAL replay (the
  /// half-written-segment crash tolerance).
  bool segment_fallback = false;

  /// Segment appends continue on. When `create_segment` is true the
  /// segment does not exist yet (fresh directory); otherwise reopen it
  /// truncated to `append_valid_bytes`.
  std::uint64_t append_epoch = 1;
  std::uint64_t append_valid_bytes = 0;
  bool create_segment = true;
};

/// Runs the recovery protocol over `data_dir` (created when missing).
Result<RecoveryInfo> RunRecovery(const std::string& data_dir,
                                 const RecoveryCallbacks& callbacks);

}  // namespace f2db

#endif  // F2DB_ENGINE_RECOVERY_H_
