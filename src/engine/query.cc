#include "engine/query.h"

#include <cctype>
#include <sstream>

#include "common/string_util.h"

namespace f2db {
namespace {

/// Untrusted-input guards: the parser fronts the network serving layer, so
/// a hostile statement must fail with a Status before it can cost memory.
/// kMaxStatementBytes bounds lexing work; kMaxHorizon bounds the forecast
/// buffers a single query may request downstream.
constexpr std::size_t kMaxStatementBytes = 64 * 1024;
constexpr std::size_t kMaxHorizon = 100000;

Status StatementTooLarge(std::size_t size) {
  return Status::InvalidArgument(
      "statement of " + std::to_string(size) + " bytes exceeds the " +
      std::to_string(kMaxStatementBytes) + "-byte limit");
}

enum class TokenKind { kIdent, kString, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
};

/// Splits the query text into tokens; quoted strings keep their content.
class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    std::size_t pos = 0;
    while (pos < input_.size()) {
      const char c = input_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (c == '\'') {
        std::string value;
        ++pos;
        while (pos < input_.size() && input_[pos] != '\'') {
          value.push_back(input_[pos++]);
        }
        if (pos >= input_.size()) {
          return Status::InvalidArgument("unterminated string literal");
        }
        ++pos;  // closing quote
        out.push_back({TokenKind::kString, std::move(value)});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos])) ||
                input_[pos] == '_')) {
          ident.push_back(input_[pos++]);
        }
        out.push_back({TokenKind::kIdent, std::move(ident)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string number;
        while (pos < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[pos])) ||
                input_[pos] == '.')) {
          number.push_back(input_[pos++]);
        }
        // Exponent suffix ([eE][+-]?digits). Consumed only when a digit
        // confirmably follows, so "1e" stays an error and "SELECT 1 e"
        // still lexes the identifier separately.
        if (pos < input_.size() &&
            (input_[pos] == 'e' || input_[pos] == 'E')) {
          std::size_t lookahead = pos + 1;
          if (lookahead < input_.size() &&
              (input_[lookahead] == '+' || input_[lookahead] == '-')) {
            ++lookahead;
          }
          if (lookahead < input_.size() &&
              std::isdigit(static_cast<unsigned char>(input_[lookahead]))) {
            while (pos < lookahead) number.push_back(input_[pos++]);
            while (pos < input_.size() &&
                   std::isdigit(static_cast<unsigned char>(input_[pos]))) {
              number.push_back(input_[pos++]);
            }
          }
        }
        out.push_back({TokenKind::kNumber, std::move(number)});
        continue;
      }
      if (c == '(' || c == ')' || c == '=' || c == '+' || c == ',' ||
          c == '*' || c == ';' || c == '-') {
        out.push_back({TokenKind::kSymbol, std::string(1, c)});
        ++pos;
        continue;
      }
      // Render control bytes (embedded NUL, raw binary) as a code point so
      // the error message itself stays printable text.
      if (std::isprint(static_cast<unsigned char>(c))) {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' in query");
      }
      const auto byte = static_cast<unsigned char>(c);
      return Status::InvalidArgument(
          "unexpected non-printable byte 0x" +
          std::string(1, "0123456789abcdef"[byte >> 4]) +
          std::string(1, "0123456789abcdef"[byte & 0xf]) + " in query");
    }
    out.push_back({TokenKind::kEnd, ""});
    return out;
  }

 private:
  const std::string& input_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseAny() {
    Statement statement;
    if (PeekKeyword("EXPLAIN")) {
      Advance();
      statement.kind = Statement::Kind::kExplain;
      F2DB_ASSIGN_OR_RETURN(statement.forecast, Parse());
      return statement;
    }
    if (PeekKeyword("INSERT")) {
      statement.kind = Statement::Kind::kInsert;
      F2DB_ASSIGN_OR_RETURN(statement.insert, ParseInsert());
      return statement;
    }
    statement.kind = Statement::Kind::kForecast;
    F2DB_ASSIGN_OR_RETURN(statement.forecast, Parse());
    return statement;
  }

  Result<InsertStatement> ParseInsert() {
    InsertStatement insert;
    F2DB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    F2DB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    F2DB_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
    (void)table;
    F2DB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    F2DB_RETURN_IF_ERROR(ExpectSymbol("("));
    // Quoted dimension values, then the time index, then the measure.
    while (Peek().kind == TokenKind::kString) {
      insert.base_values.push_back(Peek().text);
      Advance();
      F2DB_RETURN_IF_ERROR(ExpectSymbol(","));
    }
    if (insert.base_values.empty()) {
      return Status::InvalidArgument(
          "INSERT needs at least one quoted dimension value");
    }
    F2DB_ASSIGN_OR_RETURN(std::string time_text, ExpectNumber());
    F2DB_ASSIGN_OR_RETURN(insert.time, ParseInt(time_text));
    F2DB_RETURN_IF_ERROR(ExpectSymbol(","));
    F2DB_ASSIGN_OR_RETURN(std::string value_text, ExpectNumber());
    F2DB_ASSIGN_OR_RETURN(insert.value, ParseDouble(value_text));
    F2DB_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (Peek().kind == TokenKind::kSymbol && Peek().text == ";") Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing tokens after INSERT");
    }
    return insert;
  }

  Result<ForecastQuery> Parse() {
    ForecastQuery query;
    F2DB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    F2DB_RETURN_IF_ERROR(ExpectKeyword("time"));
    F2DB_RETURN_IF_ERROR(ExpectSymbol(","));

    if (PeekKeyword("SUM")) {
      Advance();
      query.aggregate = true;
      F2DB_RETURN_IF_ERROR(ExpectSymbol("("));
      F2DB_ASSIGN_OR_RETURN(query.measure, ExpectIdent());
      F2DB_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      F2DB_ASSIGN_OR_RETURN(query.measure, ExpectIdent());
    }

    F2DB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    F2DB_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
    (void)table;  // single fact table; name is informational

    if (PeekKeyword("WHERE")) {
      Advance();
      for (;;) {
        DimensionFilter filter;
        F2DB_ASSIGN_OR_RETURN(filter.level, ExpectIdent());
        F2DB_RETURN_IF_ERROR(ExpectSymbol("="));
        F2DB_ASSIGN_OR_RETURN(filter.value, ExpectString());
        query.filters.push_back(std::move(filter));
        if (!PeekKeyword("AND")) break;
        Advance();
      }
    }

    if (PeekKeyword("GROUP")) {
      Advance();
      F2DB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      F2DB_RETURN_IF_ERROR(ExpectKeyword("time"));
    }

    F2DB_RETURN_IF_ERROR(ExpectKeyword("AS"));
    F2DB_RETURN_IF_ERROR(ExpectKeyword("OF"));
    F2DB_RETURN_IF_ERROR(ExpectKeyword("now"));
    F2DB_RETURN_IF_ERROR(ExpectSymbol("("));
    F2DB_RETURN_IF_ERROR(ExpectSymbol(")"));
    F2DB_RETURN_IF_ERROR(ExpectSymbol("+"));
    F2DB_ASSIGN_OR_RETURN(std::string horizon_text, ExpectString());
    F2DB_ASSIGN_OR_RETURN(query.horizon, ParseHorizon(horizon_text));

    if (PeekKeyword("WITH")) {
      Advance();
      F2DB_RETURN_IF_ERROR(ExpectKeyword("INTERVALS"));
      query.with_intervals = true;
      if (Peek().kind == TokenKind::kNumber) {
        F2DB_ASSIGN_OR_RETURN(query.confidence, ParseDouble(Peek().text));
        Advance();
        if (query.confidence <= 0.0 || query.confidence >= 1.0) {
          return Status::InvalidArgument(
              "WITH INTERVALS confidence must be in (0, 1)");
        }
      }
    }

    if (Peek().kind == TokenKind::kSymbol && Peek().text == ";") Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing tokens after AS OF");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, keyword);
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::InvalidArgument("expected '" + std::string(keyword) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != symbol) {
      return Status::InvalidArgument("expected '" + std::string(symbol) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    std::string out = Peek().text;
    Advance();
    return out;
  }

  Result<std::string> ExpectString() {
    if (Peek().kind != TokenKind::kString) {
      return Status::InvalidArgument("expected quoted literal, got '" +
                                     Peek().text + "'");
    }
    std::string out = Peek().text;
    Advance();
    return out;
  }

  Result<std::string> ExpectNumber() {
    // Accepts an optional leading minus for measure values.
    std::string sign;
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "-") {
      sign = "-";
      Advance();
    }
    if (Peek().kind != TokenKind::kNumber) {
      return Status::InvalidArgument("expected number, got '" + Peek().text +
                                     "'");
    }
    std::string out = sign + Peek().text;
    Advance();
    return out;
  }

  /// "3", "1 day", "12 hours" -> the leading integer.
  static Result<std::size_t> ParseHorizon(const std::string& text) {
    std::size_t digits = 0;
    while (digits < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[digits]))) {
      ++digits;
    }
    if (digits == 0) {
      return Status::InvalidArgument("AS OF literal must start with a number");
    }
    F2DB_ASSIGN_OR_RETURN(std::int64_t value,
                          ParseInt(text.substr(0, digits)));
    if (value <= 0) {
      return Status::InvalidArgument("forecast horizon must be positive");
    }
    if (static_cast<std::size_t>(value) > kMaxHorizon) {
      return Status::InvalidArgument(
          "forecast horizon " + std::to_string(value) + " exceeds the " +
          std::to_string(kMaxHorizon) + "-period limit");
    }
    return static_cast<std::size_t>(value);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string ForecastQuery::ToString() const {
  std::ostringstream out;
  out << "SELECT time, ";
  if (aggregate) {
    out << "SUM(" << measure << ")";
  } else {
    out << measure;
  }
  out << " FROM facts";
  for (std::size_t i = 0; i < filters.size(); ++i) {
    out << (i == 0 ? " WHERE " : " AND ") << filters[i].level << " = '"
        << filters[i].value << "'";
  }
  if (aggregate) out << " GROUP BY time";
  out << " AS OF now() + '" << horizon << "'";
  if (with_intervals) out << " WITH INTERVALS " << confidence;
  return out.str();
}

Result<ForecastQuery> ParseForecastQuery(const std::string& sql) {
  if (sql.size() > kMaxStatementBytes) return StatementTooLarge(sql.size());
  Lexer lexer(sql);
  F2DB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<Statement> ParseStatement(const std::string& sql) {
  if (sql.size() > kMaxStatementBytes) return StatementTooLarge(sql.size());
  Lexer lexer(sql);
  F2DB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseAny();
}

}  // namespace f2db
