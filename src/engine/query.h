// Forecast query AST and SQL-ish parser.
//
// F2DB extends SQL with an AS OF clause for forecast queries (Section I,
// Figure 1):
//
//   SELECT time, sales        FROM facts
//   WHERE product = 'P4' AND city = 'C4'
//   AS OF now() + '1'
//
//   SELECT time, SUM(sales)   FROM facts
//   WHERE product = 'P4' AND region = 'R2'
//   GROUP BY time
//   AS OF now() + '3'
//
// WHERE predicates name a hierarchy LEVEL (city, region, product, ...) and
// a member value; dimensions without a predicate default to ALL (full
// aggregation). The AS OF literal is the forecast horizon in periods.

#ifndef F2DB_ENGINE_QUERY_H_
#define F2DB_ENGINE_QUERY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace f2db {

/// One WHERE predicate: <level> = '<value>'.
struct DimensionFilter {
  std::string level;
  std::string value;
  bool operator==(const DimensionFilter&) const = default;
};

/// A parsed forecast query.
struct ForecastQuery {
  /// Projected measure column ("sales"); informational.
  std::string measure;
  /// True when the measure was wrapped in SUM(...) (aggregate query).
  bool aggregate = false;
  std::vector<DimensionFilter> filters;
  /// Forecast horizon in periods (the AS OF now() + 'h' literal).
  std::size_t horizon = 1;
  /// WITH INTERVALS [<confidence>] clause: request prediction intervals.
  bool with_intervals = false;
  double confidence = 0.95;

  /// No serving deadline (the default for embedded callers).
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  /// Absolute serving deadline on the steady clock. The engine checks it
  /// at entry (and a sharded engine again before scatter-gather fan-out):
  /// an expired query answers kDeadlineExceeded instead of burning
  /// forecast work the caller has already given up on. Not part of the
  /// parsed SQL — the serving layer stamps it from the wire deadline.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;

  /// Brownout mode: skip lazy re-estimation and serve the stale-model
  /// rung (annotated) when a model is invalid. The serving layer sets this
  /// under sustained admission pressure so degraded-but-correct answers go
  /// out before load shedding starts.
  bool brownout = false;

  std::string ToString() const;
};

/// Parses the SQL-ish forecast query dialect above. Keywords are
/// case-insensitive; identifiers and quoted values are case-sensitive.
/// Hardened for untrusted (network) input: statements over 64 KiB,
/// horizons over 100000 periods, and non-printable bytes are rejected
/// with kInvalidArgument — the parser never throws or crashes.
Result<ForecastQuery> ParseForecastQuery(const std::string& sql);

/// An insert of one new fact:
///   INSERT INTO facts VALUES ('C1', 'P1', 60, 12.5)
/// with one quoted level-0 value per dimension (in schema order), the
/// integer time index, and the measure value.
struct InsertStatement {
  std::vector<std::string> base_values;
  std::int64_t time = 0;
  double value = 0.0;
};

/// EXPLAIN <forecast query>: resolve the plan without computing forecasts.
struct ExplainStatement {
  ForecastQuery query;
};

/// Any statement of the dialect.
struct Statement {
  enum class Kind { kForecast, kInsert, kExplain };
  Kind kind = Kind::kForecast;
  ForecastQuery forecast;  ///< kForecast / kExplain.
  InsertStatement insert;  ///< kInsert.
};

/// Parses a full statement (SELECT / INSERT / EXPLAIN SELECT).
Result<Statement> ParseStatement(const std::string& sql);

}  // namespace f2db

#endif  // F2DB_ENGINE_QUERY_H_
