// ShardedEngine: hash-partitioned facade over independent F2dbEngine
// shards with scatter-gather queries (DESIGN.md §11).
//
// The cube is partitioned along dimension 0: every level-0 value of the
// first hierarchy hashes (FNV-1a) to one of M partitions, and each
// non-empty partition becomes an independent F2dbEngine over the
// ancestor-closure restriction of the global schema — the partition's
// level-0 values, every coarser dimension-0 value with at least one kept
// child, and all other dimensions in full. Level and value NAMES are
// preserved, so a ForecastQuery resolves unchanged against any shard that
// contains its dimension-0 coordinate.
//
// Routing:
//   - an insert is addressed by level-0 value names; names[0] picks the
//     shard, which buffers and advances independently;
//   - a query whose dimension-0 coordinate rolls up level-0 values of a
//     single partition routes to that shard untouched;
//   - a query spanning several partitions fans out: each contributing
//     shard answers against its own pinned snapshot, and the results merge
//     by summation. The merged result carries the WORST DegradationLevel
//     of any contributing shard, interval half-widths combine in
//     quadrature (sources independent), and the shards' forecast origins
//     must agree — misaligned shard frontiers fail the query with
//     kFailedPrecondition instead of silently summing different periods.
//
// Durability: each shard logs and checkpoints under
// `<data_dir>/shard-<partition>`, with its own WAL epoch chain and
// checkpoint cadence. Open() recovers all shards in parallel;
// CheckpointNow() checkpoints every shard (the server's drain path).
//
// Configuration: shards are independent, so a model must not be placed at
// a node whose dimension-0 coordinate spans partitions —
// LoadConfiguration rejects such placements with kInvalidArgument.
// BuildShardableConfiguration() constructs the canonical shard-safe
// layout: one model per base cell plus covering derivation schemes
// (sources = all covered base cells), whose derivation weight is exactly
// 1 both globally and per shard, so the scatter-gather sum reproduces the
// unsharded answer.

#ifndef F2DB_ENGINE_SHARDED_ENGINE_H_
#define F2DB_ENGINE_SHARDED_ENGINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/concurrent.h"
#include "common/status.h"
#include "core/configuration.h"
#include "cube/graph.h"
#include "engine/engine.h"
#include "ts/model_factory.h"

namespace f2db {

/// Tuning knobs for a sharded engine.
struct ShardedEngineOptions {
  /// Number of hash partitions M. Partitions that receive no dimension-0
  /// value run no engine; num_shards may exceed the value count.
  std::size_t num_shards = 1;
  /// Per-shard engine options. A non-empty data_dir is the ROOT: shard k
  /// logs and checkpoints under `<data_dir>/shard-<k>`.
  EngineOptions engine;
};

/// Facade that partitions one cube across M independent F2dbEngine shards.
class ShardedEngine : public EngineInterface {
 public:
  /// Builds the partition schemas from `global_graph`, copies each
  /// partition's base series, and opens every shard — recovering durable
  /// shards from their per-shard directories in parallel. The global
  /// graph is retained (structure only) for query routing and node
  /// naming; its series are NOT advanced by inserts.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      const TimeSeriesGraph& global_graph, ShardedEngineOptions options);

  /// The partition a dimension-0 level-0 value name hashes to (FNV-1a 64).
  static std::size_t PartitionOf(std::string_view value_name,
                                 std::size_t num_shards);

  /// Splits a global configuration into per-shard configurations and
  /// loads each shard (building a per-shard ConfigurationEvaluator with
  /// `train_fraction`). Every model must sit at a node owned by exactly
  /// one partition (kInvalidArgument otherwise), and every non-empty
  /// partition must receive at least one model. Schemes are restricted
  /// per shard: a target keeps the sources that exist in that shard.
  Status LoadConfiguration(const ModelConfiguration& config,
                           double train_fraction);

  // ---------------------------------------------------- EngineInterface

  Result<QueryResult> Execute(const ForecastQuery& query) const override;
  Result<ExplainResult> Explain(const ForecastQuery& query) const override;
  Status InsertFact(const std::vector<std::string>& base_values,
                    std::int64_t time, double value) override;
  std::size_t pending_inserts() const override;
  /// Aggregated across shards: counters sum; recovery_duration_ms and
  /// last_checkpoint_age_seconds report the slowest/stalest shard (-1
  /// when any shard has not checkpointed).
  EngineStats stats() const override;
  std::string StatsPrometheusText() const override;
  bool durable() const override;
  /// Checkpoints every shard; attempts all and returns the first error.
  Status CheckpointNow() override;
  /// Compacts every shard (seal + manifest commit + WAL truncation +
  /// retention); attempts all and returns the first error.
  Status CompactNow() override;

  // ------------------------------------------------------- introspection

  /// Configured partition count M (including empty partitions).
  std::size_t num_shards() const { return options_.num_shards; }
  /// Partitions that actually run an engine.
  std::size_t num_active_shards() const { return shards_.size(); }
  /// The engine of one partition; nullptr when the partition is empty.
  F2dbEngine* shard(std::size_t partition);
  const F2dbEngine* shard(std::size_t partition) const;
  /// Ascending partition indices that run an engine.
  std::vector<std::size_t> active_partitions() const;
  /// The retained global graph (routing structure; series not advanced).
  const TimeSeriesGraph& global_graph() const { return *global_graph_; }

 private:
  struct Shard {
    std::size_t partition = 0;
    std::unique_ptr<F2dbEngine> engine;
    /// local_node[global node id] = shard node id, or kNoNode when the
    /// global node does not exist in this shard.
    std::vector<NodeId> local_node;
  };
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  ShardedEngine(ShardedEngineOptions options,
                std::shared_ptr<const TimeSeriesGraph> global_graph);

  /// Resolves WHERE filters against the GLOBAL schema (unfiltered
  /// dimensions default to ALL), mirroring F2dbEngine::ResolveNode.
  Result<NodeId> ResolveGlobal(
      const std::vector<DimensionFilter>& filters) const;

  /// The partitions whose base cells a dimension-0 coordinate rolls up.
  const std::vector<std::size_t>& PartitionsOfCoord(LevelIndex level,
                                                    ValueIndex value) const;

  const Shard& ShardForPartition(std::size_t partition) const {
    return shards_[slot_of_partition_[partition]];
  }

  const ShardedEngineOptions options_;
  /// Queries whose deadline expired before the scatter-gather fan-out
  /// (facade-level; no shard counted them). Summed into stats().
  mutable RelaxedCounter fanout_deadline_expired_;
  std::shared_ptr<const TimeSeriesGraph> global_graph_;
  std::vector<Shard> shards_;
  /// partition -> index into shards_, or SIZE_MAX for empty partitions.
  std::vector<std::size_t> slot_of_partition_;
  /// partition_of_value_[v] = partition of dimension-0 level-0 value v.
  std::vector<std::size_t> partition_of_value_;
  /// partitions_of_coord_[level][value] = sorted partitions under that
  /// dimension-0 coordinate; index num_levels() holds the ALL row.
  std::vector<std::vector<std::vector<std::size_t>>> partitions_of_coord_;
};

/// Builds the canonical shard-safe configuration for a graph: one model
/// of `spec` fit on each base cell's training prefix (falling back to
/// kMean when the fit fails), plus a covering derivation scheme at every
/// node (sources = all covered base cells; weight exactly 1). Loadable
/// into both an unsharded engine and any ShardedEngine over the same
/// graph — the pair produces identical forecasts up to summation order.
Result<ModelConfiguration> BuildShardableConfiguration(
    const TimeSeriesGraph& graph, const ModelSpec& spec,
    double train_fraction);

}  // namespace f2db

#endif  // F2DB_ENGINE_SHARDED_ENGINE_H_
