#include "engine/sharded_engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <utility>

#include "core/evaluator.h"
#include "cube/cube_schema.h"
#include "cube/hierarchy.h"
#include "engine/stats_export.h"

namespace f2db {
namespace {

/// Rebuilds one hierarchy verbatim from its read API (for the dimensions
/// a partition keeps in full).
Result<Hierarchy> CopyHierarchy(const Hierarchy& source) {
  Hierarchy copy(source.name());
  const std::size_t levels = source.num_levels();
  for (std::size_t l = 0; l < levels; ++l) {
    std::vector<std::string> names;
    names.reserve(source.num_values(l));
    for (ValueIndex v = 0; v < source.num_values(l); ++v) {
      names.push_back(source.value_name(l, v));
    }
    F2DB_RETURN_IF_ERROR(copy.AddLevel(source.level_name(l), std::move(names)));
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    for (ValueIndex v = 0; v < source.num_values(l); ++v) {
      F2DB_RETURN_IF_ERROR(copy.SetParent(l, v, source.parent_value(l, v)));
    }
  }
  F2DB_RETURN_IF_ERROR(copy.Finalize());
  return copy;
}

/// The ancestor-closure restriction of one partition: kept[l] lists the
/// GLOBAL dimension-0 value indices present at level l (ascending), and
/// local_of[l] maps global value index -> local index (or -1).
struct DimZeroRestriction {
  std::vector<std::vector<ValueIndex>> kept;
  std::vector<std::vector<std::int64_t>> local_of;
};

DimZeroRestriction RestrictDimZero(const Hierarchy& dim0,
                                   const std::vector<std::size_t>& partition_of,
                                   std::size_t partition) {
  const std::size_t levels = dim0.num_levels();
  DimZeroRestriction out;
  out.kept.resize(levels);
  out.local_of.resize(levels);
  for (ValueIndex v = 0; v < dim0.num_values(0); ++v) {
    if (partition_of[v] == partition) out.kept[0].push_back(v);
  }
  for (std::size_t l = 1; l < levels; ++l) {
    std::vector<ValueIndex>& level = out.kept[l];
    for (const ValueIndex child : out.kept[l - 1]) {
      level.push_back(dim0.parent_value(l - 1, child));
    }
    std::sort(level.begin(), level.end());
    level.erase(std::unique(level.begin(), level.end()), level.end());
  }
  for (std::size_t l = 0; l < levels; ++l) {
    out.local_of[l].assign(dim0.num_values(l), -1);
    for (std::size_t i = 0; i < out.kept[l].size(); ++i) {
      out.local_of[l][out.kept[l][i]] = static_cast<std::int64_t>(i);
    }
  }
  return out;
}

/// Builds the partition's restricted dimension-0 hierarchy: same level and
/// value names, parents remapped to local indices.
Result<Hierarchy> BuildRestrictedDimZero(const Hierarchy& dim0,
                                         const DimZeroRestriction& r) {
  Hierarchy restricted(dim0.name());
  const std::size_t levels = dim0.num_levels();
  for (std::size_t l = 0; l < levels; ++l) {
    std::vector<std::string> names;
    names.reserve(r.kept[l].size());
    for (const ValueIndex v : r.kept[l]) {
      names.push_back(dim0.value_name(l, v));
    }
    F2DB_RETURN_IF_ERROR(
        restricted.AddLevel(dim0.level_name(l), std::move(names)));
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    for (std::size_t i = 0; i < r.kept[l].size(); ++i) {
      const ValueIndex parent = dim0.parent_value(l, r.kept[l][i]);
      restricted.SetParent(l, static_cast<ValueIndex>(i),
                           static_cast<ValueIndex>(r.local_of[l + 1][parent]));
    }
  }
  F2DB_RETURN_IF_ERROR(restricted.Finalize());
  return restricted;
}

DegradationLevel Worse(DegradationLevel a, DegradationLevel b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// The GLOBAL value index of `value`'s ancestor at `level` (walking the
/// parent chain from level 0). `level` == num_levels() means ALL.
ValueIndex AncestorAt(const Hierarchy& hierarchy, ValueIndex value,
                      LevelIndex level) {
  ValueIndex v = value;
  for (LevelIndex l = 0; l < level; ++l) v = hierarchy.parent_value(l, v);
  return v;
}

}  // namespace

std::size_t ShardedEngine::PartitionOf(std::string_view value_name,
                                       std::size_t num_shards) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const char c : value_name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return num_shards == 0 ? 0 : static_cast<std::size_t>(hash % num_shards);
}

ShardedEngine::ShardedEngine(
    ShardedEngineOptions options,
    std::shared_ptr<const TimeSeriesGraph> global_graph)
    : options_(std::move(options)), global_graph_(std::move(global_graph)) {}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const TimeSeriesGraph& global_graph, ShardedEngineOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  const CubeSchema& schema = global_graph.schema();
  if (schema.num_dimensions() == 0) {
    return Status::InvalidArgument("sharded engine needs a dimensional cube");
  }
  const Hierarchy& dim0 = schema.hierarchy(0);

  // Retain a structural copy of the global graph for routing and naming.
  F2DB_ASSIGN_OR_RETURN(CubeSchema global_schema_copy, [&]() -> Result<CubeSchema> {
    CubeSchema copy;
    for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
      F2DB_ASSIGN_OR_RETURN(Hierarchy h, CopyHierarchy(schema.hierarchy(d)));
      F2DB_RETURN_IF_ERROR(copy.AddHierarchy(std::move(h)));
    }
    return copy;
  }());
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph global_copy,
                        TimeSeriesGraph::Create(std::move(global_schema_copy)));
  for (const NodeId base : global_copy.base_nodes()) {
    const NodeAddress address = global_copy.AddressOf(base);
    F2DB_ASSIGN_OR_RETURN(const NodeId source, global_graph.NodeFor(address));
    F2DB_RETURN_IF_ERROR(
        global_copy.SetBaseSeries(base, global_graph.series(source)));
  }
  F2DB_RETURN_IF_ERROR(global_copy.BuildAggregates());

  auto engine = std::unique_ptr<ShardedEngine>(new ShardedEngine(
      options,
      std::make_shared<const TimeSeriesGraph>(std::move(global_copy))));
  const TimeSeriesGraph& graph = *engine->global_graph_;
  const std::size_t shards = options.num_shards;

  engine->partition_of_value_.resize(dim0.num_values(0));
  for (ValueIndex v = 0; v < dim0.num_values(0); ++v) {
    engine->partition_of_value_[v] = PartitionOf(dim0.value_name(0, v), shards);
  }

  // partitions_of_coord_[l][v]: level 0 is the hash itself; level l unions
  // its children's rows; the extra ALL row unions everything.
  const std::size_t levels = dim0.num_levels();
  engine->partitions_of_coord_.resize(levels + 1);
  engine->partitions_of_coord_[0].resize(dim0.num_values(0));
  for (ValueIndex v = 0; v < dim0.num_values(0); ++v) {
    engine->partitions_of_coord_[0][v] = {engine->partition_of_value_[v]};
  }
  for (std::size_t l = 1; l <= levels; ++l) {
    const std::size_t width = l == levels ? 1 : dim0.num_values(l);
    engine->partitions_of_coord_[l].resize(width);
    const std::size_t child_width = dim0.num_values(l - 1);
    for (ValueIndex child = 0; child < child_width; ++child) {
      const ValueIndex parent =
          l == levels ? 0 : dim0.parent_value(l - 1, child);
      auto& row = engine->partitions_of_coord_[l][parent];
      const auto& child_row = engine->partitions_of_coord_[l - 1][child];
      row.insert(row.end(), child_row.begin(), child_row.end());
    }
    for (auto& row : engine->partitions_of_coord_[l]) {
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
    }
  }

  engine->slot_of_partition_.assign(shards, static_cast<std::size_t>(-1));

  const bool durable = !options.engine.data_dir.empty();
  if (durable) {
    // Shard directories hang off the root; the per-shard recovery path
    // creates each shard's own directory.
    if (::mkdir(options.engine.data_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return Status::Internal("cannot create data dir " +
                              options.engine.data_dir);
    }
  }

  // Build every non-empty partition's graph, then open all shards in
  // parallel — per-shard recovery (checkpoint load + WAL replay) is the
  // expensive part and the shards are fully independent.
  struct PendingShard {
    std::size_t partition;
    DimZeroRestriction restriction;
    TimeSeriesGraph graph;
    EngineOptions engine_options;
  };
  std::vector<PendingShard> pending;
  for (std::size_t p = 0; p < shards; ++p) {
    DimZeroRestriction restriction =
        RestrictDimZero(dim0, engine->partition_of_value_, p);
    if (restriction.kept[0].empty()) continue;  // empty partition: no engine

    F2DB_ASSIGN_OR_RETURN(Hierarchy restricted,
                          BuildRestrictedDimZero(dim0, restriction));
    CubeSchema shard_schema;
    F2DB_RETURN_IF_ERROR(shard_schema.AddHierarchy(std::move(restricted)));
    for (std::size_t d = 1; d < schema.num_dimensions(); ++d) {
      F2DB_ASSIGN_OR_RETURN(Hierarchy h, CopyHierarchy(schema.hierarchy(d)));
      F2DB_RETURN_IF_ERROR(shard_schema.AddHierarchy(std::move(h)));
    }
    F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph shard_graph,
                          TimeSeriesGraph::Create(std::move(shard_schema)));
    for (const NodeId base : shard_graph.base_nodes()) {
      NodeAddress address = shard_graph.AddressOf(base);
      address.coords[0].value = restriction.kept[0][address.coords[0].value];
      F2DB_ASSIGN_OR_RETURN(const NodeId global_node, graph.NodeFor(address));
      F2DB_RETURN_IF_ERROR(
          shard_graph.SetBaseSeries(base, graph.series(global_node)));
    }
    F2DB_RETURN_IF_ERROR(shard_graph.BuildAggregates());

    EngineOptions shard_options = options.engine;
    if (durable) {
      shard_options.data_dir =
          options.engine.data_dir + "/shard-" + std::to_string(p);
    }
    pending.push_back(PendingShard{p, std::move(restriction),
                                   std::move(shard_graph),
                                   std::move(shard_options)});
  }

  std::vector<std::unique_ptr<F2dbEngine>> opened(pending.size());
  std::vector<Status> open_status(pending.size());
  {
    std::vector<std::thread> threads;
    threads.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      threads.emplace_back([&, i] {
        Result<std::unique_ptr<F2dbEngine>> result = F2dbEngine::Open(
            std::move(pending[i].graph), pending[i].engine_options);
        if (result.ok()) {
          opened[i] = std::move(result).value();
        } else {
          open_status[i] = result.status();
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!open_status[i].ok()) {
      return Status(open_status[i].code(),
                    "shard " + std::to_string(pending[i].partition) + ": " +
                        open_status[i].message());
    }
  }

  // Node translation tables: global node id -> shard node id. A global
  // node exists in a shard iff its dimension-0 value survives the
  // restriction; every other coordinate carries over unchanged.
  engine->shards_.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Shard shard;
    shard.partition = pending[i].partition;
    shard.engine = std::move(opened[i]);
    shard.local_node.assign(graph.num_nodes(), kNoNode);
    const TimeSeriesGraph& shard_graph = shard.engine->graph();
    const DimZeroRestriction& r = pending[i].restriction;
    for (NodeId node = 0; node < graph.num_nodes(); ++node) {
      NodeAddress address = graph.AddressOf(node);
      const auto [level, value] = address.coords[0];
      if (level < levels) {
        const std::int64_t local = r.local_of[level][value];
        if (local < 0) continue;
        address.coords[0].value = static_cast<ValueIndex>(local);
      }
      Result<NodeId> local = shard_graph.NodeFor(address);
      if (!local.ok()) {
        return Status::Internal("shard node translation failed for " +
                                graph.NodeName(node));
      }
      shard.local_node[node] = local.value();
    }
    engine->slot_of_partition_[shard.partition] = engine->shards_.size();
    engine->shards_.push_back(std::move(shard));
  }
  return engine;
}

Status ShardedEngine::LoadConfiguration(const ModelConfiguration& config,
                                        double train_fraction) {
  const TimeSeriesGraph& graph = *global_graph_;
  if (config.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "configuration sized for a different graph");
  }
  const std::size_t levels = graph.schema().hierarchy(0).num_levels();

  // Every model must live inside exactly one partition: shards maintain
  // their models independently, so a model at a cross-shard aggregate
  // could not be updated by any single shard's time advance.
  for (const NodeId node : config.model_nodes()) {
    const auto [level, value] = graph.AddressOf(node).coords[0];
    const auto& parts = partitions_of_coord_[level][level < levels ? value : 0];
    if (parts.size() != 1) {
      return Status::InvalidArgument(
          "model at " + graph.NodeName(node) +
          " spans multiple shards; place models at single-shard nodes "
          "(see BuildShardableConfiguration)");
    }
  }

  for (Shard& shard : shards_) {
    const TimeSeriesGraph& shard_graph = shard.engine->graph();
    ModelConfiguration shard_config(shard_graph.num_nodes());
    for (const NodeId node : config.model_nodes()) {
      const NodeId local = shard.local_node[node];
      if (local == kNoNode) continue;
      const auto [level, value] = graph.AddressOf(node).coords[0];
      const auto& parts =
          partitions_of_coord_[level][level < levels ? value : 0];
      if (parts[0] != shard.partition) continue;
      const ModelEntry* source = config.entry(node);
      ModelEntry entry;
      entry.model = source->model->Clone();
      entry.creation_seconds = source->creation_seconds;
      entry.test_forecast = source->test_forecast;
      for (const NodeId covered : source->coverage) {
        if (shard.local_node[covered] != kNoNode) {
          entry.coverage.push_back(shard.local_node[covered]);
        }
      }
      shard_config.AddModel(local, std::move(entry));
    }
    if (shard_config.num_models() == 0) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard.partition) +
          " received no models; every non-empty partition needs at least "
          "one");
    }
    for (NodeId node = 0; node < graph.num_nodes(); ++node) {
      const NodeId local = shard.local_node[node];
      if (local == kNoNode) continue;
      const NodeAssignment& assignment = config.assignment(node);
      if (assignment.scheme.IsEmpty()) continue;
      NodeAssignment shard_assignment;
      shard_assignment.error = assignment.error;
      std::vector<NodeId> sources;
      for (const NodeId source : assignment.scheme.sources) {
        if (shard.local_node[source] != kNoNode) {
          sources.push_back(shard.local_node[source]);
        }
      }
      if (sources.empty()) continue;  // engine assigns its fallback scheme
      shard_assignment.scheme = DerivationScheme::Multi(std::move(sources));
      shard_config.set_assignment(local, shard_assignment);
    }
    const ConfigurationEvaluator evaluator(shard_graph, train_fraction);
    F2DB_RETURN_IF_ERROR(
        shard.engine->LoadConfiguration(shard_config, evaluator));
  }
  return Status::OK();
}

Result<NodeId> ShardedEngine::ResolveGlobal(
    const std::vector<DimensionFilter>& filters) const {
  const CubeSchema& schema = global_graph_->schema();
  NodeAddress address;
  address.coords.resize(schema.num_dimensions());
  for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
    address.coords[d] = {
        static_cast<LevelIndex>(schema.hierarchy(d).num_levels()), 0};  // ALL
  }
  for (const DimensionFilter& filter : filters) {
    F2DB_ASSIGN_OR_RETURN(auto hit, schema.FindLevelAnywhere(filter.level));
    const auto [dim, level] = hit;
    F2DB_ASSIGN_OR_RETURN(ValueIndex value,
                          schema.hierarchy(dim).FindValue(level, filter.value));
    address.coords[dim] = {level, value};
  }
  return global_graph_->NodeFor(address);
}

const std::vector<std::size_t>& ShardedEngine::PartitionsOfCoord(
    LevelIndex level, ValueIndex value) const {
  const std::size_t levels =
      global_graph_->schema().hierarchy(0).num_levels();
  return partitions_of_coord_[level][level < levels ? value : 0];
}

Result<QueryResult> ShardedEngine::Execute(const ForecastQuery& query) const {
  F2DB_ASSIGN_OR_RETURN(const NodeId global_node, ResolveGlobal(query.filters));
  const auto [level, value] = global_graph_->AddressOf(global_node).coords[0];
  const std::vector<std::size_t>& parts = PartitionsOfCoord(level, value);

  if (parts.size() == 1) {
    // The coordinate rolls up base cells of one partition: level and value
    // names are preserved there, so the query routes through unchanged.
    F2DB_ASSIGN_OR_RETURN(QueryResult result,
                          ShardForPartition(parts[0]).engine->Execute(query));
    result.node = global_node;
    return result;
  }

  // Deadline gate before fan-out: a cross-shard query multiplies its work
  // by the number of contributing shards, so an expired budget is checked
  // here once instead of discovered M times inside the shards. (The
  // single-partition path above inherits the engine-entry check.)
  if (query.deadline != ForecastQuery::kNoDeadline &&
      std::chrono::steady_clock::now() >= query.deadline) {
    fanout_deadline_expired_.Add();
    return Status::DeadlineExceeded(
        "query deadline expired before scatter-gather fan-out across " +
        std::to_string(parts.size()) + " shards");
  }

  // Scatter-gather: every contributing shard answers against its own
  // pinned snapshot; the pieces sum into the global answer.
  std::vector<std::pair<std::size_t, QueryResult>> pieces;
  pieces.reserve(parts.size());
  for (const std::size_t p : parts) {
    F2DB_ASSIGN_OR_RETURN(QueryResult piece,
                          ShardForPartition(p).engine->Execute(query));
    pieces.emplace_back(p, std::move(piece));
  }

  const std::vector<ForecastRow>& first = pieces.front().second.rows;
  for (const auto& [p, piece] : pieces) {
    if (piece.rows.size() != first.size() ||
        (!first.empty() && piece.rows[0].time != first[0].time)) {
      return Status::FailedPrecondition(
          "cross-shard query over misaligned shard frontiers: shard " +
          std::to_string(p) + " is at a different forecast origin than "
          "shard " + std::to_string(pieces.front().first) +
          "; complete the pending insert round first");
    }
  }

  QueryResult merged;
  merged.node = global_node;
  merged.node_name = global_graph_->NodeName(global_node);
  merged.rows.resize(first.size());
  for (std::size_t h = 0; h < first.size(); ++h) {
    ForecastRow& row = merged.rows[h];
    row.time = first[h].time;
    row.has_interval = true;
    double lower_sq = 0.0;
    double upper_sq = 0.0;
    for (const auto& [p, piece] : pieces) {
      const ForecastRow& src = piece.rows[h];
      row.value += src.value;
      row.degradation = Worse(row.degradation, src.degradation);
      if (!src.has_interval) row.has_interval = false;
      lower_sq += (src.value - src.lower) * (src.value - src.lower);
      upper_sq += (src.upper - src.value) * (src.upper - src.value);
    }
    if (row.has_interval) {
      // Shards are independent, so half-widths combine in quadrature.
      row.lower = row.value - std::sqrt(lower_sq);
      row.upper = row.value + std::sqrt(upper_sq);
    }
  }
  for (const auto& [p, piece] : pieces) {
    merged.degradation = Worse(merged.degradation, piece.degradation);
    if (!piece.degradation_reason.empty()) {
      if (!merged.degradation_reason.empty()) {
        merged.degradation_reason += "; ";
      }
      merged.degradation_reason +=
          "shard " + std::to_string(p) + ": " + piece.degradation_reason;
    }
  }
  return merged;
}

Result<ExplainResult> ShardedEngine::Explain(const ForecastQuery& query) const {
  F2DB_ASSIGN_OR_RETURN(const NodeId global_node, ResolveGlobal(query.filters));
  const auto [level, value] = global_graph_->AddressOf(global_node).coords[0];
  const std::vector<std::size_t>& parts = PartitionsOfCoord(level, value);

  if (parts.size() == 1) {
    F2DB_ASSIGN_OR_RETURN(ExplainResult result,
                          ShardForPartition(parts[0]).engine->Explain(query));
    result.node = global_node;
    return result;
  }

  // A cross-shard plan has no single stored scheme; summarize the
  // per-shard plans. The effective scatter-gather weight is 1 (shards sum
  // directly).
  ExplainResult merged;
  merged.node = global_node;
  merged.node_name = global_graph_->NodeName(global_node);
  merged.horizon = query.horizon;
  merged.weight = 1.0;
  for (const std::size_t p : parts) {
    F2DB_ASSIGN_OR_RETURN(ExplainResult piece,
                          ShardForPartition(p).engine->Explain(query));
    const std::string prefix = "shard " + std::to_string(p) + ": ";
    for (const std::string& line : piece.source_models) {
      merged.source_models.push_back(prefix + line);
    }
  }
  return merged;
}

Status ShardedEngine::InsertFact(const std::vector<std::string>& base_values,
                                 std::int64_t time, double value) {
  const CubeSchema& schema = global_graph_->schema();
  if (base_values.size() != schema.num_dimensions()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(schema.num_dimensions()) +
        " base values, got " + std::to_string(base_values.size()));
  }
  F2DB_ASSIGN_OR_RETURN(const ValueIndex v,
                        schema.hierarchy(0).FindValue(0, base_values[0]));
  return ShardForPartition(partition_of_value_[v])
      .engine->InsertFact(base_values, time, value);
}

std::size_t ShardedEngine::pending_inserts() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.engine->pending_inserts();
  }
  return total;
}

EngineStats ShardedEngine::stats() const {
  EngineStats total;
  total.recovery_duration_ms = 0.0;
  total.last_checkpoint_age_seconds = -1.0;
  bool checkpoint_everywhere = !shards_.empty();
  for (const Shard& shard : shards_) {
    const EngineStats s = shard.engine->stats();
    total.queries += s.queries;
    total.inserts += s.inserts;
    total.time_advances += s.time_advances;
    total.reestimates += s.reestimates;
    total.refit_failures += s.refit_failures;
    total.quarantines += s.quarantines;
    total.degraded_rows_stale += s.degraded_rows_stale;
    total.degraded_rows_derived += s.degraded_rows_derived;
    total.degraded_rows_naive += s.degraded_rows_naive;
    total.deadline_expired_queries += s.deadline_expired_queries;
    total.brownout_refits_skipped += s.brownout_refits_skipped;
    total.total_query_seconds += s.total_query_seconds;
    total.total_maintenance_seconds += s.total_maintenance_seconds;
    total.wal_records_appended += s.wal_records_appended;
    total.wal_bytes += s.wal_bytes;
    total.wal_records_replayed += s.wal_records_replayed;
    total.torn_tail_detected += s.torn_tail_detected;
    total.checkpoints_completed += s.checkpoints_completed;
    total.checkpoint_failures += s.checkpoint_failures;
    total.segments_sealed += s.segments_sealed;
    total.segment_records_sealed += s.segment_records_sealed;
    total.segments_live += s.segments_live;
    total.segment_live_bytes += s.segment_live_bytes;
    total.compactions_completed += s.compactions_completed;
    total.compaction_failures += s.compaction_failures;
    total.retention_segments_deleted += s.retention_segments_deleted;
    total.retention_records_dropped += s.retention_records_dropped;
    total.segment_records_recovered += s.segment_records_recovered;
    // Recovery ran in parallel, so the slowest shard is the wall clock.
    total.recovery_duration_ms =
        std::max(total.recovery_duration_ms, s.recovery_duration_ms);
    if (s.last_checkpoint_age_seconds < 0) {
      checkpoint_everywhere = false;
    } else {
      total.last_checkpoint_age_seconds = std::max(
          total.last_checkpoint_age_seconds, s.last_checkpoint_age_seconds);
    }
  }
  if (!checkpoint_everywhere) total.last_checkpoint_age_seconds = -1.0;
  // Facade-level rejections (expired before fan-out) belong to the
  // aggregate: no shard ever saw those queries.
  total.deadline_expired_queries += fanout_deadline_expired_.Load();
  return total;
}

std::string ShardedEngine::StatsPrometheusText() const {
  std::vector<std::pair<std::string, EngineStats>> per_shard;
  per_shard.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    per_shard.emplace_back(std::to_string(shard.partition),
                           shard.engine->stats());
  }
  return ShardedEngineStatsPrometheusText(per_shard, stats());
}

bool ShardedEngine::durable() const {
  return !shards_.empty() && shards_.front().engine->durable();
}

Status ShardedEngine::CheckpointNow() {
  Status first_error = Status::OK();
  for (Shard& shard : shards_) {
    const Status status = shard.engine->CheckpointNow();
    if (!status.ok() && first_error.ok()) {
      first_error = Status(status.code(), "shard " +
                                              std::to_string(shard.partition) +
                                              ": " + status.message());
    }
  }
  return first_error;
}

Status ShardedEngine::CompactNow() {
  Status first_error = Status::OK();
  for (Shard& shard : shards_) {
    const Status status = shard.engine->CompactNow();
    if (!status.ok() && first_error.ok()) {
      first_error = Status(status.code(), "shard " +
                                              std::to_string(shard.partition) +
                                              ": " + status.message());
    }
  }
  return first_error;
}

F2dbEngine* ShardedEngine::shard(std::size_t partition) {
  if (partition >= slot_of_partition_.size() ||
      slot_of_partition_[partition] == static_cast<std::size_t>(-1)) {
    return nullptr;
  }
  return shards_[slot_of_partition_[partition]].engine.get();
}

const F2dbEngine* ShardedEngine::shard(std::size_t partition) const {
  return const_cast<ShardedEngine*>(this)->shard(partition);
}

std::vector<std::size_t> ShardedEngine::active_partitions() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) out.push_back(shard.partition);
  return out;
}

Result<ModelConfiguration> BuildShardableConfiguration(
    const TimeSeriesGraph& graph, const ModelSpec& spec,
    double train_fraction) {
  const ConfigurationEvaluator evaluator(graph, train_fraction);
  const std::size_t train = evaluator.train_length();
  ModelConfiguration config(graph.num_nodes());

  const ModelFactory factory(spec);
  ModelSpec mean_spec;
  mean_spec.type = ModelType::kMean;
  mean_spec.period = 1;
  const ModelFactory mean_factory(mean_spec);
  for (const NodeId base : graph.base_nodes()) {
    const TimeSeries history = graph.series(base).Head(train);
    Result<std::unique_ptr<ForecastModel>> fitted =
        factory.CreateAndFit(history);
    std::unique_ptr<ForecastModel> model;
    if (fitted.ok()) {
      model = std::move(fitted).value();
    } else {
      F2DB_ASSIGN_OR_RETURN(model, mean_factory.CreateAndFit(history));
    }
    ModelEntry entry;
    entry.model = std::move(model);
    entry.coverage.push_back(base);
    config.AddModel(base, std::move(entry));
  }

  // Covering schemes: each node derives from ALL base cells it rolls up,
  // so the derivation weight h_t / sum h_s is exactly 1 — globally and
  // within any shard's restriction of the scheme.
  const CubeSchema& schema = graph.schema();
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    const NodeAddress address = graph.AddressOf(node);
    std::vector<NodeId> sources;
    for (const NodeId base : graph.base_nodes()) {
      const NodeAddress base_address = graph.AddressOf(base);
      bool covered = true;
      for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
        const Hierarchy& hierarchy = schema.hierarchy(d);
        const auto [level, value] = address.coords[d];
        if (level >= hierarchy.num_levels()) continue;  // ALL covers all
        if (AncestorAt(hierarchy, base_address.coords[d].value, level) !=
            value) {
          covered = false;
          break;
        }
      }
      if (covered) sources.push_back(base);
    }
    NodeAssignment assignment;
    assignment.error = 0.5;
    assignment.scheme = DerivationScheme::Multi(std::move(sources));
    config.set_assignment(node, assignment);
  }
  return config;
}

}  // namespace f2db
