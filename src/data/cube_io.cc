#include "data/cube_io.h"

#include <map>

#include "common/csv.h"
#include "common/string_util.h"

namespace f2db {

Status SaveFactsCsv(const TimeSeriesGraph& graph, const std::string& path) {
  const CubeSchema& schema = graph.schema();
  CsvDocument doc;
  for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
    doc.header.push_back(schema.hierarchy(d).level_name(0));
  }
  doc.header.push_back("time");
  doc.header.push_back("value");

  for (NodeId node : graph.base_nodes()) {
    const NodeAddress address = graph.AddressOf(node);
    const TimeSeries& series = graph.series(node);
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::vector<std::string> row;
      for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
        row.push_back(schema.hierarchy(d).value_name(
            address.coords[d].level, address.coords[d].value));
      }
      row.push_back(std::to_string(series.start_time() +
                                   static_cast<std::int64_t>(i)));
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.10g", series[i]);
      row.emplace_back(buffer);
      doc.rows.push_back(std::move(row));
    }
  }
  return WriteCsvFile(path, doc);
}

Result<TimeSeriesGraph> LoadFactsCsv(CubeSchema schema,
                                     const std::string& path) {
  F2DB_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path, /*has_header=*/true));
  const std::size_t dims = schema.num_dimensions();
  if (doc.header.size() != dims + 2) {
    return Status::InvalidArgument(
        "facts CSV must have one column per dimension plus time and value");
  }
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph,
                        TimeSeriesGraph::Create(std::move(schema)));

  // Collect (node, time) -> value; then check the range is contiguous and
  // complete per base cell.
  std::map<NodeId, std::map<std::int64_t, double>> cells;
  for (const auto& row : doc.rows) {
    NodeAddress address;
    address.coords.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      F2DB_ASSIGN_OR_RETURN(ValueIndex value,
                            graph.schema().hierarchy(d).FindValue(0, row[d]));
      address.coords[d] = {0, value};
    }
    F2DB_ASSIGN_OR_RETURN(NodeId node, graph.NodeFor(address));
    F2DB_ASSIGN_OR_RETURN(std::int64_t time, ParseInt(row[dims]));
    F2DB_ASSIGN_OR_RETURN(double value, ParseDouble(row[dims + 1]));
    if (!cells[node].emplace(time, value).second) {
      return Status::InvalidArgument("duplicate fact for node " +
                                     graph.NodeName(node) + " at time " +
                                     std::to_string(time));
    }
  }
  if (cells.size() != graph.num_base_nodes()) {
    return Status::InvalidArgument(
        "facts CSV covers " + std::to_string(cells.size()) + " of " +
        std::to_string(graph.num_base_nodes()) + " base cells");
  }

  std::int64_t start = cells.begin()->second.begin()->first;
  std::size_t length = cells.begin()->second.size();
  for (const auto& [node, points] : cells) {
    if (points.begin()->first != start || points.size() != length ||
        points.rbegin()->first != start + static_cast<std::int64_t>(length) - 1) {
      return Status::InvalidArgument(
          "base cell " + graph.NodeName(node) +
          " does not cover the common contiguous time range");
    }
    std::vector<double> values;
    values.reserve(length);
    for (const auto& [time, value] : points) values.push_back(value);
    F2DB_RETURN_IF_ERROR(
        graph.SetBaseSeries(node, TimeSeries(std::move(values), start)));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return graph;
}

}  // namespace f2db
