#include "data/datasets.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/sarima_generator.h"

namespace f2db {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Guards against non-positive measures (SMAPE assumes magnitudes).
double ClampPositive(double v) { return std::max(v, 0.1); }

Result<TimeSeriesGraph> GraphFor(CubeSchema schema) {
  return TimeSeriesGraph::Create(std::move(schema));
}

}  // namespace

Result<DataSet> MakeTourism(std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> purposes{"holiday", "business", "visiting",
                                          "other"};
  std::vector<std::string> states;
  for (int i = 1; i <= 8; ++i) states.push_back("S" + std::to_string(i));

  CubeSchema schema;
  F2DB_RETURN_IF_ERROR(
      schema.AddHierarchy(Hierarchy::Flat("purpose", purposes)));
  F2DB_RETURN_IF_ERROR(schema.AddHierarchy(Hierarchy::Flat("state", states)));
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph, GraphFor(std::move(schema)));

  const std::size_t length = 32;  // quarterly 2004-2011
  // National quarterly pattern shared by all series (drives TD quality).
  std::vector<double> national(length);
  for (std::size_t t = 0; t < length; ++t) {
    const double season = 1.0 + 0.35 * std::sin(2.0 * kPi *
                                                static_cast<double>(t) / 4.0 +
                                                0.7);
    const double trend = 1.0 + 0.004 * static_cast<double>(t);
    national[t] = season * trend;
  }
  const std::vector<double> purpose_share{0.45, 0.25, 0.2, 0.1};
  std::vector<double> state_scale(8);
  for (auto& s : state_scale) s = rng.Uniform(40.0, 220.0);

  for (NodeId node : graph.base_nodes()) {
    const NodeAddress address = graph.AddressOf(node);
    const std::size_t purpose = address.coords[0].value;
    const std::size_t state = address.coords[1].value;
    const double phase = rng.Uniform(-0.15, 0.15);
    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double base =
          state_scale[state] * purpose_share[purpose] * national[t];
      const double wobble =
          1.0 + 0.08 * std::sin(2.0 * kPi * static_cast<double>(t) / 4.0 + phase);
      values[t] = ClampPositive(base * wobble *
                                (1.0 + rng.Gaussian(0.0, 0.05)));
    }
    F2DB_RETURN_IF_ERROR(graph.SetBaseSeries(node, TimeSeries(values)));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return DataSet{"tourism", std::move(graph), 4};
}

Result<DataSet> MakeSales(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> products;
  for (int i = 1; i <= 9; ++i) products.push_back("P" + std::to_string(i));
  const std::vector<std::string> countries{"DE", "FR", "US"};

  CubeSchema schema;
  F2DB_RETURN_IF_ERROR(
      schema.AddHierarchy(Hierarchy::Flat("product", products)));
  F2DB_RETURN_IF_ERROR(
      schema.AddHierarchy(Hierarchy::Flat("country", countries)));
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph, GraphFor(std::move(schema)));

  const std::size_t length = 72;  // monthly 2004-2009
  // Per-product idiosyncratic seasonal patterns and trends: aggregation
  // washes them out, so direct/bottom-up beat top-down (Figure 7(b)).
  std::vector<double> product_phase(9), product_amp(9), product_trend(9),
      product_scale(9);
  for (std::size_t p = 0; p < 9; ++p) {
    product_phase[p] = rng.Uniform(0.0, 2.0 * kPi);
    product_amp[p] = rng.Uniform(0.15, 0.55);
    product_trend[p] = rng.Uniform(-0.004, 0.008);
    product_scale[p] = rng.Uniform(50.0, 400.0);
  }
  const std::vector<double> country_scale{1.0, 0.7, 1.6};

  for (NodeId node : graph.base_nodes()) {
    const NodeAddress address = graph.AddressOf(node);
    const std::size_t product = address.coords[0].value;
    const std::size_t country = address.coords[1].value;
    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double season =
          1.0 + product_amp[product] *
                    std::sin(2.0 * kPi * static_cast<double>(t) / 12.0 +
                             product_phase[product]);
      const double trend =
          1.0 + product_trend[product] * static_cast<double>(t);
      const double base =
          product_scale[product] * country_scale[country] * season * trend;
      values[t] = ClampPositive(base * (1.0 + rng.Gaussian(0.0, 0.07)));
    }
    F2DB_RETURN_IF_ERROR(graph.SetBaseSeries(node, TimeSeries(values)));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return DataSet{"sales", std::move(graph), 12};
}

Result<DataSet> MakeEnergy(std::uint64_t seed, std::size_t length) {
  Rng rng(seed);
  std::vector<std::string> customers;
  for (int i = 1; i <= 86; ++i) customers.push_back("cust" + std::to_string(i));

  CubeSchema schema;
  F2DB_RETURN_IF_ERROR(
      schema.AddHierarchy(Hierarchy::Flat("customer", customers)));
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph, GraphFor(std::move(schema)));

  // Shared daily demand profile (period 24) plus a weekly modulation;
  // base-level noise dominates, flattening approach differences (Fig 7(c)).
  std::vector<double> daily(24);
  for (std::size_t h = 0; h < 24; ++h) {
    const double morning = std::exp(-0.5 * std::pow((static_cast<double>(h) - 8.0) / 2.5, 2));
    const double evening = std::exp(-0.5 * std::pow((static_cast<double>(h) - 19.0) / 3.0, 2));
    daily[h] = 0.4 + 0.8 * morning + 1.0 * evening;
  }

  for (NodeId node : graph.base_nodes()) {
    const double scale = rng.Uniform(0.5, 4.0);
    const double noise = rng.Uniform(0.25, 0.5);
    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double weekly =
          1.0 + 0.1 * std::sin(2.0 * kPi * static_cast<double>(t) / 168.0);
      const double base = scale * daily[t % 24] * weekly;
      values[t] = ClampPositive(base * (1.0 + rng.Gaussian(0.0, noise)));
    }
    F2DB_RETURN_IF_ERROR(graph.SetBaseSeries(node, TimeSeries(values)));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return DataSet{"energy", std::move(graph), 24};
}

std::size_t GenXLevels(std::size_t num_base) {
  if (num_base < 1000) return 3;
  if (num_base < 10000) return 4;
  if (num_base < 100000) return 5;
  return 6;
}

Result<DataSet> MakeGenX(std::size_t num_base, std::uint64_t seed,
                         std::size_t length) {
  if (num_base < 2) return Status::InvalidArgument("GenX: need >= 2 series");
  Rng rng(seed);
  const std::size_t levels = GenXLevels(num_base);
  const std::size_t declared = levels - 1;  // graph levels include ALL

  // Fanout so that fanout^(declared-1) roughly covers num_base below the
  // single coarsest declared level.
  std::size_t fanout = 2;
  if (declared >= 2) {
    fanout = static_cast<std::size_t>(std::ceil(std::pow(
        static_cast<double>(num_base), 1.0 / static_cast<double>(declared - 1))));
    fanout = std::max<std::size_t>(fanout, 2);
  }

  // Level sizes bottom-up: L0 = num_base, L_{k+1} = ceil(L_k / fanout).
  std::vector<std::size_t> level_sizes{num_base};
  for (std::size_t k = 1; k < declared; ++k) {
    level_sizes.push_back((level_sizes.back() + fanout - 1) / fanout);
  }

  Hierarchy hierarchy("genx");
  for (std::size_t k = 0; k < declared; ++k) {
    std::vector<std::string> names;
    names.reserve(level_sizes[k]);
    for (std::size_t i = 0; i < level_sizes[k]; ++i) {
      names.push_back("L" + std::to_string(k) + "_" + std::to_string(i));
    }
    F2DB_RETURN_IF_ERROR(
        hierarchy.AddLevel("level" + std::to_string(k), std::move(names)));
  }
  for (std::size_t k = 0; k + 1 < declared; ++k) {
    for (std::size_t v = 0; v < level_sizes[k]; ++v) {
      F2DB_RETURN_IF_ERROR(hierarchy.SetParent(
          static_cast<LevelIndex>(k), static_cast<ValueIndex>(v),
          static_cast<ValueIndex>(
              std::min(v / fanout, level_sizes[k + 1] - 1))));
    }
  }
  F2DB_RETURN_IF_ERROR(hierarchy.Finalize());

  CubeSchema schema;
  F2DB_RETURN_IF_ERROR(schema.AddHierarchy(std::move(hierarchy)));
  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph, GraphFor(std::move(schema)));

  // Independent SARIMA base series (the paper's Figure 8(b) notes GenX has
  // no cross-series correlation by construction).
  SarimaProcess process;
  process.order.p = 1;
  process.order.d = 0;
  process.order.q = 1;
  process.order.sp = 0;
  process.order.sd = 1;
  process.order.sq = 1;
  process.order.season = 12;
  process.phi = {0.55};
  process.theta = {0.3};
  process.seasonal_theta = {0.4};
  process.noise_stddev = 1.0;
  process.burn_in = 60;

  for (NodeId node : graph.base_nodes()) {
    Rng child = rng.Split();
    TimeSeries series = SimulateSarima(process, length, child);
    // Shift positive: SMAPE-friendly magnitudes.
    double min_value = series[0];
    for (std::size_t i = 0; i < series.size(); ++i) {
      min_value = std::min(min_value, series[i]);
    }
    const double offset = 20.0 - std::min(0.0, min_value);
    for (std::size_t i = 0; i < series.size(); ++i) {
      series[i] = ClampPositive(series[i] + offset);
    }
    F2DB_RETURN_IF_ERROR(graph.SetBaseSeries(node, std::move(series)));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return DataSet{"gen" + std::to_string(num_base), std::move(graph), 12};
}

}  // namespace f2db
