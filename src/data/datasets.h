// Evaluation data sets (Section VI-A).
//
// The paper evaluates on three real-world data sets (Tourism, Sales,
// Energy) and synthetic GenX cubes. The real data is proprietary or
// offline, so this module generates faithful stand-ins that replicate the
// documented dimensionality, series counts/lengths, seasonality, and the
// cross-series correlation structure that drives each data set's
// characteristic result shape (see DESIGN.md section 1). GenX is
// implemented exactly as described: X independent SARIMA base series summed
// up a hierarchy whose depth follows the paper's rule.

#ifndef F2DB_DATA_DATASETS_H_
#define F2DB_DATA_DATASETS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "cube/graph.h"

namespace f2db {

/// A fully loaded evaluation data set: graph with aggregates built.
struct DataSet {
  std::string name;
  TimeSeriesGraph graph;
  /// Season length matching the data granularity (quarterly 4, monthly 12,
  /// hourly 24) — the paper sets the smoothing seasonality this way.
  std::size_t season = 1;
};

/// Tourism stand-in: 32 base series (4 visit purposes x 8 states),
/// quarterly 2004-2011 (32 observations). Strong shared seasonality makes
/// top-down competitive, as in Figure 7(a).
Result<DataSet> MakeTourism(std::uint64_t seed = 1);

/// Sales stand-in: 27 base series (9 products x 3 countries), monthly
/// 2004-2009 (72 observations). Product-idiosyncratic patterns make
/// direct/bottom-up competitive, as in Figure 7(b).
Result<DataSet> MakeSales(std::uint64_t seed = 2);

/// Energy stand-in: 86 customers, hourly (6 weeks = 1008 observations by
/// default to keep runtimes laptop-scale; the paper used ~8 months).
/// Dominant common daily profile + heavy noise flattens the differences
/// between approaches, as in Figure 7(c).
Result<DataSet> MakeEnergy(std::uint64_t seed = 3, std::size_t length = 1008);

/// GenX: `num_base` independent SARIMA base series summed up a single
/// hierarchy; number of graph levels per the paper's rule (3 if X<1k,
/// 4 if X<10k, 5 if X<100k, 6 otherwise).
Result<DataSet> MakeGenX(std::size_t num_base, std::uint64_t seed = 4,
                         std::size_t length = 60);

/// The paper's level rule for GenX (exposed for tests).
std::size_t GenXLevels(std::size_t num_base);

}  // namespace f2db

#endif  // F2DB_DATA_DATASETS_H_
