// CSV import/export of cube fact data.
//
// The fact format is one row per (base cell, time): the level-0 value name
// of every dimension, the integer time index, and the measure, e.g.
//     product,city,time,sales
//     P1,C1,0,12.5
// Import resolves value names against the schema, checks completeness
// (every base cell must cover the same contiguous time range), loads base
// series, and builds the aggregates.

#ifndef F2DB_DATA_CUBE_IO_H_
#define F2DB_DATA_CUBE_IO_H_

#include <string>

#include "common/status.h"
#include "cube/graph.h"

namespace f2db {

/// Writes the base facts of `graph` to a CSV file.
Status SaveFactsCsv(const TimeSeriesGraph& graph, const std::string& path);

/// Loads a fact CSV into a fresh graph over `schema` (aggregates built).
Result<TimeSeriesGraph> LoadFactsCsv(CubeSchema schema,
                                     const std::string& path);

}  // namespace f2db

#endif  // F2DB_DATA_CUBE_IO_H_
