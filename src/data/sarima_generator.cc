#include "data/sarima_generator.h"

#include <algorithm>
#include <cassert>

namespace f2db {
namespace {

// Expands (1 - sum a_i B^i)(1 - sum A_j B^{js}) so that
// w_t = sum_k out[k-1] w_{t-k} + ...; mirrors ArimaModel's expansion for
// the AR side. For the MA side call with ma = true (signs flip).
std::vector<double> ExpandPolynomial(const std::vector<double>& regular,
                                     const std::vector<double>& seasonal,
                                     std::size_t season, bool ma) {
  const std::size_t len = regular.size() + seasonal.size() * season;
  std::vector<double> out(len, 0.0);
  for (std::size_t i = 1; i <= regular.size(); ++i) {
    out[i - 1] += regular[i - 1];
  }
  for (std::size_t j = 1; j <= seasonal.size(); ++j) {
    out[j * season - 1] += seasonal[j - 1];
    for (std::size_t i = 1; i <= regular.size(); ++i) {
      const double cross = seasonal[j - 1] * regular[i - 1];
      out[j * season + i - 1] += ma ? cross : -cross;
    }
  }
  return out;
}

}  // namespace

TimeSeries SimulateSarima(const SarimaProcess& process, std::size_t length,
                          Rng& rng) {
  const ArimaOrder& order = process.order;
  assert(process.phi.size() == order.p);
  assert(process.theta.size() == order.q);
  assert(process.seasonal_phi.size() == order.sp);
  assert(process.seasonal_theta.size() == order.sq);
  const std::size_t s = std::max<std::size_t>(order.season, 1);

  const std::vector<double> ar =
      ExpandPolynomial(process.phi, process.seasonal_phi, s, /*ma=*/false);
  const std::vector<double> ma =
      ExpandPolynomial(process.theta, process.seasonal_theta, s, /*ma=*/true);

  // Stationary ARMA on the differenced scale.
  const std::size_t total = length + process.burn_in;
  std::vector<double> w(total, 0.0);
  std::vector<double> e(total, 0.0);
  for (std::size_t t = 0; t < total; ++t) {
    e[t] = rng.Gaussian(0.0, process.noise_stddev);
    double value = process.mean + e[t];
    for (std::size_t i = 1; i <= ar.size() && i <= t; ++i) {
      value += ar[i - 1] * (w[t - i] - process.mean);
    }
    for (std::size_t j = 1; j <= ma.size() && j <= t; ++j) {
      value += ma[j - 1] * e[t - j];
    }
    w[t] = value;
  }
  w.erase(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(process.burn_in));

  // Integrate: first d regular sums, then D seasonal sums.
  for (std::size_t k = 0; k < order.d; ++k) {
    double acc = 0.0;
    for (double& v : w) {
      acc += v;
      v = acc;
    }
  }
  for (std::size_t k = 0; k < order.sd; ++k) {
    for (std::size_t t = s; t < w.size(); ++t) w[t] += w[t - s];
  }

  for (double& v : w) v += process.level_offset;
  return TimeSeries(std::move(w), 0);
}

}  // namespace f2db
