// ConfigurationEvaluator: train/test bookkeeping, derivation weights, and
// scheme accuracy over a time series graph (Section II-C/D).
//
// Every quantity the advisor learns from (derivation weights, historical
// errors, weight stability) is computed on the training part of the
// history only; the held-out test part is used exclusively to measure the
// real forecast error of schemes (Section II-D: "the division of the time
// series into a training part, over which the model is created, and a
// testing part for the error calculation itself").

#ifndef F2DB_CORE_EVALUATOR_H_
#define F2DB_CORE_EVALUATOR_H_

#include <vector>

#include "core/derivation.h"
#include "cube/graph.h"
#include "ts/model.h"

namespace f2db {

/// Immutable evaluation context bound to one graph + split.
class ConfigurationEvaluator {
 public:
  /// Splits every node's series at `train_fraction` (applied to the common
  /// series length).
  ConfigurationEvaluator(const TimeSeriesGraph& graph, double train_fraction);

  const TimeSeriesGraph& graph() const { return *graph_; }
  std::size_t train_length() const { return train_length_; }
  std::size_t test_length() const { return test_length_; }

  /// Training part of a node's series (the model-fitting input).
  TimeSeries TrainSeries(NodeId node) const;

  /// Actual values of the held-out test part.
  std::vector<double> TestActual(NodeId node) const;

  /// h_x of Eq. 2: the sum of a node's training history (precomputed).
  double HistorySum(NodeId node) const { return history_sums_[node]; }

  /// Derivation weight k_{S->t} = h_t / sum h_s (Eq. 3); 0 when the
  /// denominator vanishes.
  double Weight(const std::vector<NodeId>& sources, NodeId target) const;

  /// Element-wise k * sum of source forecasts (Eq. 1). All forecasts must
  /// have equal length.
  static std::vector<double> Derive(
      double weight, const std::vector<const std::vector<double>*>& forecasts);

  /// SMAPE on the test part of `target` for a scheme whose source test
  /// forecasts are given (ordered as scheme.sources).
  double SchemeError(const DerivationScheme& scheme,
                     const std::vector<const std::vector<double>*>& forecasts,
                     NodeId target) const;

  /// Historical-error indicator component (Section III-B): assume a perfect
  /// model at `source` (its actual training values are the "forecast"),
  /// derive the target's training history, and return the SMAPE.
  double HistoricalError(NodeId source, NodeId target) const;

  /// Multi-source variant used by the multi-source optimizer.
  double HistoricalErrorMulti(const std::vector<NodeId>& sources,
                              NodeId target) const;

  /// Similarity indicator component (Section III-B): the stability of the
  /// per-step derivation weights y_t(i) / y_s(i) over the training history,
  /// measured as their coefficient of variation. Low = similar series.
  double WeightInstability(NodeId source, NodeId target) const;

 private:
  const TimeSeriesGraph* graph_;
  std::size_t train_length_ = 0;
  std::size_t test_length_ = 0;
  std::vector<double> history_sums_;
};

}  // namespace f2db

#endif  // F2DB_CORE_EVALUATOR_H_
