#include "core/advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "math/stats.h"

namespace f2db {
namespace {

/// Approximate memory footprint of one local-indicator entry.
constexpr std::size_t kBytesPerIndicatorEntry = 16;

/// Deterministic hash used to break indicator-value ties so that equally
/// attractive candidates (e.g. the uncovered default) are spread across the
/// graph instead of clustering at low node ids.
std::uint32_t SpreadHash(NodeId node) {
  std::uint32_t x = node * 2654435761u;
  x ^= x >> 16;
  x *= 2246822519u;
  x ^= x >> 13;
  return x;
}

}  // namespace

ModelConfigurationAdvisor::ModelConfigurationAdvisor(
    const TimeSeriesGraph& graph, ModelFactory factory, AdvisorOptions options)
    : graph_(&graph),
      factory_(std::move(factory)),
      options_(options),
      evaluator_(graph, options.train_fraction),
      indicators_(evaluator_, options.indicator),
      global_(graph.num_nodes()),
      blacklisted_(graph.num_nodes(), false) {
  local_cache_.resize(graph.num_nodes());
  num_threads_ = options_.num_threads == 0 ? ThreadPool::DefaultConcurrency()
                                           : options_.num_threads;
  batch_size_ = options_.models_per_iteration == 0 ? num_threads_
                                                   : options_.models_per_iteration;
  adaptive_batch_ = batch_size_;
  indicator_size_ = DetermineIndicatorSize();
  alpha_ = options_.initial_alpha;
}

std::size_t ModelConfigurationAdvisor::DetermineIndicatorSize() const {
  const std::size_t n = graph_->num_nodes();
  const std::size_t max_size = n > 1 ? n - 1 : 1;
  if (options_.indicator_size > 0) {
    return std::min(options_.indicator_size, max_size);
  }
  // Restrict |I| so that indicators for all nodes fit in the budget
  // (Section IV-C1).
  const std::size_t total_entries =
      options_.indicator_memory_budget_bytes / kBytesPerIndicatorEntry;
  std::size_t per_node = n > 0 ? total_entries / n : max_size;
  // 1024 caps the per-candidate analysis cost; beyond that the nearest-
  // node coverage gains are marginal (Figure 8(b) flattens well before).
  per_node = std::clamp<std::size_t>(
      per_node, std::min<std::size_t>(16, max_size), max_size);
  return std::min<std::size_t>(per_node, 1024);
}

const LocalIndicator& ModelConfigurationAdvisor::LocalOf(NodeId node) {
  if (!local_cache_[node].has_value()) {
    local_cache_[node] = indicators_.ComputeLocal(node, indicator_size_);
  }
  return *local_cache_[node];
}

void ModelConfigurationAdvisor::RebuildGlobal(const ModelConfiguration& config) {
  std::vector<const LocalIndicator*> locals;
  for (NodeId node : config.model_nodes()) locals.push_back(&LocalOf(node));
  global_.Rebuild(locals);
}

void ModelConfigurationAdvisor::SelectCandidates(
    const ModelConfiguration& config, std::vector<NodeId>& positive,
    std::vector<NodeId>& negative) {
  positive.clear();
  negative.clear();
  RebuildGlobal(config);

  const double mean = global_.Mean();
  const double stddev = global_.StdDev();
  const double threshold = mean + gamma_ * stddev;

  // Preselection (Eqs. 5 and 6).
  std::vector<NodeId> eligible;
  for (NodeId node = 0; node < graph_->num_nodes(); ++node) {
    if (config.HasModel(node) || blacklisted_[node]) continue;
    eligible.push_back(node);
    if (global_.value(node) > threshold) positive.push_back(node);
  }
  // Value-descending order with hashed tie-breaking, so that equal
  // indicator values (common while large parts of the graph are uncovered)
  // select spatially spread candidates instead of adjacent node ids.
  auto by_value_spread = [this](NodeId a, NodeId b) {
    const double va = global_.value(a);
    const double vb = global_.value(b);
    if (va != vb) return va > vb;
    return SpreadHash(a) < SpreadHash(b);
  };

  if (positive.empty() && !eligible.empty()) {
    // Fallback: take the highest-indicator eligible nodes so the advisor
    // keeps making progress even when the threshold filtered everything.
    std::partial_sort(
        eligible.begin(),
        eligible.begin() +
            static_cast<std::ptrdiff_t>(std::min(batch_size_, eligible.size())),
        eligible.end(), by_value_spread);
    eligible.resize(std::min(batch_size_, eligible.size()));
    positive = eligible;
  }

  // Bound the ranking work of one iteration: analyzing a candidate means
  // building its local indicator, which is the dominant selection cost.
  const std::size_t candidate_cap =
      options_.max_candidates_per_iteration > 0
          ? options_.max_candidates_per_iteration
          : 4 * batch_size_ + 16;
  if (positive.size() > candidate_cap) {
    std::partial_sort(positive.begin(),
                      positive.begin() + static_cast<std::ptrdiff_t>(candidate_cap),
                      positive.end(), by_value_spread);
    positive.resize(candidate_cap);
  }

  // Ranking of positive candidates: mean of the temporary global indicator
  // min(global, local_v), lower first (Section IV-A2). The first
  // batch_size_ ranks are assigned sequentially by *marginal* benefit —
  // after a candidate is ranked, its local indicator is merged into a
  // scratch global so overlapping candidates do not crowd one batch.
  std::vector<double> scratch = global_.values();
  const double n = static_cast<double>(scratch.size());
  std::vector<NodeId> remaining = positive;
  std::vector<NodeId> ranked;
  ranked.reserve(positive.size());
  double scratch_sum = 0.0;
  for (double v : scratch) scratch_sum += v;

  auto marginal_score = [&](NodeId v) {
    const LocalIndicator& local = LocalOf(v);
    double delta = 0.0;
    for (const auto& [target, value] : local.entries) {
      const double g = scratch[target];
      if (value < g) delta += value - g;
    }
    return (scratch_sum + delta) / n;
  };

  const std::size_t sequential = std::min(batch_size_, remaining.size());
  for (std::size_t pick = 0; pick < sequential; ++pick) {
    std::size_t best_index = 0;
    double best_score = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const double score = marginal_score(remaining[i]);
      if (score < best_score) {
        best_score = score;
        best_index = i;
      }
    }
    const NodeId chosen = remaining[best_index];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_index));
    ranked.push_back(chosen);
    // Merge into the scratch global for the next pick.
    for (const auto& [target, value] : LocalOf(chosen).entries) {
      if (value < scratch[target]) {
        scratch_sum += value - scratch[target];
        scratch[target] = value;
      }
    }
  }
  // Remaining candidates keep their one-shot score order.
  std::vector<std::pair<double, NodeId>> scored;
  scored.reserve(remaining.size());
  for (NodeId v : remaining) scored.emplace_back(marginal_score(v), v);
  std::sort(scored.begin(), scored.end());
  positive = std::move(ranked);
  for (const auto& [score, v] : scored) positive.push_back(v);

  // Negative candidates: all model nodes (their indicator is zero), ranked
  // so that the node whose removal hurts the global indicator least comes
  // first. Removing r replaces, at every entry r owns, the minimum by the
  // second-best local value — tracked exactly in one linear pass over all
  // local indicators (min / second-min per node with distinct owners).
  const std::vector<NodeId> model_nodes = config.model_nodes();
  if (model_nodes.size() >= 2) {
    constexpr NodeId kNoOwner = std::numeric_limits<NodeId>::max();
    const std::size_t num_nodes = graph_->num_nodes();
    std::vector<double> min1(num_nodes, kUncoveredIndicator);
    std::vector<double> min2(num_nodes, kUncoveredIndicator);
    std::vector<NodeId> owner(num_nodes, kNoOwner);
    for (NodeId m : model_nodes) {
      for (const auto& [target, value] : LocalOf(m).entries) {
        if (value < min1[target]) {
          min2[target] = min1[target];
          min1[target] = value;
          owner[target] = m;
        } else if (value < min2[target] && owner[target] != m) {
          min2[target] = value;
        }
      }
    }
    // Removal penalty of r: sum over owned entries of (second - first).
    std::unordered_map<NodeId, double> penalty;
    for (NodeId m : model_nodes) penalty[m] = 0.0;
    for (std::size_t t = 0; t < num_nodes; ++t) {
      if (owner[t] != kNoOwner) penalty[owner[t]] += min2[t] - min1[t];
    }
    std::vector<std::pair<double, NodeId>> removal_scores;
    removal_scores.reserve(model_nodes.size());
    for (NodeId r : model_nodes) removal_scores.emplace_back(penalty[r], r);
    std::sort(removal_scores.begin(), removal_scores.end());
    for (const auto& [score, r] : removal_scores) negative.push_back(r);
  }
}

std::vector<ModelConfigurationAdvisor::CandidateModel>
ModelConfigurationAdvisor::CreateModels(const std::vector<NodeId>& ranked) {
  const std::size_t n = std::min(adaptive_batch_, ranked.size());
  std::vector<CandidateModel> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i].node = ranked[i];

  // Revive parked models first (already built and timed).
  std::vector<std::size_t> to_build;
  for (std::size_t i = 0; i < n; ++i) {
    const auto parked = parked_models_.find(out[i].node);
    if (parked != parked_models_.end()) {
      out[i].entry = std::move(parked->second);
      out[i].created = true;
      out[i].newly_built = false;
      parked_models_.erase(parked);
    } else {
      to_build.push_back(i);
    }
  }

  ThreadPool pool(std::min<std::size_t>(num_threads_, std::max<std::size_t>(
                                                          1, to_build.size())));
  pool.ParallelFor(to_build.size(), [&](std::size_t j) {
    CandidateModel& cand = out[to_build[j]];
    StopWatch watch;
    auto fitted = factory_.CreateAndFit(evaluator_.TrainSeries(cand.node));
    if (!fitted.ok()) {
      F2DB_LOG(kWarning) << "model creation failed at node "
                         << graph_->NodeName(cand.node) << ": "
                         << fitted.status().ToString();
      return;
    }
    cand.entry.model = std::move(fitted).value();
    cand.entry.creation_seconds =
        options_.count_models_as_cost ? 1.0 : watch.ElapsedSeconds();
    cand.entry.test_forecast =
        cand.entry.model->Forecast(evaluator_.test_length());
    cand.created = true;
    cand.newly_built = true;
  });

  // Coverage from the (cached) local indicators; computed on the main
  // thread because LocalOf mutates the cache.
  for (CandidateModel& cand : out) {
    if (!cand.created) continue;
    if (cand.entry.coverage.empty()) {
      for (const auto& [target, value] : LocalOf(cand.node).entries) {
        if (target != cand.node) cand.entry.coverage.push_back(target);
      }
    }
    if (cand.entry.creation_seconds > 0.0) {
      avg_creation_seconds_ =
          (avg_creation_seconds_ * static_cast<double>(creation_samples_) +
           cand.entry.creation_seconds) /
          static_cast<double>(creation_samples_ + 1);
      ++creation_samples_;
    }
  }
  return out;
}

double ModelConfigurationAdvisor::NormalizeCost(double cost_seconds) const {
  // Eq. 8 "requires a normalization so that error and costs are
  // comparable". We express cost in model-equivalents (seconds divided by
  // the average creation time) and price one model at the running average
  // error improvement a candidate model achieves. At alpha = 0.5 this
  // accepts exactly the above-average models; alpha -> 1 accepts any
  // improving model (Eq. 7), matching Figures 8(e)/(f).
  if (creation_samples_ == 0 || improvement_samples_ == 0 ||
      avg_creation_seconds_ <= 0.0) {
    return 0.0;  // no scale information yet: decide on error alone
  }
  const double model_equivalents = cost_seconds / avg_creation_seconds_;
  return model_equivalents * avg_improvement_;
}

bool ModelConfigurationAdvisor::Accept(double err_new, double cost_new,
                                       double err_old, double cost_old) const {
  const double lhs =
      alpha_ * err_new + (1.0 - alpha_) * NormalizeCost(cost_new);
  const double rhs =
      alpha_ * err_old + (1.0 - alpha_) * NormalizeCost(cost_old);
  return lhs < rhs;
}

Result<AdvisorResult> ModelConfigurationAdvisor::Run() {
  if (graph_->series_length() < 5) {
    return Status::FailedPrecondition(
        "advisor: graph series too short (need >= 5 observations)");
  }
  StopWatch total_watch;
  AdvisorResult result{ModelConfiguration(graph_->num_nodes()), {}};
  ModelConfiguration& config = result.configuration;
  result.indicator_size_used = indicator_size_;
  if (!options_.node_weights.empty()) {
    F2DB_RETURN_IF_ERROR(config.SetNodeWeights(options_.node_weights));
  }

  MultiSourceOptimizer multi_source(evaluator_, options_.multi_source,
                                    options_.seed);
  if (options_.async_multi_source &&
      options_.multi_source_probes_per_iteration > 0) {
    multi_source.StartAsync();
  }

  // Initialize gamma so that roughly num_threads_ candidates are selected
  // under a normality assumption (Section IV-C1).
  {
    const double n = static_cast<double>(batch_size_);
    const double total = static_cast<double>(graph_->num_nodes());
    const double p = std::clamp(1.0 - n / total, 0.5, 1.0 - 1e-9);
    gamma_ = InverseNormalCdf(p);
  }

  // Optional seed model at the top node (Figure 4 starts this way).
  if (options_.start_with_top_model) {
    const NodeId top = graph_->top_node();
    StopWatch watch;
    auto fitted = factory_.CreateAndFit(evaluator_.TrainSeries(top));
    if (fitted.ok()) {
      ModelEntry entry;
      entry.model = std::move(fitted).value();
      entry.creation_seconds =
          options_.count_models_as_cost ? 1.0 : watch.ElapsedSeconds();
      entry.test_forecast = entry.model->Forecast(evaluator_.test_length());
      for (const auto& [target, value] : LocalOf(top).entries) {
        if (target != top) entry.coverage.push_back(target);
      }
      avg_creation_seconds_ = entry.creation_seconds;
      creation_samples_ = 1;
      config.AddModel(top, std::move(entry));
      config.ApplyModelSchemes(evaluator_, top);
      ++result.models_created;
      ++result.models_accepted;
    } else {
      F2DB_LOG(kWarning) << "advisor: could not seed top-node model: "
                         << fitted.status().ToString();
    }
  }

  double best_error_seen = config.MeanError();
  std::size_t consecutive_rejects = 0;
  std::size_t iterations_at_alpha = 0;
  bool stop = false;

  while (!stop) {
    ++result.iterations;
    const std::size_t iteration = result.iterations;

    // ---------------------------------------------- candidate selection
    StopWatch selection_watch;
    std::vector<NodeId> positive;
    std::vector<NodeId> negative;
    SelectCandidates(config, positive, negative);
    const double selection_seconds = selection_watch.ElapsedSeconds();

    if (positive.empty() && negative.empty()) break;  // nothing left to do

    // ------------------------------------------------------- evaluation
    StopWatch evaluation_watch;
    double error_before_iteration = config.MeanError();

    std::vector<CandidateModel> candidates = CreateModels(positive);
    for (CandidateModel& cand : candidates) {
      if (!cand.created) continue;
      if (cand.newly_built) ++result.models_created;
      const double err_old = config.MeanError();
      const double cost_old = config.TotalCostSeconds();

      // Snapshot the assignments this model could touch, for rollback.
      std::vector<std::pair<NodeId, NodeAssignment>> saved;
      saved.emplace_back(cand.node, config.assignment(cand.node));
      for (NodeId target : cand.entry.coverage) {
        saved.emplace_back(target, config.assignment(target));
      }

      const NodeId node = cand.node;
      config.AddModel(node, std::move(cand.entry));
      config.ApplyModelSchemes(evaluator_, node);
      const double err_new = config.MeanError();
      const double cost_new = config.TotalCostSeconds();

      // Track the per-candidate improvement scale (the Eq. 8 cost unit).
      const double improvement = std::max(0.0, err_old - err_new);
      avg_improvement_ =
          (avg_improvement_ * static_cast<double>(improvement_samples_) +
           improvement) /
          static_cast<double>(improvement_samples_ + 1);
      ++improvement_samples_;

      if (Accept(err_new, cost_new, err_old, cost_old)) {
        global_.Merge(LocalOf(node));
        ++result.models_accepted;
        consecutive_rejects = 0;
      } else {
        ModelEntry removed = config.RemoveModel(node);
        // Restoring the snapshot undoes exactly the improvements
        // ApplyModelSchemes made (it never worsens other assignments).
        for (auto& [target, assignment] : saved) {
          config.set_assignment(target, assignment);
        }
        ++result.models_rejected;
        ++consecutive_rejects;
        if (err_new >= err_old - 1e-12) {
          blacklisted_[node] = true;  // no error improvement: never again
        } else {
          parked_models_[node] = std::move(removed);  // retry at higher alpha
        }
      }
    }

    // Deletion of the lowest-benefit negative candidate (Section IV-B2).
    if (!negative.empty() && config.num_models() >= 2) {
      const NodeId victim = negative.front();
      const double err_old = config.MeanError();
      const double cost_old = config.TotalCostSeconds();

      // Only nodes whose current scheme uses the victim can change.
      std::vector<NodeId> affected;
      for (NodeId t = 0; t < graph_->num_nodes(); ++t) {
        const auto& sources = config.assignment(t).scheme.sources;
        if (std::find(sources.begin(), sources.end(), victim) !=
            sources.end()) {
          affected.push_back(t);
        }
      }
      std::vector<std::pair<NodeId, NodeAssignment>> saved;
      saved.reserve(affected.size());
      for (NodeId t : affected) saved.emplace_back(t, config.assignment(t));

      ModelEntry removed = config.RemoveModel(victim);
      config.RecomputeNodes(evaluator_, affected);
      const double err_new = config.MeanError();
      const double cost_new = config.TotalCostSeconds();
      if (Accept(err_new, cost_new, err_old, cost_old)) {
        ++result.models_deleted;
        RebuildGlobal(config);
      } else {
        config.AddModel(victim, std::move(removed));
        for (auto& [t, assignment] : saved) {
          config.set_assignment(t, std::move(assignment));
        }
      }
    }
    const double evaluation_seconds = evaluation_watch.ElapsedSeconds();

    // ---------------------------------------------------------- control
    // The gamma / batch-width adjustments react to measured phase times;
    // under count_models_as_cost (the reproducibility mode) they are
    // frozen so wall-clock noise cannot change any decision.
    if (!options_.count_models_as_cost) {
      // Gamma: balance candidate-selection time against evaluation time.
      if (selection_seconds > evaluation_seconds) {
        gamma_ = std::min(gamma_ + 0.25, 6.0);  // fewer candidates
      } else {
        gamma_ = std::max(gamma_ - 0.25, -1.0);  // analyze more candidates
      }

      // Batch width: when model creation dominates the iteration cost,
      // build fewer (but better-ranked) models per iteration and let the
      // candidate selection phase absorb the analysis work instead
      // (Section IV-C1: "the candidate selection phase should not be more
      // expensive than the evaluation phase" — and vice versa).
      const double creation_cost =
          avg_creation_seconds_ * static_cast<double>(adaptive_batch_);
      if (creation_cost > std::max(4.0 * selection_seconds, 0.05)) {
        adaptive_batch_ = std::max<std::size_t>(1, adaptive_batch_ / 2);
      } else if (adaptive_batch_ < batch_size_ &&
                 creation_cost < std::max(2.0 * selection_seconds, 0.025)) {
        ++adaptive_batch_;
      }
    }

    // Multi-source optimizer (Section IV-C2).
    if (options_.multi_source_probes_per_iteration > 0) {
      if (options_.async_multi_source) {
        multi_source.PublishModelNodes(config.model_nodes());
        result.multi_source_adopted += multi_source.DrainSuggestions(config);
      } else {
        result.multi_source_adopted += multi_source.RunProbes(
            config, options_.multi_source_probes_per_iteration);
      }
    }

    // Alpha schedule. While alpha is still rising the per-alpha iteration
    // cap keeps the advisor moving; once alpha has reached its final value
    // only genuine stalls (reject streaks or negligible improvement) end
    // the run — Figure 8(e)/(f) show alpha = 1 as "the best possible
    // configuration", which requires running improvements to exhaustion.
    ++iterations_at_alpha;
    const double error_now = config.MeanError();
    const double relative_improvement =
        error_before_iteration > 1e-12
            ? (error_before_iteration - error_now) / error_before_iteration
            : 0.0;
    const bool at_final_alpha = alpha_ >= options_.final_alpha - 1e-9;
    const bool stalled =
        consecutive_rejects >= options_.max_rejects_per_alpha ||
        relative_improvement < options_.min_relative_improvement;
    const bool bump_alpha =
        stalled ||
        (!at_final_alpha &&
         iterations_at_alpha >= options_.max_iterations_per_alpha);
    if (bump_alpha) {
      alpha_ += options_.alpha_step;
      consecutive_rejects = 0;
      iterations_at_alpha = 0;
      if (alpha_ > options_.final_alpha + 1e-9) stop = true;
    }
    best_error_seen = std::min(best_error_seen, error_now);

    // ----------------------------------------------------------- output
    AdvisorSnapshot snapshot;
    snapshot.iteration = iteration;
    snapshot.error = error_now;
    snapshot.cost_seconds = config.TotalCostSeconds();
    snapshot.num_models = config.num_models();
    snapshot.alpha = std::min(alpha_, options_.final_alpha);
    snapshot.gamma = gamma_;
    snapshot.selection_seconds = selection_seconds;
    snapshot.evaluation_seconds = evaluation_seconds;
    result.history.push_back(snapshot);

    if (options_.verbose) {
      F2DB_LOG(kInfo) << "advisor iter " << iteration << ": error="
                      << snapshot.error << " models=" << snapshot.num_models
                      << " cost=" << snapshot.cost_seconds
                      << "s alpha=" << snapshot.alpha << " gamma=" << gamma_;
    }
    if (callback_ && !callback_(snapshot)) break;

    // Stop criteria (Section IV-D).
    const StopCriteria& criteria = options_.stop;
    if (criteria.target_error.has_value() &&
        snapshot.error <= *criteria.target_error) {
      break;
    }
    if (criteria.target_relative_error.has_value() &&
        result.history.front().error > 1e-12 &&
        snapshot.error / result.history.front().error <=
            *criteria.target_relative_error) {
      break;
    }
    if (criteria.max_cost_seconds.has_value() &&
        snapshot.cost_seconds >= *criteria.max_cost_seconds) {
      break;
    }
    if (criteria.max_models.has_value() &&
        snapshot.num_models >= *criteria.max_models) {
      break;
    }
    if (criteria.max_iterations.has_value() &&
        iteration >= *criteria.max_iterations) {
      break;
    }
  }

  if (options_.async_multi_source) multi_source.StopAsync();

  result.final_error = config.MeanError();
  result.final_cost_seconds = config.TotalCostSeconds();
  result.total_runtime_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace f2db
