#include "core/derivation.h"

#include <sstream>

namespace f2db {

std::string DerivationScheme::ToString() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i > 0) out << ",";
    out << sources[i];
  }
  out << "}";
  return out.str();
}

}  // namespace f2db
