#include "core/multi_source.h"

#include <algorithm>
#include <chrono>

namespace f2db {

MultiSourceOptimizer::MultiSourceOptimizer(
    const ConfigurationEvaluator& evaluator, MultiSourceOptions options,
    std::uint64_t seed)
    : evaluator_(&evaluator), options_(options), rng_(seed) {}

MultiSourceOptimizer::~MultiSourceOptimizer() { StopAsync(); }

std::optional<std::pair<NodeId, DerivationScheme>>
MultiSourceOptimizer::SampleProbe(const std::vector<NodeId>& model_nodes,
                                  Rng& rng) const {
  if (model_nodes.size() < 2) return std::nullopt;
  const TimeSeriesGraph& graph = evaluator_->graph();

  // Random target node.
  const NodeId target = static_cast<NodeId>(
      rng.UniformInt(0, static_cast<std::int64_t>(graph.num_nodes()) - 1));

  // Candidate sources: model nodes near the target, selection probability
  // decreasing with graph distance (Section IV-C2).
  std::vector<NodeId> pool;
  std::vector<double> weights;
  for (NodeId m : model_nodes) {
    if (m == target) continue;
    const std::size_t distance = graph.Distance(target, m);
    if (distance > options_.neighborhood) continue;
    pool.push_back(m);
    weights.push_back(1.0 / (1.0 + static_cast<double>(distance)));
  }
  if (pool.size() < 2) return std::nullopt;

  // Random number of sources in [2, max_sources].
  const std::size_t want = static_cast<std::size_t>(rng.UniformInt(
      2, static_cast<std::int64_t>(
             std::min(options_.max_sources, pool.size()))));
  std::vector<NodeId> sources;
  std::vector<double> w = weights;
  std::vector<NodeId> p = pool;
  for (std::size_t i = 0; i < want && !p.empty(); ++i) {
    const std::size_t pick = rng.SampleDiscrete(w);
    sources.push_back(p[pick]);
    p.erase(p.begin() + static_cast<std::ptrdiff_t>(pick));
    w.erase(w.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  if (sources.size() < 2) return std::nullopt;
  std::sort(sources.begin(), sources.end());

  // Cheap pre-screen on historical data only.
  const double historical =
      evaluator_->HistoricalErrorMulti(sources, target);
  if (historical > options_.prescreen_threshold) return std::nullopt;
  return std::make_pair(target, DerivationScheme::Multi(std::move(sources)));
}

std::size_t MultiSourceOptimizer::RunProbes(ModelConfiguration& config,
                                            std::size_t budget) {
  const std::vector<NodeId> model_nodes = config.model_nodes();
  std::size_t adopted = 0;
  for (std::size_t i = 0; i < budget; ++i) {
    auto probe = SampleProbe(model_nodes, rng_);
    if (!probe.has_value()) continue;
    if (config.TryMultiSourceScheme(*evaluator_, probe->first,
                                    std::move(probe->second))) {
      ++adopted;
    }
  }
  return adopted;
}

void MultiSourceOptimizer::StartAsync() {
  if (async_running_.exchange(true)) return;
  // Split the generator before the thread starts so the member generator is
  // never touched concurrently.
  Rng child = rng_.Split();
  async_thread_ = std::thread([this, child]() mutable { AsyncLoop(child); });
}

void MultiSourceOptimizer::StopAsync() {
  if (!async_running_.exchange(false)) return;
  if (async_thread_.joinable()) async_thread_.join();
}

void MultiSourceOptimizer::PublishModelNodes(std::vector<NodeId> model_nodes) {
  std::lock_guard<std::mutex> lock(mutex_);
  shared_model_nodes_ = std::move(model_nodes);
}

std::size_t MultiSourceOptimizer::DrainSuggestions(ModelConfiguration& config) {
  std::vector<std::pair<NodeId, DerivationScheme>> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(suggestions_);
  }
  std::size_t adopted = 0;
  for (auto& [target, scheme] : batch) {
    if (config.TryMultiSourceScheme(*evaluator_, target, std::move(scheme))) {
      ++adopted;
    }
  }
  return adopted;
}

void MultiSourceOptimizer::AsyncLoop(Rng& rng) {
  while (async_running_.load(std::memory_order_relaxed)) {
    std::vector<NodeId> model_nodes;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      model_nodes = shared_model_nodes_;
    }
    auto probe = SampleProbe(model_nodes, rng);
    if (probe.has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (suggestions_.size() < 1024) {
        suggestions_.push_back(std::move(*probe));
      }
    } else {
      // Back off briefly when samples are not viable to avoid spinning.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

}  // namespace f2db
