// Indicators: cheap heuristics for the expected benefit of a model
// (Section III-B).
//
// A local indicator of a source node s holds, for each target t in its
// coverage, a combined estimate of how accurately t could be derived from a
// model at s — computed WITHOUT building any model, from (1) the historical
// error of the scheme s -> t under a perfect model assumption and (2) the
// stability of the per-step derivation weights. The indicator of a node
// with itself is 0. The global indicator is the element-wise minimum over
// the local indicators of all nodes currently carrying models; entries not
// covered by any local indicator default to the maximum.

#ifndef F2DB_CORE_INDICATORS_H_
#define F2DB_CORE_INDICATORS_H_

#include <vector>

#include "core/evaluator.h"
#include "cube/graph.h"

namespace f2db {

/// Indicator value assigned to nodes not covered by any local indicator.
/// Historical SMAPE is bounded by 1 and the similarity term by
/// `similarity_weight`, so this dominates every computed value.
inline constexpr double kUncoveredIndicator = 2.0;

/// Tuning of the indicator combination.
struct IndicatorOptions {
  /// Weight of the similarity (weight-stability) term; the historical
  /// error term has weight 1. Setting 0 ablates similarity.
  double similarity_weight = 0.5;
  /// Weight of the historical-error term; setting 0 ablates it.
  double historical_weight = 1.0;
};

/// The local indicator array of one source node.
struct LocalIndicator {
  NodeId source = 0;
  /// (target, indicator value); includes (source, 0.0); sorted by target.
  std::vector<std::pair<NodeId, double>> entries;
};

/// Computes local indicators over a fixed evaluation context.
class IndicatorComputer {
 public:
  IndicatorComputer(const ConfigurationEvaluator& evaluator,
                    IndicatorOptions options)
      : evaluator_(&evaluator), options_(options) {}

  /// Combined indicator of the scheme source -> target; 0 when equal.
  double Indicate(NodeId source, NodeId target) const;

  /// Builds the local indicator of `source` covering itself and its
  /// `size` nearest nodes in the graph (Section IV-C1: "the local
  /// indicator of a node s is constructed by including those nodes which
  /// are closest to s in the time series graph").
  LocalIndicator ComputeLocal(NodeId source, std::size_t size) const;

 private:
  const ConfigurationEvaluator* evaluator_;
  IndicatorOptions options_;
};

/// Element-wise minimum over local indicators; one entry per graph node.
class GlobalIndicator {
 public:
  explicit GlobalIndicator(std::size_t num_nodes)
      : values_(num_nodes, kUncoveredIndicator) {}

  /// Merges one local indicator (element-wise min).
  void Merge(const LocalIndicator& local);

  /// Resets to "uncovered" and merges all given locals.
  void Rebuild(const std::vector<const LocalIndicator*>& locals);

  double value(NodeId node) const { return values_[node]; }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }

  /// Mean / standard deviation over all entries (Eq. 5's E(I), sigma(I)).
  double Mean() const;
  double StdDev() const;

 private:
  std::vector<double> values_;
};

}  // namespace f2db

#endif  // F2DB_CORE_INDICATORS_H_
