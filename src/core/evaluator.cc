#include "core/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "math/stats.h"
#include "ts/accuracy.h"

namespace f2db {

ConfigurationEvaluator::ConfigurationEvaluator(const TimeSeriesGraph& graph,
                                               double train_fraction)
    : graph_(&graph) {
  const std::size_t n = graph.series_length();
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  train_length_ = static_cast<std::size_t>(train_fraction *
                                           static_cast<double>(n));
  if (n >= 2) {
    train_length_ = std::clamp<std::size_t>(train_length_, 1, n - 1);
  }
  test_length_ = n - train_length_;

  history_sums_.resize(graph.num_nodes(), 0.0);
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    const TimeSeries& series = graph.series(node);
    double sum = 0.0;
    for (std::size_t i = 0; i < train_length_ && i < series.size(); ++i) {
      sum += series[i];
    }
    history_sums_[node] = sum;
  }
}

TimeSeries ConfigurationEvaluator::TrainSeries(NodeId node) const {
  return graph_->series(node).Head(train_length_);
}

std::vector<double> ConfigurationEvaluator::TestActual(NodeId node) const {
  const TimeSeries tail = graph_->series(node).Slice(train_length_, test_length_);
  return tail.values();
}

double ConfigurationEvaluator::Weight(const std::vector<NodeId>& sources,
                                      NodeId target) const {
  double denom = 0.0;
  for (NodeId s : sources) denom += history_sums_[s];
  if (std::abs(denom) < 1e-12) return 0.0;
  return history_sums_[target] / denom;
}

std::vector<double> ConfigurationEvaluator::Derive(
    double weight, const std::vector<const std::vector<double>*>& forecasts) {
  assert(!forecasts.empty());
  std::vector<double> out(forecasts[0]->size(), 0.0);
  for (const std::vector<double>* f : forecasts) {
    assert(f->size() == out.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += (*f)[i];
  }
  for (double& v : out) v *= weight;
  return out;
}

double ConfigurationEvaluator::SchemeError(
    const DerivationScheme& scheme,
    const std::vector<const std::vector<double>*>& forecasts,
    NodeId target) const {
  if (scheme.IsEmpty() || forecasts.empty()) return 1.0;
  const double k = Weight(scheme.sources, target);
  const std::vector<double> derived = Derive(k, forecasts);
  return Smape(TestActual(target), derived);
}

double ConfigurationEvaluator::HistoricalError(NodeId source,
                                               NodeId target) const {
  return HistoricalErrorMulti({source}, target);
}

double ConfigurationEvaluator::HistoricalErrorMulti(
    const std::vector<NodeId>& sources, NodeId target) const {
  const double k = Weight(sources, target);
  const TimeSeries& target_series = graph_->series(target);
  double error_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < train_length_; ++i) {
    double src = 0.0;
    for (NodeId s : sources) src += graph_->series(s)[i];
    const double derived = k * src;
    const double actual = target_series[i];
    const double denom = std::abs(actual) + std::abs(derived);
    if (denom >= 1e-12) error_sum += std::abs(actual - derived) / denom;
    ++count;
  }
  if (count == 0) return 1.0;
  return error_sum / static_cast<double>(count);
}

double ConfigurationEvaluator::WeightInstability(NodeId source,
                                                 NodeId target) const {
  const TimeSeries& src_series = graph_->series(source);
  const TimeSeries& tgt_series = graph_->series(target);
  std::vector<double> weights;
  weights.reserve(train_length_);
  for (std::size_t i = 0; i < train_length_; ++i) {
    const double s = src_series[i];
    if (std::abs(s) < 1e-12) continue;
    weights.push_back(tgt_series[i] / s);
  }
  if (weights.size() < 2) return 1.0;  // no evidence of stability
  return CoefficientOfVariation(weights);
}

}  // namespace f2db
