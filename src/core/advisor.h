// The model configuration advisor (Sections III and IV).
//
// Given a time series graph, the advisor iteratively builds a model
// configuration through four phases:
//
//   1. Candidate selection — indicators rank positive candidates V_A
//      (nodes likely to benefit from a model, Eq. 5) and negative
//      candidates V_R (model nodes that may be removable, Eq. 6).
//   2. Evaluation — models are created in parallel for the top-n ranked
//      positive candidates (n = worker threads, mirroring the paper's
//      processor count), their real benefit is measured, and the
//      generalized acceptance criterion (Eq. 8, parameter alpha) admits or
//      rejects them; the lowest-benefit negative candidate is test-deleted.
//   3. Control — regulates the indicator size |I| (memory budget), the
//      candidate threshold gamma (balancing selection vs. evaluation
//      time), and the alpha schedule; runs the multi-source optimizer.
//   4. Output — records an intermediate snapshot, invokes the user
//      callback (the advisor can be interrupted at any time), and checks
//      the stop criteria.

#ifndef F2DB_CORE_ADVISOR_H_
#define F2DB_CORE_ADVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/configuration.h"
#include "core/evaluator.h"
#include "core/indicators.h"
#include "core/multi_source.h"
#include "cube/graph.h"
#include "ts/model_factory.h"

namespace f2db {

/// User-definable termination conditions (Section IV-D).
struct StopCriteria {
  /// Stop once the configuration error is at or below this value.
  std::optional<double> target_error;
  /// Stop once the relative error (vs. the initial configuration) is at or
  /// below this fraction.
  std::optional<double> target_relative_error;
  /// Stop once total model costs reach this many seconds.
  std::optional<double> max_cost_seconds;
  /// Stop once this many models are in the configuration.
  std::optional<std::size_t> max_models;
  /// Hard cap on advisor iterations.
  std::optional<std::size_t> max_iterations;
};

/// All advisor knobs. The defaults implement the paper's self-regulating
/// behaviour; "ideally no further parameterization input should be needed".
struct AdvisorOptions {
  /// Train fraction of every series (the paper uses about 80%).
  double train_fraction = 0.8;
  /// Worker threads for model creation; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Models created per iteration (the paper's n, "restricted by the number
  /// of available processors"); 0 = same as the worker thread count. Set
  /// explicitly to emulate the paper's 12-core batch size on smaller
  /// machines.
  std::size_t models_per_iteration = 0;
  /// Hard cap on positive candidates analyzed (local indicators built) in
  /// one ranking step; 0 = auto (4x the batch size + 16). The gamma control
  /// steers the candidate count across iterations, this cap bounds the
  /// worst single iteration.
  std::size_t max_candidates_per_iteration = 0;
  /// Initial acceptance parameter alpha of Eq. 8 (paper: "usually 0.1").
  double initial_alpha = 0.1;
  /// Alpha increment applied by the control phase.
  double alpha_step = 0.1;
  /// Alpha at which the advisor stops increasing (inclusive upper end).
  double final_alpha = 1.0;
  /// Consecutive rejects that trigger an alpha increase.
  std::size_t max_rejects_per_alpha = 3;
  /// Iterations spent at one alpha before it is increased.
  std::size_t max_iterations_per_alpha = 8;
  /// Relative error improvement below which alpha is increased.
  double min_relative_improvement = 1e-3;
  /// Local indicator size |I|; 0 derives it from the memory budget.
  std::size_t indicator_size = 0;
  /// Memory budget for all indicator arrays (Section IV-C1).
  std::size_t indicator_memory_budget_bytes = std::size_t{256} << 20;
  /// Indicator combination weights.
  IndicatorOptions indicator;
  /// Seed the configuration with a model at the top node (the advisor then
  /// works its way down, mirroring the running example in Figure 4).
  bool start_with_top_model = true;
  /// Multi-source probes executed per iteration (0 disables; Section IV-C2).
  std::size_t multi_source_probes_per_iteration = 16;
  /// Run the multi-source optimizer as a true background thread.
  bool async_multi_source = false;
  MultiSourceOptions multi_source;
  /// Price every model at one cost unit instead of its measured creation
  /// time, and freeze the time-based control decisions (gamma and batch
  /// width stay at their initial values). Makes advisor runs bit-for-bit
  /// reproducible — wall-clock noise otherwise feeds into the Eq. 8
  /// acceptance and the control phase. Appropriate when all models share
  /// one family and thus comparable maintenance cost.
  bool count_models_as_cost = false;
  /// Workload-aware extension: per-node importance weights for the
  /// configuration error (e.g. expected query frequencies). Empty =
  /// uniform, as in the paper. Must have one entry per graph node.
  std::vector<double> node_weights;
  /// Deterministic seed for all stochastic components.
  std::uint64_t seed = 42;
  /// Emit per-iteration INFO logs.
  bool verbose = false;
  StopCriteria stop;
};

/// One row of the advisor's continuous output (Section IV-D).
struct AdvisorSnapshot {
  std::size_t iteration = 0;
  double error = 1.0;
  double cost_seconds = 0.0;
  std::size_t num_models = 0;
  double alpha = 0.0;
  double gamma = 0.0;
  double selection_seconds = 0.0;
  double evaluation_seconds = 0.0;
};

/// Final outcome of an advisor run.
struct AdvisorResult {
  ModelConfiguration configuration;
  std::vector<AdvisorSnapshot> history;  ///< One entry per iteration.
  std::size_t iterations = 0;
  std::size_t models_created = 0;
  std::size_t models_accepted = 0;
  std::size_t models_rejected = 0;
  std::size_t models_deleted = 0;
  std::size_t multi_source_adopted = 0;
  std::size_t indicator_size_used = 0;
  double final_error = 1.0;
  double final_cost_seconds = 0.0;
  double total_runtime_seconds = 0.0;
};

/// The offline model configuration advisor.
class ModelConfigurationAdvisor {
 public:
  /// Invoked after every iteration with the latest snapshot; returning
  /// false interrupts the advisor (its current configuration is returned).
  using IterationCallback = std::function<bool(const AdvisorSnapshot&)>;

  /// The graph must outlive the advisor and have its aggregates built.
  ModelConfigurationAdvisor(const TimeSeriesGraph& graph, ModelFactory factory,
                            AdvisorOptions options = {});

  void set_iteration_callback(IterationCallback callback) {
    callback_ = std::move(callback);
  }

  /// Runs the full iterative process and returns the final configuration.
  Result<AdvisorResult> Run();

  /// The evaluation context (exposed for benches and tests).
  const ConfigurationEvaluator& evaluator() const { return evaluator_; }

  /// The effective |I| in use.
  std::size_t indicator_size() const { return indicator_size_; }

 private:
  struct CandidateModel {
    NodeId node = 0;
    ModelEntry entry;
    bool created = false;
    /// False when the model was revived from the parked pool.
    bool newly_built = true;
  };

  /// Derives |I| from options / memory budget.
  std::size_t DetermineIndicatorSize() const;

  /// Lazily computes and caches the local indicator of `node`.
  const LocalIndicator& LocalOf(NodeId node);

  /// Rebuilds the global indicator from the locals of all model nodes.
  void RebuildGlobal(const ModelConfiguration& config);

  /// Phase 1: preselection + ranking. Returns ranked V_A and V_R.
  void SelectCandidates(const ModelConfiguration& config,
                        std::vector<NodeId>& positive,
                        std::vector<NodeId>& negative);

  /// Creates (or revives) models for the top-n positive candidates.
  std::vector<CandidateModel> CreateModels(const std::vector<NodeId>& ranked);

  /// Acceptance criterion of Eq. 8 on normalized (error, cost) pairs.
  bool Accept(double err_new, double cost_new, double err_old,
              double cost_old) const;

  /// Cost normalization: total seconds relative to the estimated cost of
  /// the all-models configuration.
  double NormalizeCost(double cost_seconds) const;

  const TimeSeriesGraph* graph_;
  ModelFactory factory_;
  AdvisorOptions options_;
  ConfigurationEvaluator evaluator_;
  IndicatorComputer indicators_;
  IterationCallback callback_;

  std::size_t indicator_size_ = 0;
  std::size_t num_threads_ = 1;
  std::size_t batch_size_ = 1;
  /// Models actually created this iteration; shrunk by the control phase
  /// when model creation dominates the iteration cost (Section IV-C1).
  std::size_t adaptive_batch_ = 1;
  double gamma_ = 0.0;
  double alpha_ = 0.1;
  double avg_creation_seconds_ = 0.0;
  std::size_t creation_samples_ = 0;
  /// Running mean error improvement per evaluated candidate model; the
  /// cost unit of Eq. 8 (DESIGN.md section 4: cost normalization).
  double avg_improvement_ = 0.0;
  std::size_t improvement_samples_ = 0;

  std::vector<std::optional<LocalIndicator>> local_cache_;
  GlobalIndicator global_;
  std::vector<bool> blacklisted_;
  /// Models rejected with error improvement are parked for cheap retry at
  /// a higher alpha.
  std::unordered_map<NodeId, ModelEntry> parked_models_;
};

}  // namespace f2db

#endif  // F2DB_CORE_ADVISOR_H_
