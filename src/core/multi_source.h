// Multi-source derivation-scheme optimizer (Section IV-C2).
//
// The advisor's indicators only consider derivation schemes from single
// source nodes. This component samples schemes with multiple sources:
// "It iteratively selects a target node and a random number of source
// nodes from the time series graph, where the possibility of selecting a
// source node decreases with increasing distance from the target node."
// Probes whose historical accuracy looks promising are applied to the
// configuration when they improve the real error.
//
// Two execution modes: in-iteration (a budget of probes per advisor
// iteration; deterministic) or asynchronous (a background thread
// pre-screens probes on historical data only, the advisor applies the
// suggestions during its control phase).

#ifndef F2DB_CORE_MULTI_SOURCE_H_
#define F2DB_CORE_MULTI_SOURCE_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/configuration.h"
#include "core/evaluator.h"

namespace f2db {

/// Tuning of the multi-source sampler.
struct MultiSourceOptions {
  std::size_t max_sources = 4;      ///< Maximum sources per scheme.
  std::size_t neighborhood = 24;    ///< Sampling pool around the target.
  /// A probe is suggested only when its historical error undercuts this
  /// fraction of the uncovered default (cheap pre-screen).
  double prescreen_threshold = 0.5;
};

/// Samples and applies multi-source derivation schemes.
class MultiSourceOptimizer {
 public:
  MultiSourceOptimizer(const ConfigurationEvaluator& evaluator,
                       MultiSourceOptions options, std::uint64_t seed);

  ~MultiSourceOptimizer();

  MultiSourceOptimizer(const MultiSourceOptimizer&) = delete;
  MultiSourceOptimizer& operator=(const MultiSourceOptimizer&) = delete;

  /// Samples one probe against the current model set; returns a scheme
  /// suggestion (target + sources, all carrying models) or nullopt when
  /// the sample was not viable.
  std::optional<std::pair<NodeId, DerivationScheme>> SampleProbe(
      const std::vector<NodeId>& model_nodes, Rng& rng) const;

  /// Runs `budget` probes and applies improving ones to `config`.
  /// Returns the number of adopted schemes.
  std::size_t RunProbes(ModelConfiguration& config, std::size_t budget);

  // ---------------------------------------------------------------- async

  /// Starts the background pre-screening thread.
  void StartAsync();

  /// Stops the background thread (joined).
  void StopAsync();

  /// Publishes the current model-node set to the background thread.
  void PublishModelNodes(std::vector<NodeId> model_nodes);

  /// Applies queued asynchronous suggestions to `config`; returns the
  /// number adopted.
  std::size_t DrainSuggestions(ModelConfiguration& config);

 private:
  void AsyncLoop(Rng& rng);

  const ConfigurationEvaluator* evaluator_;
  MultiSourceOptions options_;
  Rng rng_;

  std::mutex mutex_;
  std::vector<NodeId> shared_model_nodes_;
  std::vector<std::pair<NodeId, DerivationScheme>> suggestions_;
  std::atomic<bool> async_running_{false};
  std::thread async_thread_;
};

}  // namespace f2db

#endif  // F2DB_CORE_MULTI_SOURCE_H_
