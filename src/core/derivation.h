// Derivation schemes and derivation weights (Section II-C, Eqs. 1-3).
//
// A target node t can derive its forecasts from any set of source nodes S
// that carry models:   forecast(t) = k_{S->t} * sum_{s in S} forecast(s)
// with  k_{S->t} = h_t / sum_i h_{s_i}  where h_x is the sum over the
// (training) history of node x. The three classical shapes fall out as
// special cases: direct (S = {t}, k = 1), aggregation (S = children(t),
// k = 1), and disaggregation (S = {parent(t)}, k = historical share).

#ifndef F2DB_CORE_DERIVATION_H_
#define F2DB_CORE_DERIVATION_H_

#include <string>
#include <vector>

#include "cube/graph.h"

namespace f2db {

/// A derivation scheme: the source nodes a target derives from.
/// An empty source set means "uncovered" (no forecast available).
struct DerivationScheme {
  std::vector<NodeId> sources;

  bool IsEmpty() const { return sources.empty(); }
  bool IsDirect(NodeId target) const {
    return sources.size() == 1 && sources[0] == target;
  }

  static DerivationScheme Direct(NodeId target) { return {{target}}; }
  static DerivationScheme Single(NodeId source) { return {{source}}; }
  static DerivationScheme Multi(std::vector<NodeId> sources) {
    return {std::move(sources)};
  }

  std::string ToString() const;
  bool operator==(const DerivationScheme&) const = default;
};

}  // namespace f2db

#endif  // F2DB_CORE_DERIVATION_H_
