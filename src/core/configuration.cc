#include "core/configuration.h"

#include <algorithm>
#include <unordered_set>

namespace f2db {

ForecastModel* ModelConfiguration::model(NodeId node) const {
  const auto it = models_.find(node);
  return it == models_.end() ? nullptr : it->second.model.get();
}

const ModelEntry* ModelConfiguration::entry(NodeId node) const {
  const auto it = models_.find(node);
  return it == models_.end() ? nullptr : &it->second;
}

std::vector<NodeId> ModelConfiguration::model_nodes() const {
  std::vector<NodeId> out;
  out.reserve(models_.size());
  for (const auto& [node, entry] : models_) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

void ModelConfiguration::AddModel(NodeId node, ModelEntry entry) {
  models_[node] = std::move(entry);
}

ModelEntry ModelConfiguration::RemoveModel(NodeId node) {
  const auto it = models_.find(node);
  if (it == models_.end()) return {};
  ModelEntry out = std::move(it->second);
  models_.erase(it);
  return out;
}

double ModelConfiguration::TotalCostSeconds() const {
  double total = 0.0;
  for (const auto& [node, entry] : models_) total += entry.creation_seconds;
  return total;
}

Status ModelConfiguration::SetNodeWeights(std::vector<double> weights) {
  if (weights.empty()) {
    node_weights_.clear();
    return Status::OK();
  }
  if (weights.size() != assignments_.size()) {
    return Status::InvalidArgument(
        "node weights must have one entry per graph node");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("node weights must be >= 0");
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("node weights must not be all zero");
  }
  for (double& w : weights) w /= total;
  node_weights_ = std::move(weights);
  return Status::OK();
}

double ModelConfiguration::MeanError() const {
  if (assignments_.empty()) return 0.0;
  if (!node_weights_.empty()) {
    double sum = 0.0;
    for (std::size_t i = 0; i < assignments_.size(); ++i) {
      sum += node_weights_[i] * assignments_[i].error;
    }
    return sum;
  }
  double sum = 0.0;
  for (const NodeAssignment& a : assignments_) sum += a.error;
  return sum / static_cast<double>(assignments_.size());
}

std::size_t ModelConfiguration::ApplyModelSchemes(
    const ConfigurationEvaluator& evaluator, NodeId source) {
  const auto it = models_.find(source);
  if (it == models_.end()) return 0;
  const ModelEntry& entry = it->second;
  const std::vector<double>* forecast = &entry.test_forecast;

  std::size_t improved = 0;
  auto try_target = [&](NodeId target) {
    const DerivationScheme scheme = DerivationScheme::Single(source);
    const double error = evaluator.SchemeError(scheme, {forecast}, target);
    if (error < assignments_[target].error) {
      assignments_[target].error = error;
      assignments_[target].scheme = scheme;
      ++improved;
    }
  };
  try_target(source);
  for (NodeId target : entry.coverage) try_target(target);
  return improved;
}

bool ModelConfiguration::TryMultiSourceScheme(
    const ConfigurationEvaluator& evaluator, NodeId target,
    DerivationScheme scheme) {
  const std::vector<const std::vector<double>*> forecasts =
      ForecastsFor(scheme);
  if (forecasts.empty()) return false;
  const double error = evaluator.SchemeError(scheme, forecasts, target);
  if (error >= assignments_[target].error) return false;
  assignments_[target].error = error;
  assignments_[target].scheme = scheme;
  multi_schemes_.emplace_back(target, std::move(scheme));
  return true;
}

void ModelConfiguration::RecomputeAssignments(
    const ConfigurationEvaluator& evaluator) {
  for (NodeAssignment& a : assignments_) a = NodeAssignment{};
  for (const auto& [node, entry] : models_) {
    ApplyModelSchemes(evaluator, node);
  }
  // Re-validate multi-source schemes whose sources all still have models.
  std::vector<std::pair<NodeId, DerivationScheme>> kept;
  for (auto& [target, scheme] : multi_schemes_) {
    const std::vector<const std::vector<double>*> forecasts =
        ForecastsFor(scheme);
    if (forecasts.empty()) continue;
    const double error = evaluator.SchemeError(scheme, forecasts, target);
    if (error < assignments_[target].error) {
      assignments_[target].error = error;
      assignments_[target].scheme = scheme;
    }
    kept.emplace_back(target, std::move(scheme));
  }
  multi_schemes_ = std::move(kept);
}

void ModelConfiguration::RecomputeNodes(const ConfigurationEvaluator& evaluator,
                                        const std::vector<NodeId>& targets) {
  std::unordered_set<NodeId> target_set(targets.begin(), targets.end());
  for (NodeId target : targets) assignments_[target] = NodeAssignment{};

  for (const auto& [node, entry] : models_) {
    const std::vector<double>* forecast = &entry.test_forecast;
    auto try_target = [&](NodeId target) {
      const DerivationScheme scheme = DerivationScheme::Single(node);
      const double error = evaluator.SchemeError(scheme, {forecast}, target);
      if (error < assignments_[target].error) {
        assignments_[target].error = error;
        assignments_[target].scheme = scheme;
      }
    };
    if (target_set.count(node) > 0) try_target(node);
    // Coverage is sorted; visit only the targets of interest.
    if (targets.size() < entry.coverage.size()) {
      for (NodeId target : targets) {
        if (target != node &&
            std::binary_search(entry.coverage.begin(), entry.coverage.end(),
                               target)) {
          try_target(target);
        }
      }
    } else {
      for (NodeId target : entry.coverage) {
        if (target_set.count(target) > 0) try_target(target);
      }
    }
  }

  for (auto& [target, scheme] : multi_schemes_) {
    if (target_set.count(target) == 0) continue;
    const std::vector<const std::vector<double>*> forecasts =
        ForecastsFor(scheme);
    if (forecasts.empty()) continue;  // a source lost its model
    const double error = evaluator.SchemeError(scheme, forecasts, target);
    if (error < assignments_[target].error) {
      assignments_[target].error = error;
      assignments_[target].scheme = scheme;
    }
  }
}

std::vector<const std::vector<double>*> ModelConfiguration::ForecastsFor(
    const DerivationScheme& scheme) const {
  std::vector<const std::vector<double>*> out;
  out.reserve(scheme.sources.size());
  for (NodeId source : scheme.sources) {
    const auto it = models_.find(source);
    if (it == models_.end()) return {};
    out.push_back(&it->second.test_forecast);
  }
  return out;
}

}  // namespace f2db
