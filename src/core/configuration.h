// ModelConfiguration: an assignment of forecast models and derivation
// schemes to the nodes of a time series graph (Section II-C: "we call an
// assignment of models and derivation schemes to nodes a model
// configuration").
//
// The configuration owns the fitted models, remembers each model's creation
// cost and cached test-horizon forecast, and tracks per node the currently
// best derivation scheme and its measured forecast error. Its two quality
// measures (Section II-D) are the mean per-node SMAPE and the total model
// creation time.

#ifndef F2DB_CORE_CONFIGURATION_H_
#define F2DB_CORE_CONFIGURATION_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/derivation.h"
#include "core/evaluator.h"
#include "cube/graph.h"
#include "ts/model.h"

namespace f2db {

/// Per-node forecast provenance: the best scheme found so far and its error.
struct NodeAssignment {
  /// SMAPE on the test part; 1.0 (the maximum) while uncovered.
  double error = 1.0;
  /// Sources of the best scheme; empty while uncovered.
  DerivationScheme scheme;
};

/// A model plus the bookkeeping the advisor needs about it.
struct ModelEntry {
  std::unique_ptr<ForecastModel> model;
  /// Wall-clock seconds spent creating (fitting) the model — the paper's
  /// worst-case maintenance cost proxy (Section II-D).
  double creation_seconds = 0.0;
  /// Cached forecast over the evaluation (test) horizon.
  std::vector<double> test_forecast;
  /// Target nodes this model may serve (its local-indicator coverage).
  std::vector<NodeId> coverage;
};

/// The set of models and per-node scheme assignments for one graph.
class ModelConfiguration {
 public:
  /// Empty configuration over zero nodes (placeholder for move-assignment).
  ModelConfiguration() = default;

  explicit ModelConfiguration(std::size_t num_nodes)
      : assignments_(num_nodes) {}

  ModelConfiguration(ModelConfiguration&&) = default;
  ModelConfiguration& operator=(ModelConfiguration&&) = default;

  std::size_t num_nodes() const { return assignments_.size(); }

  bool HasModel(NodeId node) const { return models_.count(node) > 0; }
  std::size_t num_models() const { return models_.size(); }

  /// The fitted model at `node`, or nullptr.
  ForecastModel* model(NodeId node) const;

  /// The model entry at `node`, or nullptr.
  const ModelEntry* entry(NodeId node) const;

  /// Nodes currently carrying models, ascending.
  std::vector<NodeId> model_nodes() const;

  /// Installs a model. Replaces an existing entry at the same node.
  void AddModel(NodeId node, ModelEntry entry);

  /// Removes and returns the entry at `node` (empty when absent).
  ModelEntry RemoveModel(NodeId node);

  const NodeAssignment& assignment(NodeId node) const {
    return assignments_[node];
  }

  /// Overwrites a node's assignment (used by the advisor's rollback).
  void set_assignment(NodeId node, NodeAssignment assignment) {
    assignments_[node] = std::move(assignment);
  }

  /// Total model costs: sum of creation seconds (Section II-D).
  double TotalCostSeconds() const;

  /// Installs per-node importance weights for the configuration error
  /// (e.g. expected query frequencies — a workload-aware extension of the
  /// paper's uniform "overall error err"). Weights are normalized
  /// internally; an empty vector restores uniform weighting. Fails when
  /// the size mismatches or weights are negative / all zero.
  Status SetNodeWeights(std::vector<double> weights);

  /// Configuration forecast error: (weighted) mean per-node SMAPE.
  double MeanError() const;

  /// Tries all single-source schemes from the model at `source` to every
  /// node in its coverage (and itself); lowers assignments where the new
  /// scheme is better. Returns the number of improved nodes.
  std::size_t ApplyModelSchemes(const ConfigurationEvaluator& evaluator,
                                NodeId source);

  /// Installs a multi-source scheme for `target` when it improves on the
  /// current assignment; remembered so recomputation can re-validate it.
  /// All sources must carry models. Returns true when adopted.
  bool TryMultiSourceScheme(const ConfigurationEvaluator& evaluator,
                            NodeId target, DerivationScheme scheme);

  /// Recomputes every assignment from scratch from the current model set
  /// (single-source schemes from all coverages plus retained multi-source
  /// schemes). Used after model deletion.
  void RecomputeAssignments(const ConfigurationEvaluator& evaluator);

  /// Recomputes the assignments of `targets` only — the cheap path after a
  /// single model deletion, where only the victim's dependents change.
  void RecomputeNodes(const ConfigurationEvaluator& evaluator,
                      const std::vector<NodeId>& targets);

  /// Collects the test forecasts for a scheme's sources; nullptr when some
  /// source has no model.
  std::vector<const std::vector<double>*> ForecastsFor(
      const DerivationScheme& scheme) const;

 private:
  std::vector<NodeAssignment> assignments_;
  /// Normalized per-node weights; empty = uniform.
  std::vector<double> node_weights_;
  std::unordered_map<NodeId, ModelEntry> models_;
  /// Adopted multi-source schemes, re-validated on recomputation.
  std::vector<std::pair<NodeId, DerivationScheme>> multi_schemes_;
};

}  // namespace f2db

#endif  // F2DB_CORE_CONFIGURATION_H_
