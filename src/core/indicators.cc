#include "core/indicators.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

namespace f2db {

double IndicatorComputer::Indicate(NodeId source, NodeId target) const {
  if (source == target) return 0.0;
  const double historical =
      options_.historical_weight * evaluator_->HistoricalError(source, target);
  const double instability = std::min(
      1.0, evaluator_->WeightInstability(source, target));
  return historical + options_.similarity_weight * instability;
}

LocalIndicator IndicatorComputer::ComputeLocal(NodeId source,
                                               std::size_t size) const {
  LocalIndicator local;
  local.source = source;
  const std::vector<NodeId> targets =
      evaluator_->graph().NearestNodes(source, size);
  local.entries.reserve(targets.size() + 1);
  local.entries.emplace_back(source, 0.0);
  for (NodeId target : targets) {
    local.entries.emplace_back(target, Indicate(source, target));
  }
  std::sort(local.entries.begin(), local.entries.end());
  return local;
}

void GlobalIndicator::Merge(const LocalIndicator& local) {
  for (const auto& [target, value] : local.entries) {
    values_[target] = std::min(values_[target], value);
  }
}

void GlobalIndicator::Rebuild(const std::vector<const LocalIndicator*>& locals) {
  std::fill(values_.begin(), values_.end(), kUncoveredIndicator);
  for (const LocalIndicator* local : locals) Merge(*local);
}

double GlobalIndicator::Mean() const { return f2db::Mean(values_); }

double GlobalIndicator::StdDev() const { return f2db::StdDev(values_); }

}  // namespace f2db
