# Empty dependencies file for f2db_common.
# This may be replaced when dependencies are built.
