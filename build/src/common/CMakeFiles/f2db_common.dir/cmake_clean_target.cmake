file(REMOVE_RECURSE
  "libf2db_common.a"
)
