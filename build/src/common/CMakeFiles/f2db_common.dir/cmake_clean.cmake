file(REMOVE_RECURSE
  "CMakeFiles/f2db_common.dir/csv.cc.o"
  "CMakeFiles/f2db_common.dir/csv.cc.o.d"
  "CMakeFiles/f2db_common.dir/logging.cc.o"
  "CMakeFiles/f2db_common.dir/logging.cc.o.d"
  "CMakeFiles/f2db_common.dir/rng.cc.o"
  "CMakeFiles/f2db_common.dir/rng.cc.o.d"
  "CMakeFiles/f2db_common.dir/status.cc.o"
  "CMakeFiles/f2db_common.dir/status.cc.o.d"
  "CMakeFiles/f2db_common.dir/string_util.cc.o"
  "CMakeFiles/f2db_common.dir/string_util.cc.o.d"
  "CMakeFiles/f2db_common.dir/thread_pool.cc.o"
  "CMakeFiles/f2db_common.dir/thread_pool.cc.o.d"
  "libf2db_common.a"
  "libf2db_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
