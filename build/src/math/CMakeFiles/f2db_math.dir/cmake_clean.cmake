file(REMOVE_RECURSE
  "CMakeFiles/f2db_math.dir/matrix.cc.o"
  "CMakeFiles/f2db_math.dir/matrix.cc.o.d"
  "CMakeFiles/f2db_math.dir/optimizer.cc.o"
  "CMakeFiles/f2db_math.dir/optimizer.cc.o.d"
  "CMakeFiles/f2db_math.dir/solve.cc.o"
  "CMakeFiles/f2db_math.dir/solve.cc.o.d"
  "CMakeFiles/f2db_math.dir/stats.cc.o"
  "CMakeFiles/f2db_math.dir/stats.cc.o.d"
  "libf2db_math.a"
  "libf2db_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
