# Empty dependencies file for f2db_math.
# This may be replaced when dependencies are built.
