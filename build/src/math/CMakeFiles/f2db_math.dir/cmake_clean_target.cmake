file(REMOVE_RECURSE
  "libf2db_math.a"
)
