
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/matrix.cc" "src/math/CMakeFiles/f2db_math.dir/matrix.cc.o" "gcc" "src/math/CMakeFiles/f2db_math.dir/matrix.cc.o.d"
  "/root/repo/src/math/optimizer.cc" "src/math/CMakeFiles/f2db_math.dir/optimizer.cc.o" "gcc" "src/math/CMakeFiles/f2db_math.dir/optimizer.cc.o.d"
  "/root/repo/src/math/solve.cc" "src/math/CMakeFiles/f2db_math.dir/solve.cc.o" "gcc" "src/math/CMakeFiles/f2db_math.dir/solve.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/math/CMakeFiles/f2db_math.dir/stats.cc.o" "gcc" "src/math/CMakeFiles/f2db_math.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f2db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
