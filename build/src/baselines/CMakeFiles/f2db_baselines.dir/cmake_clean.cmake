file(REMOVE_RECURSE
  "CMakeFiles/f2db_baselines.dir/advisor_builder.cc.o"
  "CMakeFiles/f2db_baselines.dir/advisor_builder.cc.o.d"
  "CMakeFiles/f2db_baselines.dir/bottom_up.cc.o"
  "CMakeFiles/f2db_baselines.dir/bottom_up.cc.o.d"
  "CMakeFiles/f2db_baselines.dir/builder.cc.o"
  "CMakeFiles/f2db_baselines.dir/builder.cc.o.d"
  "CMakeFiles/f2db_baselines.dir/combine.cc.o"
  "CMakeFiles/f2db_baselines.dir/combine.cc.o.d"
  "CMakeFiles/f2db_baselines.dir/direct.cc.o"
  "CMakeFiles/f2db_baselines.dir/direct.cc.o.d"
  "CMakeFiles/f2db_baselines.dir/greedy.cc.o"
  "CMakeFiles/f2db_baselines.dir/greedy.cc.o.d"
  "CMakeFiles/f2db_baselines.dir/top_down.cc.o"
  "CMakeFiles/f2db_baselines.dir/top_down.cc.o.d"
  "libf2db_baselines.a"
  "libf2db_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
