
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/advisor_builder.cc" "src/baselines/CMakeFiles/f2db_baselines.dir/advisor_builder.cc.o" "gcc" "src/baselines/CMakeFiles/f2db_baselines.dir/advisor_builder.cc.o.d"
  "/root/repo/src/baselines/bottom_up.cc" "src/baselines/CMakeFiles/f2db_baselines.dir/bottom_up.cc.o" "gcc" "src/baselines/CMakeFiles/f2db_baselines.dir/bottom_up.cc.o.d"
  "/root/repo/src/baselines/builder.cc" "src/baselines/CMakeFiles/f2db_baselines.dir/builder.cc.o" "gcc" "src/baselines/CMakeFiles/f2db_baselines.dir/builder.cc.o.d"
  "/root/repo/src/baselines/combine.cc" "src/baselines/CMakeFiles/f2db_baselines.dir/combine.cc.o" "gcc" "src/baselines/CMakeFiles/f2db_baselines.dir/combine.cc.o.d"
  "/root/repo/src/baselines/direct.cc" "src/baselines/CMakeFiles/f2db_baselines.dir/direct.cc.o" "gcc" "src/baselines/CMakeFiles/f2db_baselines.dir/direct.cc.o.d"
  "/root/repo/src/baselines/greedy.cc" "src/baselines/CMakeFiles/f2db_baselines.dir/greedy.cc.o" "gcc" "src/baselines/CMakeFiles/f2db_baselines.dir/greedy.cc.o.d"
  "/root/repo/src/baselines/top_down.cc" "src/baselines/CMakeFiles/f2db_baselines.dir/top_down.cc.o" "gcc" "src/baselines/CMakeFiles/f2db_baselines.dir/top_down.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/f2db_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/f2db_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/f2db_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/f2db_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/f2db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
