file(REMOVE_RECURSE
  "libf2db_baselines.a"
)
