# Empty dependencies file for f2db_baselines.
# This may be replaced when dependencies are built.
