# Empty compiler generated dependencies file for f2db_data.
# This may be replaced when dependencies are built.
