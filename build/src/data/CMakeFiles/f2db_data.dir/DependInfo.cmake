
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cube_io.cc" "src/data/CMakeFiles/f2db_data.dir/cube_io.cc.o" "gcc" "src/data/CMakeFiles/f2db_data.dir/cube_io.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/data/CMakeFiles/f2db_data.dir/datasets.cc.o" "gcc" "src/data/CMakeFiles/f2db_data.dir/datasets.cc.o.d"
  "/root/repo/src/data/sarima_generator.cc" "src/data/CMakeFiles/f2db_data.dir/sarima_generator.cc.o" "gcc" "src/data/CMakeFiles/f2db_data.dir/sarima_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f2db_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/f2db_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/f2db_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/f2db_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
