file(REMOVE_RECURSE
  "CMakeFiles/f2db_data.dir/cube_io.cc.o"
  "CMakeFiles/f2db_data.dir/cube_io.cc.o.d"
  "CMakeFiles/f2db_data.dir/datasets.cc.o"
  "CMakeFiles/f2db_data.dir/datasets.cc.o.d"
  "CMakeFiles/f2db_data.dir/sarima_generator.cc.o"
  "CMakeFiles/f2db_data.dir/sarima_generator.cc.o.d"
  "libf2db_data.a"
  "libf2db_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
