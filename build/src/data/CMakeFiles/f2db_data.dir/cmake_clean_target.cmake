file(REMOVE_RECURSE
  "libf2db_data.a"
)
