file(REMOVE_RECURSE
  "CMakeFiles/f2db_cube.dir/cube_schema.cc.o"
  "CMakeFiles/f2db_cube.dir/cube_schema.cc.o.d"
  "CMakeFiles/f2db_cube.dir/graph.cc.o"
  "CMakeFiles/f2db_cube.dir/graph.cc.o.d"
  "CMakeFiles/f2db_cube.dir/hierarchy.cc.o"
  "CMakeFiles/f2db_cube.dir/hierarchy.cc.o.d"
  "libf2db_cube.a"
  "libf2db_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
