# Empty dependencies file for f2db_cube.
# This may be replaced when dependencies are built.
