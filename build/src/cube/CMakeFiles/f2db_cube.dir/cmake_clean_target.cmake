file(REMOVE_RECURSE
  "libf2db_cube.a"
)
