
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cube/cube_schema.cc" "src/cube/CMakeFiles/f2db_cube.dir/cube_schema.cc.o" "gcc" "src/cube/CMakeFiles/f2db_cube.dir/cube_schema.cc.o.d"
  "/root/repo/src/cube/graph.cc" "src/cube/CMakeFiles/f2db_cube.dir/graph.cc.o" "gcc" "src/cube/CMakeFiles/f2db_cube.dir/graph.cc.o.d"
  "/root/repo/src/cube/hierarchy.cc" "src/cube/CMakeFiles/f2db_cube.dir/hierarchy.cc.o" "gcc" "src/cube/CMakeFiles/f2db_cube.dir/hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f2db_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/f2db_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/f2db_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
