# Empty compiler generated dependencies file for f2db_engine.
# This may be replaced when dependencies are built.
