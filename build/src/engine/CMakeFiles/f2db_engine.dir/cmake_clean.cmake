file(REMOVE_RECURSE
  "CMakeFiles/f2db_engine.dir/catalog.cc.o"
  "CMakeFiles/f2db_engine.dir/catalog.cc.o.d"
  "CMakeFiles/f2db_engine.dir/engine.cc.o"
  "CMakeFiles/f2db_engine.dir/engine.cc.o.d"
  "CMakeFiles/f2db_engine.dir/fact_table.cc.o"
  "CMakeFiles/f2db_engine.dir/fact_table.cc.o.d"
  "CMakeFiles/f2db_engine.dir/query.cc.o"
  "CMakeFiles/f2db_engine.dir/query.cc.o.d"
  "libf2db_engine.a"
  "libf2db_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
