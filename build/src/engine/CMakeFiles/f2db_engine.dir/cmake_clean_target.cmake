file(REMOVE_RECURSE
  "libf2db_engine.a"
)
