
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/accuracy.cc" "src/ts/CMakeFiles/f2db_ts.dir/accuracy.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/accuracy.cc.o.d"
  "/root/repo/src/ts/arima.cc" "src/ts/CMakeFiles/f2db_ts.dir/arima.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/arima.cc.o.d"
  "/root/repo/src/ts/auto_arima.cc" "src/ts/CMakeFiles/f2db_ts.dir/auto_arima.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/auto_arima.cc.o.d"
  "/root/repo/src/ts/auto_select.cc" "src/ts/CMakeFiles/f2db_ts.dir/auto_select.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/auto_select.cc.o.d"
  "/root/repo/src/ts/backtest.cc" "src/ts/CMakeFiles/f2db_ts.dir/backtest.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/backtest.cc.o.d"
  "/root/repo/src/ts/decomposition.cc" "src/ts/CMakeFiles/f2db_ts.dir/decomposition.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/decomposition.cc.o.d"
  "/root/repo/src/ts/exponential_smoothing.cc" "src/ts/CMakeFiles/f2db_ts.dir/exponential_smoothing.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/exponential_smoothing.cc.o.d"
  "/root/repo/src/ts/history_selection.cc" "src/ts/CMakeFiles/f2db_ts.dir/history_selection.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/history_selection.cc.o.d"
  "/root/repo/src/ts/intervals.cc" "src/ts/CMakeFiles/f2db_ts.dir/intervals.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/intervals.cc.o.d"
  "/root/repo/src/ts/model.cc" "src/ts/CMakeFiles/f2db_ts.dir/model.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/model.cc.o.d"
  "/root/repo/src/ts/model_factory.cc" "src/ts/CMakeFiles/f2db_ts.dir/model_factory.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/model_factory.cc.o.d"
  "/root/repo/src/ts/naive_models.cc" "src/ts/CMakeFiles/f2db_ts.dir/naive_models.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/naive_models.cc.o.d"
  "/root/repo/src/ts/seasonality.cc" "src/ts/CMakeFiles/f2db_ts.dir/seasonality.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/seasonality.cc.o.d"
  "/root/repo/src/ts/theta.cc" "src/ts/CMakeFiles/f2db_ts.dir/theta.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/theta.cc.o.d"
  "/root/repo/src/ts/time_series.cc" "src/ts/CMakeFiles/f2db_ts.dir/time_series.cc.o" "gcc" "src/ts/CMakeFiles/f2db_ts.dir/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f2db_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/f2db_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
