file(REMOVE_RECURSE
  "CMakeFiles/f2db_ts.dir/accuracy.cc.o"
  "CMakeFiles/f2db_ts.dir/accuracy.cc.o.d"
  "CMakeFiles/f2db_ts.dir/arima.cc.o"
  "CMakeFiles/f2db_ts.dir/arima.cc.o.d"
  "CMakeFiles/f2db_ts.dir/auto_arima.cc.o"
  "CMakeFiles/f2db_ts.dir/auto_arima.cc.o.d"
  "CMakeFiles/f2db_ts.dir/auto_select.cc.o"
  "CMakeFiles/f2db_ts.dir/auto_select.cc.o.d"
  "CMakeFiles/f2db_ts.dir/backtest.cc.o"
  "CMakeFiles/f2db_ts.dir/backtest.cc.o.d"
  "CMakeFiles/f2db_ts.dir/decomposition.cc.o"
  "CMakeFiles/f2db_ts.dir/decomposition.cc.o.d"
  "CMakeFiles/f2db_ts.dir/exponential_smoothing.cc.o"
  "CMakeFiles/f2db_ts.dir/exponential_smoothing.cc.o.d"
  "CMakeFiles/f2db_ts.dir/history_selection.cc.o"
  "CMakeFiles/f2db_ts.dir/history_selection.cc.o.d"
  "CMakeFiles/f2db_ts.dir/intervals.cc.o"
  "CMakeFiles/f2db_ts.dir/intervals.cc.o.d"
  "CMakeFiles/f2db_ts.dir/model.cc.o"
  "CMakeFiles/f2db_ts.dir/model.cc.o.d"
  "CMakeFiles/f2db_ts.dir/model_factory.cc.o"
  "CMakeFiles/f2db_ts.dir/model_factory.cc.o.d"
  "CMakeFiles/f2db_ts.dir/naive_models.cc.o"
  "CMakeFiles/f2db_ts.dir/naive_models.cc.o.d"
  "CMakeFiles/f2db_ts.dir/seasonality.cc.o"
  "CMakeFiles/f2db_ts.dir/seasonality.cc.o.d"
  "CMakeFiles/f2db_ts.dir/theta.cc.o"
  "CMakeFiles/f2db_ts.dir/theta.cc.o.d"
  "CMakeFiles/f2db_ts.dir/time_series.cc.o"
  "CMakeFiles/f2db_ts.dir/time_series.cc.o.d"
  "libf2db_ts.a"
  "libf2db_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
