# Empty dependencies file for f2db_ts.
# This may be replaced when dependencies are built.
