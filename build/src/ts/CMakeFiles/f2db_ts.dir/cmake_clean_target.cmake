file(REMOVE_RECURSE
  "libf2db_ts.a"
)
