file(REMOVE_RECURSE
  "libf2db_core.a"
)
