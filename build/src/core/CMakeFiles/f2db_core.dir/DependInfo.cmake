
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/f2db_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/f2db_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/configuration.cc" "src/core/CMakeFiles/f2db_core.dir/configuration.cc.o" "gcc" "src/core/CMakeFiles/f2db_core.dir/configuration.cc.o.d"
  "/root/repo/src/core/derivation.cc" "src/core/CMakeFiles/f2db_core.dir/derivation.cc.o" "gcc" "src/core/CMakeFiles/f2db_core.dir/derivation.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/f2db_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/f2db_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/indicators.cc" "src/core/CMakeFiles/f2db_core.dir/indicators.cc.o" "gcc" "src/core/CMakeFiles/f2db_core.dir/indicators.cc.o.d"
  "/root/repo/src/core/multi_source.cc" "src/core/CMakeFiles/f2db_core.dir/multi_source.cc.o" "gcc" "src/core/CMakeFiles/f2db_core.dir/multi_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f2db_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/f2db_math.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/f2db_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/f2db_cube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
