file(REMOVE_RECURSE
  "CMakeFiles/f2db_core.dir/advisor.cc.o"
  "CMakeFiles/f2db_core.dir/advisor.cc.o.d"
  "CMakeFiles/f2db_core.dir/configuration.cc.o"
  "CMakeFiles/f2db_core.dir/configuration.cc.o.d"
  "CMakeFiles/f2db_core.dir/derivation.cc.o"
  "CMakeFiles/f2db_core.dir/derivation.cc.o.d"
  "CMakeFiles/f2db_core.dir/evaluator.cc.o"
  "CMakeFiles/f2db_core.dir/evaluator.cc.o.d"
  "CMakeFiles/f2db_core.dir/indicators.cc.o"
  "CMakeFiles/f2db_core.dir/indicators.cc.o.d"
  "CMakeFiles/f2db_core.dir/multi_source.cc.o"
  "CMakeFiles/f2db_core.dir/multi_source.cc.o.d"
  "libf2db_core.a"
  "libf2db_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
