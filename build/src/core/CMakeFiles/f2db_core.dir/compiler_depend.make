# Empty compiler generated dependencies file for f2db_core.
# This may be replaced when dependencies are built.
