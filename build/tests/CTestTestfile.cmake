# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/cube_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
