file(REMOVE_RECURSE
  "CMakeFiles/ts_test.dir/ts/accuracy_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/accuracy_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/analysis_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/analysis_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/arima_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/arima_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/backtest_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/backtest_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/exponential_smoothing_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/exponential_smoothing_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/intervals_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/intervals_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/model_contract_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/model_contract_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/model_factory_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/model_factory_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/naive_models_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/naive_models_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/time_series_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/time_series_test.cc.o.d"
  "ts_test"
  "ts_test.pdb"
  "ts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
