file(REMOVE_RECURSE
  "CMakeFiles/bench_gamma.dir/bench_gamma.cc.o"
  "CMakeFiles/bench_gamma.dir/bench_gamma.cc.o.d"
  "bench_gamma"
  "bench_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
