# Empty dependencies file for bench_indicator_correlation.
# This may be replaced when dependencies are built.
