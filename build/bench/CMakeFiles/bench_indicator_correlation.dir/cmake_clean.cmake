file(REMOVE_RECURSE
  "CMakeFiles/bench_indicator_correlation.dir/bench_indicator_correlation.cc.o"
  "CMakeFiles/bench_indicator_correlation.dir/bench_indicator_correlation.cc.o.d"
  "bench_indicator_correlation"
  "bench_indicator_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indicator_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
