file(REMOVE_RECURSE
  "CMakeFiles/bench_query_runtime.dir/bench_query_runtime.cc.o"
  "CMakeFiles/bench_query_runtime.dir/bench_query_runtime.cc.o.d"
  "bench_query_runtime"
  "bench_query_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
