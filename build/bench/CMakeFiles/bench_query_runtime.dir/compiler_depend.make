# Empty compiler generated dependencies file for bench_query_runtime.
# This may be replaced when dependencies are built.
