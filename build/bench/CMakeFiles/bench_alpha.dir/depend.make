# Empty dependencies file for bench_alpha.
# This may be replaced when dependencies are built.
