
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_maintenance.cc" "bench/CMakeFiles/bench_maintenance.dir/bench_maintenance.cc.o" "gcc" "bench/CMakeFiles/bench_maintenance.dir/bench_maintenance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/f2db_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/f2db_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/f2db_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/f2db_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/f2db_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/f2db_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/f2db_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/f2db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
