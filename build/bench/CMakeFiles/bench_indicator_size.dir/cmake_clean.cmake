file(REMOVE_RECURSE
  "CMakeFiles/bench_indicator_size.dir/bench_indicator_size.cc.o"
  "CMakeFiles/bench_indicator_size.dir/bench_indicator_size.cc.o.d"
  "bench_indicator_size"
  "bench_indicator_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indicator_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
