# Empty dependencies file for bench_indicator_size.
# This may be replaced when dependencies are built.
