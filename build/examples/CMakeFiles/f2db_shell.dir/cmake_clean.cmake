file(REMOVE_RECURSE
  "CMakeFiles/f2db_shell.dir/f2db_shell.cpp.o"
  "CMakeFiles/f2db_shell.dir/f2db_shell.cpp.o.d"
  "f2db_shell"
  "f2db_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2db_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
