# Empty compiler generated dependencies file for f2db_shell.
# This may be replaced when dependencies are built.
