# Empty compiler generated dependencies file for sales_advisor.
# This may be replaced when dependencies are built.
