file(REMOVE_RECURSE
  "CMakeFiles/sales_advisor.dir/sales_advisor.cpp.o"
  "CMakeFiles/sales_advisor.dir/sales_advisor.cpp.o.d"
  "sales_advisor"
  "sales_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
