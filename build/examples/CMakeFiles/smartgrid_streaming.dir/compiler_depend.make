# Empty compiler generated dependencies file for smartgrid_streaming.
# This may be replaced when dependencies are built.
