file(REMOVE_RECURSE
  "CMakeFiles/smartgrid_streaming.dir/smartgrid_streaming.cpp.o"
  "CMakeFiles/smartgrid_streaming.dir/smartgrid_streaming.cpp.o.d"
  "smartgrid_streaming"
  "smartgrid_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartgrid_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
