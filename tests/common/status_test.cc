#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace f2db {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::NotFound("thing").message(), "thing");
}

TEST(Status, NonOkToStringContainsCodeAndMessage) {
  const Status s = Status::NotFound("missing row");
  EXPECT_NE(s.ToString().find("NOT_FOUND"), std::string::npos);
  EXPECT_NE(s.ToString().find("missing row"), std::string::npos);
}

TEST(Status, StatusCodeNameCoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, ValueOrReturnsFallbackOnError) {
  Result<int> err(Status::Internal("bad"));
  EXPECT_EQ(err.value_or(7), 7);
  Result<int> good(3);
  EXPECT_EQ(good.value_or(7), 3);
}

TEST(Result, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Result, MutableValueAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  F2DB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  F2DB_ASSIGN_OR_RETURN(int half, Half(x));
  F2DB_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusMacros, AssignOrReturnChainsInOneScope) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

}  // namespace
}  // namespace f2db
